//! Property tests: the blossom solver must agree with the brute-force
//! reference matcher on random small graphs, and always return a valid
//! matching.

use proptest::prelude::*;
use revmax_matching::reference::brute_force_max_weight;
use revmax_matching::{max_cardinality_matching, max_weight_matching, Matching};

/// A random graph: vertex count plus an edge list of (u, v, w).
fn arb_graph(max_n: usize, max_w: i64) -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0..=max_w)
            .prop_filter_map("self-loop", |(u, v, w)| (u != v).then_some((u, v, w)));
        (Just(n), proptest::collection::vec(edge, 0..=(n * (n - 1) / 2 + 4)))
    })
}

fn assert_valid(n: usize, edges: &[(usize, usize, i64)], m: &Matching) {
    // Symmetry of the mate array.
    for v in 0..n {
        if let Some(w) = m.mate[v] {
            assert_eq!(m.mate[w], Some(v), "mate not symmetric at {v}-{w}");
            assert_ne!(v, w);
        }
    }
    // Each reported edge must exist in the input.
    for &(u, v) in &m.edges {
        assert!(u < v);
        assert!(
            edges.iter().any(|&(a, b, _)| (a == u && b == v) || (a == v && b == u)),
            "matched pair ({u},{v}) not an input edge"
        );
    }
    // Weight equals the sum of the best parallel edge per matched pair.
    let mut total = 0i64;
    for &(u, v) in &m.edges {
        let best = edges
            .iter()
            .filter(|&&(a, b, _)| (a == u && b == v) || (a == v && b == u))
            .map(|&(_, _, w)| w)
            .max()
            .unwrap();
        total += best;
    }
    assert_eq!(total, m.weight);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn matches_brute_force_small((n, edges) in arb_graph(9, 50)) {
        let m = max_weight_matching(n, &edges);
        assert_valid(n, &edges, &m);
        let (bf, _) = brute_force_max_weight(n, &edges);
        prop_assert_eq!(m.weight, bf, "blossom {} != brute force {}", m.weight, bf);
    }

    #[test]
    fn matches_brute_force_medium((n, edges) in arb_graph(13, 1000)) {
        let m = max_weight_matching(n, &edges);
        assert_valid(n, &edges, &m);
        let (bf, _) = brute_force_max_weight(n, &edges);
        prop_assert_eq!(m.weight, bf);
    }

    #[test]
    fn negative_weights_allowed((n, mut edges) in arb_graph(8, 40)) {
        // Shift some weights negative; optimum still matches brute force.
        for (i, e) in edges.iter_mut().enumerate() {
            if i % 3 == 0 { e.2 -= 60; }
        }
        let m = max_weight_matching(n, &edges);
        assert_valid(n, &edges, &m);
        let (bf, _) = brute_force_max_weight(n, &edges);
        prop_assert_eq!(m.weight, bf);
    }

    #[test]
    fn dense_complete_graphs(n in 2usize..9, seed in 0u64..1000) {
        // Deterministic pseudo-random complete graph from the seed.
        let mut edges = Vec::new();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for u in 0..n {
            for v in (u + 1)..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let w = (state >> 33) as i64 % 100;
                edges.push((u, v, w));
            }
        }
        let m = max_weight_matching(n, &edges);
        assert_valid(n, &edges, &m);
        let (bf, _) = brute_force_max_weight(n, &edges);
        prop_assert_eq!(m.weight, bf);
    }

    #[test]
    fn max_cardinality_matches_shifted_brute_force((n, edges) in arb_graph(9, 50)) {
        // (cardinality, weight)-lexicographic optimum == max weight
        // matching after shifting every weight by a big constant.
        let m = max_cardinality_matching(n, &edges);
        assert_valid(n, &edges, &m);
        let big: i64 = edges.iter().map(|e| e.2.abs()).sum::<i64>() + 1;
        let shifted: Vec<(usize, usize, i64)> =
            edges.iter().map(|&(u, v, w)| (u, v, w + big)).collect();
        let (bf_shifted, bf_mate) = brute_force_max_weight(n, &shifted);
        let bf_card = bf_mate.iter().flatten().count() / 2;
        prop_assert_eq!(m.len(), bf_card, "cardinality mismatch");
        prop_assert_eq!(m.weight + (m.len() as i64) * big, bf_shifted, "weight tie-break mismatch");
    }

    #[test]
    fn f64_scaling_consistent((n, edges) in arb_graph(8, 1000)) {
        let fedges: Vec<(usize, usize, f64)> =
            edges.iter().map(|&(u, v, w)| (u, v, w as f64 * 0.25)).collect();
        let (m, w) = revmax_matching::max_weight_matching_f64(n, &fedges);
        assert_valid(n, &edges, &Matching {
            mate: m.mate.clone(),
            // rebuild integer weight for validity check
            weight: m.edges.iter().map(|&(u, v)| {
                edges.iter()
                    .filter(|&&(a, b, _)| (a == u && b == v) || (a == v && b == u))
                    .map(|&(_, _, w)| w).max().unwrap()
            }).sum(),
            edges: m.edges.clone(),
        });
        // Quarter-unit weights are exactly representable; the f64 total must
        // be exactly 0.25 * the integer optimum of the original instance.
        let (bf, _) = brute_force_max_weight(n, &edges);
        prop_assert!((w - bf as f64 * 0.25).abs() < 1e-9);
    }
}
