//! Brute-force reference matcher used to validate the blossom solver.
//!
//! [`brute_force_max_weight`] enumerates matchings with a bitmask dynamic
//! program over vertex subsets (`O(2^n · n)` time, `O(2^n)` memory), which
//! is exact and fast enough for the `n ≤ 16` instances used in tests. It is
//! exported (rather than hidden behind `#[cfg(test)]`) so downstream crates'
//! property tests can cross-check against it too.

/// Exact maximum-weight matching by subset DP. Panics if `n > 24` (memory).
///
/// Returns `(weight, mate)` where `mate[v]` is `Some(w)` for matched pairs.
pub fn brute_force_max_weight(
    n: usize,
    edges: &[(usize, usize, i64)],
) -> (i64, Vec<Option<usize>>) {
    assert!(n <= 24, "brute force matcher limited to 24 vertices (got {n})");
    if n == 0 {
        return (0, Vec::new());
    }
    // adj[u][v] = best weight among parallel edges, only if positive gainful
    // to consider; negative edges can never improve a matching.
    let mut best_w = vec![vec![i64::MIN; n]; n];
    for &(u, v, w) in edges {
        assert!(u != v && u < n && v < n, "bad edge ({u},{v})");
        let (a, b) = (u.min(v), u.max(v));
        if w > best_w[a][b] {
            best_w[a][b] = w;
        }
    }
    let full = 1usize << n;
    // dp[mask] = best matching weight using only vertices in `mask`.
    let mut dp = vec![0i64; full];
    // choice[mask] = (u, v) matched on the optimal step, or (usize::MAX, _)
    // if the lowest vertex stays single.
    let mut choice = vec![(usize::MAX, usize::MAX); full];
    for mask in 1..full {
        let u = mask.trailing_zeros() as usize;
        let without_u = mask & !(1 << u);
        // Option 1: leave u single.
        let mut best = dp[without_u];
        let mut pick = (usize::MAX, usize::MAX);
        // Option 2: match u with some v in the mask.
        let mut rest = without_u;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let w = best_w[u][v];
            if w >= 0 {
                let cand = dp[without_u & !(1 << v)] + w;
                if cand > best {
                    best = cand;
                    pick = (u, v);
                }
            }
        }
        dp[mask] = best;
        choice[mask] = pick;
    }
    // Reconstruct.
    let mut mate = vec![None; n];
    let mut mask = full - 1;
    while mask != 0 {
        let u = mask.trailing_zeros() as usize;
        let (a, b) = choice[mask];
        if a == usize::MAX {
            mask &= !(1 << u);
        } else {
            mate[a] = Some(b);
            mate[b] = Some(a);
            mask &= !(1 << a);
            mask &= !(1 << b);
        }
    }
    (dp[full - 1], mate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert_eq!(brute_force_max_weight(0, &[]), (0, vec![]));
    }

    #[test]
    fn single_edge() {
        let (w, mate) = brute_force_max_weight(2, &[(0, 1, 5)]);
        assert_eq!(w, 5);
        assert_eq!(mate, vec![Some(1), Some(0)]);
    }

    #[test]
    fn path_three() {
        let (w, _) = brute_force_max_weight(3, &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(w, 6);
    }

    #[test]
    fn skips_negative() {
        let (w, mate) = brute_force_max_weight(2, &[(0, 1, -5)]);
        assert_eq!(w, 0);
        assert_eq!(mate, vec![None, None]);
    }

    #[test]
    fn two_disjoint_beat_one_heavy() {
        let (w, _) = brute_force_max_weight(4, &[(0, 1, 5), (1, 2, 9), (2, 3, 5)]);
        assert_eq!(w, 10);
    }
}
