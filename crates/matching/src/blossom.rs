//! Edmonds' blossom algorithm for maximum-weight matching on general graphs.
//!
//! Port of the Galil (1986) O(V³) formulation, following van Rantwijk's
//! reference implementation. See the crate docs for the exactness argument;
//! in short, all arithmetic below is exact because every quantity is a
//! dyadic rational that `f64` represents without rounding.

/// Result of a maximum-weight matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `mate[v] == Some(w)` iff the matching contains edge `{v, w}`.
    pub mate: Vec<Option<usize>>,
    /// Total weight of the matched edges (in the caller's weight units).
    pub weight: i64,
    /// The matched edges, each reported once with `u < v`.
    pub edges: Vec<(usize, usize)>,
}

impl Matching {
    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True if `{u, v}` is a matched pair.
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.mate.get(u).copied().flatten() == Some(v)
    }
}

const LBL_FREE: i8 = 0;
const LBL_S: i8 = 1;
const LBL_T: i8 = 2;
const LBL_CRUMB: i8 = 5; // S | breadcrumb bit (4), used by scan_blossom
const NONE: isize = -1;

/// Compute a maximum-weight matching of a general graph with `n` vertices.
///
/// `edges` holds `(u, v, weight)` triples with `u != v` and `u, v < n`.
/// Parallel edges are permitted (only the best can ever be matched);
/// negative weights are permitted (such edges are never matched, since the
/// matching need not be perfect nor of maximum cardinality).
///
/// Runs in O(V³). Panics on self-loops or out-of-range endpoints.
pub fn max_weight_matching(n: usize, edges: &[(usize, usize, i64)]) -> Matching {
    solve_matching(n, edges, false)
}

/// Compute a **maximum-cardinality** matching that, among all matchings of
/// maximum cardinality, has maximum weight. This is the classical
/// `maxcardinality = true` variant of the same blossom algorithm (vertex
/// duals are allowed to go negative, postponing the stage cut-off until no
/// augmenting path exists at all).
pub fn max_cardinality_matching(n: usize, edges: &[(usize, usize, i64)]) -> Matching {
    solve_matching(n, edges, true)
}

fn solve_matching(n: usize, edges: &[(usize, usize, i64)], maxcardinality: bool) -> Matching {
    for &(u, v, _) in edges {
        assert!(u != v, "self-loop {u}-{v}: use gain::GainGraph for self-loop semantics");
        assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} vertices");
    }
    let mate = if edges.is_empty() {
        vec![-1isize; n]
    } else {
        Solver::new(n, edges, maxcardinality).solve()
    };
    let mut out_mate = vec![None; n];
    let mut out_edges = Vec::new();
    let mut weight = 0i64;
    // Recover the matched pairs and total weight from the mate array.
    let mut best_pair: std::collections::HashMap<(usize, usize), i64> =
        std::collections::HashMap::new();
    for &(u, v, w) in edges {
        let key = (u.min(v), u.max(v));
        let e = best_pair.entry(key).or_insert(i64::MIN);
        *e = (*e).max(w);
    }
    for v in 0..n {
        if mate[v] >= 0 {
            let w = mate[v] as usize;
            out_mate[v] = Some(w);
            if v < w {
                out_edges.push((v, w));
                weight += best_pair[&(v, w)];
            }
        }
    }
    Matching { mate: out_mate, weight, edges: out_edges }
}

/// [`max_weight_matching`] for `f64` weights.
///
/// Weights are scaled by [`crate::F64_SCALE`] and rounded to the nearest
/// integer, so the result is the exact optimum of the rounded instance; the
/// reported `weight` is returned in the original units.
pub fn max_weight_matching_f64(n: usize, edges: &[(usize, usize, f64)]) -> (Matching, f64) {
    let scaled: Vec<(usize, usize, i64)> = edges
        .iter()
        .map(|&(u, v, w)| {
            assert!(w.is_finite(), "non-finite edge weight {w} on ({u},{v})");
            (u, v, (w * crate::F64_SCALE).round() as i64)
        })
        .collect();
    let m = max_weight_matching(n, &scaled);
    let w = m.weight as f64 / crate::F64_SCALE;
    (m, w)
}

/// Internal state of the blossom algorithm. Indices `0..n` are vertices,
/// `n..2n` are (potential) non-trivial blossoms.
struct Solver {
    nvertex: usize,
    nedge: usize,
    /// Prefer maximum cardinality over maximum weight.
    maxcardinality: bool,
    /// (u, v) per edge; weights kept separately, pre-doubled, as f64.
    ends: Vec<(usize, usize)>,
    /// 2 × original weight, exact in f64.
    wt2: Vec<f64>,
    /// endpoint[p]: vertex at endpoint p; endpoints 2k and 2k+1 belong to edge k.
    endpoint: Vec<usize>,
    /// neighbend[v]: list of remote endpoints of edges incident to v.
    neighbend: Vec<Vec<usize>>,
    /// mate[v]: NONE or the remote *endpoint* index of v's matched edge.
    mate: Vec<isize>,
    label: Vec<i8>,
    labelend: Vec<isize>,
    inblossom: Vec<usize>,
    blossomparent: Vec<isize>,
    blossomchilds: Vec<Option<Vec<usize>>>,
    blossombase: Vec<isize>,
    blossomendps: Vec<Option<Vec<usize>>>,
    bestedge: Vec<isize>,
    blossombestedges: Vec<Option<Vec<usize>>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<f64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl Solver {
    fn new(n: usize, edges: &[(usize, usize, i64)], maxcardinality: bool) -> Self {
        let nedge = edges.len();
        let maxweight = edges.iter().map(|e| e.2).max().unwrap_or(0).max(0);
        let ends: Vec<(usize, usize)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let wt2: Vec<f64> = edges.iter().map(|&(_, _, w)| 2.0 * w as f64).collect();
        let mut endpoint = Vec::with_capacity(2 * nedge);
        for &(u, v) in &ends {
            endpoint.push(u);
            endpoint.push(v);
        }
        let mut neighbend = vec![Vec::new(); n];
        for (k, &(u, v)) in ends.iter().enumerate() {
            neighbend[u].push(2 * k + 1);
            neighbend[v].push(2 * k);
        }
        let mut dualvar = vec![2.0 * maxweight as f64; n];
        dualvar.extend(std::iter::repeat_n(0.0, n));
        Solver {
            nvertex: n,
            nedge,
            maxcardinality,
            ends,
            wt2,
            endpoint,
            neighbend,
            mate: vec![NONE; n],
            label: vec![LBL_FREE; 2 * n],
            labelend: vec![NONE; 2 * n],
            inblossom: (0..n).collect(),
            blossomparent: vec![NONE; 2 * n],
            blossomchilds: vec![None; 2 * n],
            blossombase: (0..n as isize).chain(std::iter::repeat_n(NONE, n)).collect(),
            blossomendps: vec![None; 2 * n],
            bestedge: vec![NONE; 2 * n],
            blossombestedges: vec![None; 2 * n],
            unusedblossoms: (n..2 * n).collect(),
            dualvar,
            allowedge: vec![false; nedge],
            queue: Vec::new(),
        }
    }

    /// Reduced cost ("slack") of edge k: du + dv − 2w. Non-negative for all
    /// edges at all times; zero slack means the edge is tight (usable).
    #[inline]
    fn slack(&self, k: usize) -> f64 {
        let (i, j) = self.ends[k];
        self.dualvar[i] + self.dualvar[j] - self.wt2[k]
    }

    /// All leaf vertices of blossom b (b itself if it is a vertex).
    fn blossom_leaves(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![b];
        while let Some(t) = stack.pop() {
            if t < self.nvertex {
                out.push(t);
            } else {
                for &c in self.blossomchilds[t].as_ref().expect("leaves of recycled blossom") {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Label the top-level blossom containing `w` as S (t=1) or T (t=2),
    /// reached through remote endpoint `p`.
    fn assign_label(&mut self, w: usize, t: i8, p: isize) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == LBL_FREE && self.label[b] == LBL_FREE);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == LBL_S {
            // b became an S-blossom: add all its vertices to the scan queue.
            let leaves = self.blossom_leaves(b);
            self.queue.extend(leaves);
        } else if t == LBL_T {
            // b became a T-blossom: its base's mate becomes an S-vertex.
            let base = self.blossombase[b];
            debug_assert!(base >= 0);
            let basemate = self.mate[base as usize];
            debug_assert!(basemate >= 0, "T-blossom base must be matched");
            self.assign_label(self.endpoint[basemate as usize], LBL_S, basemate ^ 1);
        }
    }

    /// Trace back from S-vertices v and w to discover either a new blossom
    /// (returns its base vertex) or an augmenting path (returns NONE).
    fn scan_blossom(&mut self, v: usize, w: usize) -> isize {
        let mut path: Vec<usize> = Vec::new();
        let mut base = NONE;
        let mut v = v as isize;
        let mut w = w as isize;
        while v != NONE || w != NONE {
            // Look for a breadcrumb in v's blossom, or drop a new one.
            let b = self.inblossom[v as usize];
            if self.label[b] & 4 != 0 {
                base = self.blossombase[b];
                break;
            }
            debug_assert_eq!(self.label[b], LBL_S);
            path.push(b);
            self.label[b] = LBL_CRUMB;
            // Trace one step back.
            debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b] as usize]);
            if self.labelend[b] == NONE {
                // The base of blossom b is single; stop tracing this path.
                v = NONE;
            } else {
                v = self.endpoint[self.labelend[b] as usize] as isize;
                let b = self.inblossom[v as usize];
                debug_assert_eq!(self.label[b], LBL_T);
                // b is a T-blossom; trace one more step back.
                debug_assert!(self.labelend[b] >= 0);
                v = self.endpoint[self.labelend[b] as usize] as isize;
            }
            // Alternate between the two paths.
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        // Remove breadcrumbs.
        for b in path {
            self.label[b] = LBL_S;
        }
        base
    }

    /// Construct a new blossom with base `base`, through S-vertices
    /// connected by edge k. Both endpoints of k are in the same alternating
    /// tree.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (v0, w0) = self.ends[k];
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v0];
        let mut bw = self.inblossom[w0];
        // Create the blossom.
        let b = self.unusedblossoms.pop().expect("blossom pool exhausted");
        self.blossombase[b] = base as isize;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b as isize;
        // Gather sub-blossoms and connecting endpoints, tracing v's side...
        let mut path: Vec<usize> = Vec::new();
        let mut endps: Vec<usize> = Vec::new();
        let mut v = v0;
        while bv != bb {
            self.blossomparent[bv] = b as isize;
            path.push(bv);
            endps.push(self.labelend[bv] as usize);
            debug_assert!(
                self.label[bv] == LBL_T
                    || (self.label[bv] == LBL_S
                        && self.labelend[bv] == self.mate[self.blossombase[bv] as usize])
            );
            debug_assert!(self.labelend[bv] >= 0);
            v = self.endpoint[self.labelend[bv] as usize];
            bv = self.inblossom[v];
        }
        let _ = v;
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k);
        // ... then w's side.
        let mut w = w0;
        while bw != bb {
            self.blossomparent[bw] = b as isize;
            path.push(bw);
            endps.push((self.labelend[bw] as usize) ^ 1);
            debug_assert!(
                self.label[bw] == LBL_T
                    || (self.label[bw] == LBL_S
                        && self.labelend[bw] == self.mate[self.blossombase[bw] as usize])
            );
            debug_assert!(self.labelend[bw] >= 0);
            w = self.endpoint[self.labelend[bw] as usize];
            bw = self.inblossom[w];
        }
        let _ = w;
        // The new blossom is an S-blossom with zero dual.
        debug_assert_eq!(self.label[bb], LBL_S);
        self.label[b] = LBL_S;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0.0;
        self.blossomchilds[b] = Some(path.clone());
        self.blossomendps[b] = Some(endps);
        // Relabel the blossom's vertices; former T-vertices become S and
        // must be scanned.
        for leaf in self.blossom_leaves(b) {
            if self.label[self.inblossom[leaf]] == LBL_T {
                self.queue.push(leaf);
            }
            self.inblossom[leaf] = b;
        }
        // Compute the blossom's cached best edges to other S-blossoms.
        let mut bestedgeto = vec![NONE; 2 * self.nvertex];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = match &self.blossombestedges[bv] {
                None => self
                    .blossom_leaves(bv)
                    .into_iter()
                    .map(|leaf| self.neighbend[leaf].iter().map(|&p| p / 2).collect())
                    .collect(),
                Some(cached) => vec![cached.clone()],
            };
            for nblist in nblists {
                for k2 in nblist {
                    let (mut i, mut j) = self.ends[k2];
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let _ = i;
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == LBL_S
                        && (bestedgeto[bj] == NONE
                            || self.slack(k2) < self.slack(bestedgeto[bj] as usize))
                    {
                        bestedgeto[bj] = k2 as isize;
                    }
                }
            }
            self.blossombestedges[bv] = None;
            self.bestedge[bv] = NONE;
        }
        let best: Vec<usize> =
            bestedgeto.into_iter().filter(|&k2| k2 != NONE).map(|k2| k2 as usize).collect();
        self.bestedge[b] = NONE;
        for &k2 in &best {
            if self.bestedge[b] == NONE || self.slack(k2) < self.slack(self.bestedge[b] as usize) {
                self.bestedge[b] = k2 as isize;
            }
        }
        self.blossombestedges[b] = Some(best);
    }

    /// Expand (undo) blossom b. During a stage (`endstage == false`) b is a
    /// T-blossom whose dual reached zero; at the end of a stage zero-dual
    /// S-blossoms are expanded recursively.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        let childs = self.blossomchilds[b].clone().expect("expanding recycled blossom");
        // Convert sub-blossoms into top-level blossoms.
        for &s in &childs {
            self.blossomparent[s] = NONE;
            if s < self.nvertex {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0.0 {
                self.expand_blossom(s, endstage);
            } else {
                for leaf in self.blossom_leaves(s) {
                    self.inblossom[leaf] = s;
                }
            }
        }
        // Relabel sub-blossoms when a T-blossom expands mid-stage.
        if !endstage && self.label[b] == LBL_T {
            debug_assert!(self.labelend[b] >= 0);
            let entrychild = self.inblossom[self.endpoint[(self.labelend[b] as usize) ^ 1]];
            let len = childs.len() as isize;
            let mut j = childs.iter().position(|&c| c == entrychild).expect("entrychild") as isize;
            let (jstep, endptrick): (isize, usize) = if j & 1 != 0 {
                j -= len; // odd: go forward and wrap
                (1, 0)
            } else {
                (-1, 1) // even: go backward
            };
            let idx = |j: isize| -> usize { (((j % len) + len) % len) as usize };
            let endps = self.blossomendps[b].clone().expect("endps");
            let mut p = self.labelend[b] as usize;
            while j != 0 {
                // Relabel the T-sub-blossom.
                self.label[self.endpoint[p ^ 1]] = LBL_FREE;
                let q = endps[idx(j - endptrick as isize)] ^ endptrick;
                self.label[self.endpoint[q ^ 1]] = LBL_FREE;
                self.assign_label(self.endpoint[p ^ 1], LBL_T, p as isize);
                // Step to the next S-sub-blossom; its forward edge is allowed.
                self.allowedge[endps[idx(j - endptrick as isize)] / 2] = true;
                j += jstep;
                p = endps[idx(j - endptrick as isize)] ^ endptrick;
                // Step to the next T-sub-blossom.
                self.allowedge[p / 2] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom without stepping to its mate.
            let bv = childs[idx(j)];
            self.label[self.endpoint[p ^ 1]] = LBL_T;
            self.label[bv] = LBL_T;
            self.labelend[self.endpoint[p ^ 1]] = p as isize;
            self.labelend[bv] = p as isize;
            self.bestedge[bv] = NONE;
            // Continue along the blossom until we get back to entrychild,
            // deciding for each skipped sub-blossom whether it stays free.
            j += jstep;
            while childs[idx(j)] != entrychild {
                let bv = childs[idx(j)];
                if self.label[bv] == LBL_S {
                    j += jstep;
                    continue;
                }
                let leaves = self.blossom_leaves(bv);
                let labelled = leaves.iter().copied().find(|&v| self.label[v] != LBL_FREE);
                if let Some(v) = labelled {
                    debug_assert_eq!(self.label[v], LBL_T);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = LBL_FREE;
                    let base = self.blossombase[bv] as usize;
                    self.label[self.endpoint[self.mate[base] as usize]] = LBL_FREE;
                    let le = self.labelend[v];
                    self.assign_label(v, LBL_T, le);
                }
                j += jstep;
            }
        }
        // Recycle the blossom number.
        self.label[b] = -1;
        self.labelend[b] = NONE;
        self.blossomchilds[b] = None;
        self.blossomendps[b] = None;
        self.blossombase[b] = NONE;
        self.blossombestedges[b] = None;
        self.bestedge[b] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swap matched/unmatched edges over an alternating path through
    /// blossom b between vertex v and the base vertex.
    fn augment_blossom(&mut self, b: usize, v: usize) {
        // Bubble up from v to an immediate sub-blossom of b.
        let mut t = v;
        while self.blossomparent[t] != b as isize {
            t = self.blossomparent[t] as usize;
        }
        if t >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let childs = self.blossomchilds[b].clone().expect("childs");
        let endps = self.blossomendps[b].clone().expect("endps");
        let len = childs.len() as isize;
        let i = childs.iter().position(|&c| c == t).expect("sub-blossom") as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, usize) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        let idx = |j: isize| -> usize { (((j % len) + len) % len) as usize };
        // Move along the blossom until we get to the base.
        while j != 0 {
            j += jstep;
            let t = childs[idx(j)];
            let p = endps[idx(j - endptrick as isize)] ^ endptrick;
            if t >= self.nvertex {
                self.augment_blossom(t, self.endpoint[p]);
            }
            j += jstep;
            let t = childs[idx(j)];
            if t >= self.nvertex {
                self.augment_blossom(t, self.endpoint[p ^ 1]);
            }
            // Match the edge connecting those sub-blossoms.
            self.mate[self.endpoint[p]] = (p ^ 1) as isize;
            self.mate[self.endpoint[p ^ 1]] = p as isize;
        }
        // Rotate so the new base is first.
        let i = i as usize;
        let mut new_childs = childs[i..].to_vec();
        new_childs.extend_from_slice(&childs[..i]);
        let mut new_endps = endps[i..].to_vec();
        new_endps.extend_from_slice(&endps[..i]);
        self.blossombase[b] = self.blossombase[new_childs[0]];
        debug_assert_eq!(self.blossombase[b], v as isize);
        self.blossomchilds[b] = Some(new_childs);
        self.blossomendps[b] = Some(new_endps);
    }

    /// Augment the matching along the path through tight edge k.
    fn augment_matching(&mut self, k: usize) {
        let (v, w) = self.ends[k];
        for (s0, p0) in [(v, 2 * k + 1), (w, 2 * k)] {
            let mut s = s0;
            let mut p = p0;
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], LBL_S);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs] as usize]);
                if bs >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p as isize;
                // Trace one step back.
                if self.labelend[bs] == NONE {
                    break; // single vertex: augmenting path ends here
                }
                let t = self.endpoint[self.labelend[bs] as usize];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], LBL_T);
                debug_assert!(self.labelend[bt] >= 0);
                s = self.endpoint[self.labelend[bt] as usize];
                let j = self.endpoint[(self.labelend[bt] as usize) ^ 1];
                debug_assert_eq!(self.blossombase[bt], t as isize);
                if bt >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = (self.labelend[bt] as usize) ^ 1;
            }
        }
    }

    fn solve(mut self) -> Vec<isize> {
        let nvertex = self.nvertex;
        for _stage in 0..nvertex {
            // Start of a stage: forget labels and allowed edges.
            self.label.iter_mut().for_each(|l| *l = LBL_FREE);
            self.bestedge.iter_mut().for_each(|e| *e = NONE);
            for be in self.blossombestedges[nvertex..].iter_mut() {
                *be = None;
            }
            self.allowedge.iter_mut().for_each(|a| *a = false);
            self.queue.clear();
            // All single vertices root an alternating tree.
            for v in 0..nvertex {
                if self.mate[v] == NONE && self.label[self.inblossom[v]] == LBL_FREE {
                    self.assign_label(v, LBL_S, NONE);
                }
            }
            let mut augmented = false;
            loop {
                // Substage: scan S-vertices until an augmenting path is
                // found or the queue drains.
                while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label[self.inblossom[v]], LBL_S);
                    let nbs = self.neighbend[v].clone();
                    for p in nbs {
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue; // internal edge of a blossom
                        }
                        let mut kslack = 0.0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0.0 {
                                self.allowedge[k] = true;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == LBL_FREE {
                                // C1: w is free; grow the tree.
                                self.assign_label(w, LBL_T, (p ^ 1) as isize);
                            } else if self.label[self.inblossom[w]] == LBL_S {
                                // C2: S-S edge: blossom or augmenting path.
                                let base = self.scan_blossom(v, w);
                                if base >= 0 {
                                    self.add_blossom(base as usize, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    break;
                                }
                            } else if self.label[w] == LBL_FREE {
                                // w inside a T-blossom but not individually
                                // labelled yet.
                                debug_assert_eq!(self.label[self.inblossom[w]], LBL_T);
                                self.label[w] = LBL_T;
                                self.labelend[w] = (p ^ 1) as isize;
                            }
                        } else if self.label[self.inblossom[w]] == LBL_S {
                            // Track least-slack S-S edge for delta3.
                            let b = self.inblossom[v];
                            if self.bestedge[b] == NONE
                                || kslack < self.slack(self.bestedge[b] as usize)
                            {
                                self.bestedge[b] = k as isize;
                            }
                        } else if self.label[w] == LBL_FREE {
                            // Track least-slack edge to a free vertex for delta2.
                            if self.bestedge[w] == NONE
                                || kslack < self.slack(self.bestedge[w] as usize)
                            {
                                self.bestedge[w] = k as isize;
                            }
                        }
                    }
                    if augmented {
                        break;
                    }
                }
                if augmented {
                    break;
                }
                // Queue empty: compute the dual adjustment delta. In
                // max-cardinality mode delta1 (cutting the stage when the
                // cheapest vertex dual hits zero) is only a last resort —
                // vertex duals may go negative to keep growing cardinality.
                let min_dual =
                    self.dualvar[..nvertex].iter().copied().fold(f64::INFINITY, f64::min).max(0.0);
                let (mut deltatype, mut delta) =
                    if self.maxcardinality { (-1i8, f64::INFINITY) } else { (1i8, min_dual) };
                let mut deltaedge = NONE;
                let mut deltablossom = NONE;
                for v in 0..nvertex {
                    if self.label[self.inblossom[v]] == LBL_FREE && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v] as usize);
                        if d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v];
                        }
                    }
                }
                for b in 0..2 * nvertex {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == LBL_S
                        && self.bestedge[b] != NONE
                    {
                        let d = self.slack(self.bestedge[b] as usize) / 2.0;
                        if d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b];
                        }
                    }
                }
                for b in nvertex..2 * nvertex {
                    if self.blossombase[b] >= 0
                        && self.blossomparent[b] == NONE
                        && self.label[b] == LBL_T
                        && self.dualvar[b] < delta
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b as isize;
                    }
                }
                if deltatype == -1 {
                    // Max-cardinality mode: no structural move available;
                    // end the stage (final delta keeps the optimum
                    // verifiable, as in the reference implementation).
                    deltatype = 1;
                    delta = min_dual;
                }
                // Apply delta to the duals.
                for v in 0..nvertex {
                    match self.label[self.inblossom[v]] {
                        LBL_S => self.dualvar[v] -= delta,
                        LBL_T => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in nvertex..2 * nvertex {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        // dualvar[b] stores the blossom dual in the same
                        // doubled units as vertex duals, hence +/- delta
                        // (the true dual z moves by 2*delta_true).
                        match self.label[b] {
                            LBL_S => self.dualvar[b] += delta,
                            LBL_T => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }
                // Take action depending on the tightest constraint.
                match deltatype {
                    1 => break, // optimum reached for this stage
                    2 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        let (mut i, j) = self.ends[k];
                        if self.label[self.inblossom[i]] == LBL_FREE {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], LBL_S);
                        self.queue.push(i);
                    }
                    3 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        let (i, _) = self.ends[k];
                        debug_assert_eq!(self.label[self.inblossom[i]], LBL_S);
                        self.queue.push(i);
                    }
                    4 => self.expand_blossom(deltablossom as usize, false),
                    _ => unreachable!("unknown delta type"),
                }
            }
            if !augmented {
                break; // no augmenting path: matching is maximum
            }
            // End of stage: expand all zero-dual S-blossoms.
            for b in nvertex..2 * nvertex {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] >= 0
                    && self.label[b] == LBL_S
                    && self.dualvar[b] == 0.0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
        debug_assert!(self.verify_optimum());
        // Transform mate[] from endpoint indices to vertex indices.
        let mut mate: Vec<isize> = vec![NONE; nvertex];
        for (v, m) in mate.iter_mut().enumerate() {
            if self.mate[v] >= 0 {
                *m = self.endpoint[self.mate[v] as usize] as isize;
            }
        }
        for v in 0..nvertex {
            debug_assert!(mate[v] == NONE || mate[mate[v] as usize] == v as isize);
        }
        mate
    }

    /// Verify the primal-dual optimality conditions (debug builds only).
    fn verify_optimum(&self) -> bool {
        for k in 0..self.nedge {
            let (i, j) = self.ends[k];
            let mut s = self.dualvar[i] + self.dualvar[j] - self.wt2[k];
            let mut iblossoms = vec![i];
            let mut jblossoms = vec![j];
            while self.blossomparent[*iblossoms.last().unwrap()] != NONE {
                iblossoms.push(self.blossomparent[*iblossoms.last().unwrap()] as usize);
            }
            while self.blossomparent[*jblossoms.last().unwrap()] != NONE {
                jblossoms.push(self.blossomparent[*jblossoms.last().unwrap()] as usize);
            }
            iblossoms.reverse();
            jblossoms.reverse();
            for (bi, bj) in iblossoms.iter().zip(jblossoms.iter()) {
                if bi != bj {
                    break;
                }
                s += 2.0 * self.dualvar[*bi];
            }
            if s < 0.0 {
                return false;
            }
            // Matched edges must be tight.
            if self.mate[i] >= 0
                && (self.mate[i] as usize) / 2 == k
                && self.mate[j] >= 0
                && (self.mate[j] as usize) / 2 == k
                && s != 0.0
            {
                return false;
            }
        }
        // All vertex duals must be non-negative (after the uniform offset
        // that max-cardinality mode permits), and unmatched vertices must
        // sit at the offset (complementary slackness).
        let offset = if self.maxcardinality {
            (-self.dualvar[..self.nvertex].iter().copied().fold(f64::INFINITY, f64::min)).max(0.0)
        } else {
            0.0
        };
        for v in 0..self.nvertex {
            if self.dualvar[v] + offset < 0.0 {
                return false;
            }
            if self.mate[v] == NONE && self.dualvar[v] + offset != 0.0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let m = max_weight_matching(0, &[]);
        assert!(m.is_empty());
        assert_eq!(m.weight, 0);
    }

    #[test]
    fn no_edges() {
        let m = max_weight_matching(5, &[]);
        assert_eq!(m.mate, vec![None; 5]);
    }

    #[test]
    fn single_edge() {
        let m = max_weight_matching(2, &[(0, 1, 7)]);
        assert_eq!(m.weight, 7);
        assert!(m.contains(0, 1));
        assert!(m.contains(1, 0));
    }

    #[test]
    fn negative_edge_is_never_matched() {
        let m = max_weight_matching(2, &[(0, 1, -3)]);
        assert_eq!(m.weight, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn zero_weight_edges_do_not_hurt() {
        let m = max_weight_matching(4, &[(0, 1, 0), (2, 3, 4)]);
        assert_eq!(m.weight, 4);
        assert!(m.contains(2, 3));
    }

    #[test]
    fn path_of_three_picks_heavier_end() {
        // 0-1 (5), 1-2 (6): must pick exactly one.
        let m = max_weight_matching(3, &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(m.weight, 6);
        assert!(m.contains(1, 2));
        assert_eq!(m.mate[0], None);
    }

    #[test]
    fn path_of_four_prefers_two_light_edges() {
        // 0-1 (5), 1-2 (9), 2-3 (5): two ends (10) beat the middle (9).
        let m = max_weight_matching(4, &[(0, 1, 5), (1, 2, 9), (2, 3, 5)]);
        assert_eq!(m.weight, 10);
    }

    #[test]
    fn triangle() {
        let m = max_weight_matching(3, &[(0, 1, 6), (1, 2, 5), (0, 2, 4)]);
        assert_eq!(m.weight, 6);
    }

    // Classic tricky cases from the mwmatching.py test-suite.
    #[test]
    fn s_blossom_then_augment() {
        // Create an S-blossom and use it for augmentation.
        let m = max_weight_matching(4, &[(0, 1, 8), (0, 2, 9), (1, 2, 10), (2, 3, 7)]);
        assert_eq!(m.weight, 15);
        assert!(m.contains(0, 1));
        assert!(m.contains(2, 3));
    }

    #[test]
    fn s_blossom_with_tail() {
        let m = max_weight_matching(
            6,
            &[(0, 1, 8), (0, 2, 9), (1, 2, 10), (2, 3, 7), (0, 5, 5), (3, 4, 6)],
        );
        assert_eq!(m.weight, 21);
        assert!(m.contains(0, 5));
        assert!(m.contains(1, 2));
        assert!(m.contains(3, 4));
    }

    #[test]
    fn t_blossom_relabelling_a() {
        // Create a blossom, relabel as T in more than one way, expand,
        // augment. (van Rantwijk test 20.)
        let m = max_weight_matching(
            8,
            &[
                (0, 1, 9),
                (0, 2, 8),
                (1, 2, 10),
                (0, 3, 5),
                (3, 4, 4),
                (0, 5, 3),
                (4, 5, 3),
                (3, 6, 3),
                (6, 7, 10), // forces expansion path
            ],
        );
        // Brute-force optimum: check against reference below in proptests;
        // here assert validity and a known good bound.
        let total: i64 = m.weight;
        assert!(total >= 24, "weight {total}");
    }

    #[test]
    fn nested_s_blossom_augment() {
        // Create nested S-blossom, use for augmentation (van Rantwijk
        // test 23): optimum is 0-2 (9), 1-3 (8), 4-5 (6).
        let m = max_weight_matching(
            6,
            &[(0, 1, 9), (0, 2, 9), (1, 2, 10), (1, 3, 8), (2, 4, 8), (3, 4, 10), (4, 5, 6)],
        );
        assert_eq!(m.weight, 9 + 8 + 6);
        assert!(m.contains(0, 2));
        assert!(m.contains(1, 3));
        assert!(m.contains(4, 5));
    }

    #[test]
    fn s_blossom_expand_t_blossom() {
        // Create S-blossom, relabel as T-blossom, use for augmentation
        // (van Rantwijk test 21).
        let edges = [(0, 1, 9), (0, 2, 8), (1, 2, 10), (0, 3, 5), (3, 4, 4), (0, 5, 3)];
        let m = max_weight_matching(6, &edges);
        assert_eq!(m.weight, 10 + 4 + 3);
        assert!(m.contains(1, 2));
        assert!(m.contains(3, 4));
        assert!(m.contains(0, 5));
    }

    #[test]
    fn nasty_expand_case() {
        // Create nested S-blossom, relabel as S, expand (test 25).
        let m = max_weight_matching(
            8,
            &[
                (0, 1, 8),
                (0, 2, 8),
                (1, 2, 10),
                (1, 3, 12),
                (2, 4, 12),
                (3, 4, 14),
                (3, 5, 12),
                (4, 6, 12),
                (5, 6, 14),
                (6, 7, 12),
            ],
        );
        assert_eq!(m.weight, 8 + 12 + 12 + 12);
    }

    #[test]
    fn nasty_expand_case_2() {
        // S-blossom, relabel as T, expand (van Rantwijk test 26):
        // optimum is 0-5 (15), 1-2 (25), 3-7 (14), 4-6 (13) = 67.
        let m = max_weight_matching(
            8,
            &[
                (0, 1, 23),
                (0, 4, 22),
                (0, 5, 15),
                (1, 2, 25),
                (2, 3, 22),
                (3, 4, 25),
                (3, 7, 14),
                (4, 6, 13),
            ],
        );
        assert_eq!(m.weight, 15 + 25 + 14 + 13);
        assert!(m.contains(0, 5));
        assert!(m.contains(1, 2));
        assert!(m.contains(3, 7));
        assert!(m.contains(4, 6));
    }

    #[test]
    fn nasty_expand_case_3() {
        // Create nested S-blossom, relabel as T, expand (van Rantwijk
        // test 27): optimum is 0-7 (8), 1-2 (25), 3-6 (7), 4-5 (7) = 47.
        let m = max_weight_matching(
            8,
            &[
                (0, 1, 19),
                (0, 2, 20),
                (0, 7, 8),
                (1, 2, 25),
                (2, 3, 18),
                (2, 4, 18),
                (3, 4, 13),
                (3, 6, 7),
                (4, 5, 7),
            ],
        );
        assert_eq!(m.weight, 8 + 25 + 7 + 7);
        assert!(m.contains(0, 7));
        assert!(m.contains(1, 2));
        assert!(m.contains(3, 6));
        assert!(m.contains(4, 5));
    }

    #[test]
    fn f64_wrapper_scales() {
        let (m, w) = max_weight_matching_f64(3, &[(0, 1, 1.25), (1, 2, 2.5)]);
        assert!(m.contains(1, 2));
        assert!((w - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        max_weight_matching(2, &[(1, 1, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        max_weight_matching(2, &[(0, 2, 3)]);
    }

    #[test]
    fn parallel_edges_pick_best() {
        let m = max_weight_matching(2, &[(0, 1, 3), (0, 1, 9), (1, 0, 4)]);
        assert_eq!(m.weight, 9);
    }

    #[test]
    fn max_cardinality_prefers_more_edges() {
        // Weight-maximal matching takes the heavy middle edge (9 > 5+3=8
        // is false here: 5+3=8 < 9 → weight picks middle; cardinality
        // picks the two light ones).
        let edges = [(0, 1, 5), (1, 2, 9), (2, 3, 3)];
        let byweight = max_weight_matching(4, &edges);
        assert_eq!(byweight.weight, 9);
        assert_eq!(byweight.len(), 1);
        let bycard = max_cardinality_matching(4, &edges);
        assert_eq!(bycard.len(), 2);
        assert_eq!(bycard.weight, 8);
    }

    #[test]
    fn max_cardinality_matches_negative_edges_if_needed() {
        // A matching need not avoid negative edges when cardinality rules.
        let edges = [(0, 1, -4)];
        assert_eq!(max_weight_matching(2, &edges).len(), 0);
        let m = max_cardinality_matching(2, &edges);
        assert_eq!(m.len(), 1);
        assert_eq!(m.weight, -4);
    }

    #[test]
    fn max_cardinality_breaks_ties_by_weight() {
        // Two perfect matchings exist; the heavier one must win.
        let edges = [(0, 1, 2), (2, 3, 2), (0, 2, 3), (1, 3, 3)];
        let m = max_cardinality_matching(4, &edges);
        assert_eq!(m.len(), 2);
        assert_eq!(m.weight, 6);
    }

    #[test]
    fn large_weights_stay_exact() {
        // Magnitudes near the dyadic-exactness bound still give the exact
        // optimum.
        let big = 1_000_000_000_000i64; // 1e12
        let m = max_weight_matching(4, &[(0, 1, big), (1, 2, big + 1), (2, 3, big)]);
        assert_eq!(m.weight, 2 * big);
    }
}
