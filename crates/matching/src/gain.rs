//! Self-loop ("gain graph") reduction used by the bundling algorithms.
//!
//! The paper's 2-sized configuration graph has a self-loop per item (the
//! revenue of selling the item alone) and an edge per pair (the revenue of
//! the size-2 bundle). A valid configuration covers every vertex by exactly
//! one edge, self-loops included. A matching never contains self-loops, so
//! we solve the revenue-equivalent problem on *gains*:
//!
//! ```text
//!   gain(u, v) = r({u,v}) − r({u}) − r({v})
//! ```
//!
//! Maximum-weight matching on the positive-gain edges plus the constant
//! `Σ_v r({v})` equals the optimal configuration revenue, and every
//! unmatched vertex keeps its self-loop. This module packages that
//! transformation so callers never handle the offset bookkeeping by hand.

use crate::blossom::max_weight_matching;
use revmax_par::par_chunks_map_reduce;

/// Registered pairs per gain-computation chunk (thread-count independent,
/// so the gain-edge order is deterministic at any parallelism).
const GAIN_CHUNK: usize = 256;

/// A graph of self-loop weights plus pairwise weights, in integer units.
///
/// Build one with [`GainGraph::new`], add pair candidates with
/// [`GainGraph::add_pair`], and solve with [`GainGraph::solve`].
#[derive(Debug, Clone)]
pub struct GainGraph {
    self_weights: Vec<i64>,
    pairs: Vec<(usize, usize, i64)>,
}

/// Outcome of solving a [`GainGraph`]: the chosen cover of all vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GainSolution {
    /// Matched pairs `(u, v)` with `u < v`, i.e. size-2 groups.
    pub pairs: Vec<(usize, usize)>,
    /// Vertices covered by their self-loop, i.e. singleton groups.
    pub singles: Vec<usize>,
    /// Total weight: self-loop mass of singles + pair weights of matches.
    pub total_weight: i64,
}

impl GainGraph {
    /// Create a gain graph over `self_weights.len()` vertices; vertex `v`'s
    /// self-loop weighs `self_weights[v]`.
    pub fn new(self_weights: Vec<i64>) -> Self {
        GainGraph { self_weights, pairs: Vec::new() }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.self_weights.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.self_weights.is_empty()
    }

    /// Register the pair `{u, v}` with total weight `weight` (NOT the gain:
    /// the raw combined weight, e.g. the revenue of the size-2 bundle).
    ///
    /// Pairs whose gain over the two self-loops is non-positive are kept but
    /// can never be selected, mirroring the paper's "revert to components"
    /// guarantee.
    pub fn add_pair(&mut self, u: usize, v: usize, weight: i64) {
        assert!(u != v, "self pair {u}");
        assert!(u < self.len() && v < self.len(), "pair ({u},{v}) out of range");
        self.pairs.push((u, v, weight));
    }

    /// Solve for the maximum-total-weight cover (single-threaded).
    pub fn solve(&self) -> GainSolution {
        self.solve_with_threads(1)
    }

    /// Solve with the gain-matrix construction fanned out over `threads`
    /// workers. The gain of each registered pair is independent and the
    /// chunked reduction preserves registration order, so the edge list —
    /// and therefore the matching — is identical at any thread count.
    pub fn solve_with_threads(&self, threads: usize) -> GainSolution {
        let n = self.len();
        let base: i64 = self.self_weights.iter().sum();
        let gain_edges: Vec<(usize, usize, i64)> = par_chunks_map_reduce(
            threads,
            &self.pairs,
            GAIN_CHUNK,
            |chunk| {
                chunk
                    .iter()
                    .filter_map(|&(u, v, w)| {
                        let gain = w - self.self_weights[u] - self.self_weights[v];
                        (gain > 0).then_some((u, v, gain))
                    })
                    .collect::<Vec<_>>()
            },
            Vec::new(),
            |mut acc: Vec<(usize, usize, i64)>, mut part| {
                acc.append(&mut part);
                acc
            },
        );
        let m = max_weight_matching(n, &gain_edges);
        let mut singles = Vec::new();
        for v in 0..n {
            if m.mate[v].is_none() {
                singles.push(v);
            }
        }
        GainSolution { pairs: m.edges.clone(), singles, total_weight: base + m.weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_singles_when_no_pairs_gain() {
        let mut g = GainGraph::new(vec![10, 20, 30]);
        g.add_pair(0, 1, 25); // gain -5
        let s = g.solve();
        assert_eq!(s.total_weight, 60);
        assert_eq!(s.singles, vec![0, 1, 2]);
        assert!(s.pairs.is_empty());
    }

    #[test]
    fn profitable_pair_selected() {
        let mut g = GainGraph::new(vec![10, 20, 30]);
        g.add_pair(0, 1, 45); // gain +15
        let s = g.solve();
        assert_eq!(s.total_weight, 75);
        assert_eq!(s.pairs, vec![(0, 1)]);
        assert_eq!(s.singles, vec![2]);
    }

    #[test]
    fn conflicting_pairs_resolved_globally() {
        // 0-1 gains 5, 1-2 gains 6, 0-2 gains 4: best single pick is 1-2;
        // but 0-1 + nothing vs 1-2 + nothing: matching picks 1-2.
        let mut g = GainGraph::new(vec![0, 0, 0]);
        g.add_pair(0, 1, 5);
        g.add_pair(1, 2, 6);
        g.add_pair(0, 2, 4);
        let s = g.solve();
        assert_eq!(s.total_weight, 6);
        assert_eq!(s.pairs, vec![(1, 2)]);
        assert_eq!(s.singles, vec![0]);
    }

    #[test]
    fn two_disjoint_pairs_beat_one_heavy() {
        let mut g = GainGraph::new(vec![0, 0, 0, 0]);
        g.add_pair(0, 1, 5);
        g.add_pair(1, 2, 9);
        g.add_pair(2, 3, 5);
        let s = g.solve();
        assert_eq!(s.total_weight, 10);
        assert_eq!(s.pairs.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = GainGraph::new(vec![]);
        let s = g.solve();
        assert_eq!(s.total_weight, 0);
        assert!(s.pairs.is_empty() && s.singles.is_empty());
    }

    #[test]
    fn parallel_solve_identical_to_sequential() {
        // A dense-ish pseudo-random graph: the chosen cover must be
        // exactly equal (pairs, singles, weight) at every thread count.
        let n = 60usize;
        let weights: Vec<i64> = (0..n as i64).map(|v| (v * 37) % 23).collect();
        let mut g = GainGraph::new(weights);
        for u in 0..n {
            for v in (u + 1)..n {
                if (u * 31 + v * 17) % 3 == 0 {
                    g.add_pair(u, v, ((u * 13 + v * 7) % 50) as i64);
                }
            }
        }
        let seq = g.solve_with_threads(1);
        for threads in [2, 4, 7] {
            assert_eq!(g.solve_with_threads(threads), seq, "threads={threads}");
        }
    }
}
