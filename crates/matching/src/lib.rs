//! # revmax-matching — maximum-weight matching on general graphs
//!
//! The optimal 2-sized bundle configuration of *Mining Revenue-Maximizing
//! Bundling Configuration* (VLDB'15, Section 5.1) reduces to maximum-weight
//! matching: items are vertices, candidate size-2 bundles are edges weighted
//! by bundle revenue, and singleton bundles are self-loops. The paper uses
//! the LEMON library's Edmonds implementation; this crate provides the same
//! capability from scratch.
//!
//! The solver is a port of the O(V³) formulation of Edmonds' blossom
//! algorithm described in Galil's survey (*Efficient algorithms for finding
//! maximum matching in graphs*, ACM Computing Surveys 1986), following the
//! well-known reference implementation by Joris van Rantwijk
//! (`mwmatching.py`, also the basis of NetworkX's `max_weight_matching`).
//!
//! ## Exactness
//!
//! Edge weights are `i64`. Internally every weight is doubled and dual
//! variables are kept as `f64`; because all intermediate quantities are
//! dyadic rationals with denominators ≤ 4 and magnitudes far below 2⁵²,
//! every addition, subtraction, halving, and comparison the algorithm
//! performs is **exact** — there is no floating-point drift. Callers with
//! `f64` revenues use [`max_weight_matching_f64`], which scales to integer
//! micro-units first.
//!
//! ## Self-loops and "gain graphs"
//!
//! A matching never contains self-loops, but the bundling reduction needs
//! them (a vertex may keep its singleton bundle). [`gain::GainGraph`]
//! implements the standard transformation: score each pair edge by its
//! *gain* over the two self-loops and add the self-loop mass back after
//! matching. Vertices left unmatched keep their self-loop.
//!
//! ```
//! use revmax_matching::max_weight_matching;
//!
//! // A triangle plus a pendant: the best matching picks the two disjoint
//! // edges 0-1 (weight 6) and 2-3 (weight 5), not the heavy edge 1-2.
//! let m = max_weight_matching(4, &[(0, 1, 6), (1, 2, 8), (0, 2, 1), (2, 3, 5)]);
//! assert_eq!(m.weight, 11);
//! assert_eq!(m.mate[0], Some(1));
//! assert_eq!(m.mate[2], Some(3));
//! ```

mod blossom;
pub mod gain;
pub mod reference;

pub use blossom::{
    max_cardinality_matching, max_weight_matching, max_weight_matching_f64, Matching,
};

/// Scale factor used by [`max_weight_matching_f64`]: weights are rounded to
/// micro-units, so revenues agree with the exact integer optimum to 1e-6.
pub const F64_SCALE: f64 = 1_000_000.0;
