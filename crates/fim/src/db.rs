//! Transaction database in vertical (per-item bitmap) layout.

use crate::Bitmap;

/// A transaction database over `n_items` items, stored vertically: for each
/// item, the bitmap of transactions containing it.
#[derive(Debug, Clone)]
pub struct TransactionDb {
    n_items: usize,
    n_transactions: usize,
    bitmaps: Vec<Bitmap>,
}

impl TransactionDb {
    /// Build from horizontal transactions (each a list of item ids).
    /// Duplicate items within one transaction are tolerated.
    pub fn from_transactions(n_items: usize, transactions: &[Vec<u32>]) -> Self {
        let n_transactions = transactions.len();
        let mut bitmaps = vec![Bitmap::zeros(n_transactions); n_items];
        for (t, tx) in transactions.iter().enumerate() {
            for &i in tx {
                assert!((i as usize) < n_items, "item {i} out of range (n_items={n_items})");
                bitmaps[i as usize].set(t);
            }
        }
        TransactionDb { n_items, n_transactions, bitmaps }
    }

    /// Build directly from per-item transaction bitmaps (the vertical
    /// layout itself) — the zero-intermediate path used when the caller
    /// already holds columnar data, e.g. the CSR item columns of a WTP
    /// matrix. All bitmaps must span `n_transactions` slots.
    pub fn from_item_bitmaps(n_transactions: usize, bitmaps: Vec<Bitmap>) -> Self {
        for (i, bm) in bitmaps.iter().enumerate() {
            assert_eq!(
                bm.len(),
                n_transactions,
                "item {i} bitmap spans {} transactions, expected {n_transactions}",
                bm.len()
            );
        }
        TransactionDb { n_items: bitmaps.len(), n_transactions, bitmaps }
    }

    /// Number of items in the universe.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of transactions.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// The transaction bitmap of one item.
    pub fn item_bitmap(&self, item: u32) -> &Bitmap {
        &self.bitmaps[item as usize]
    }

    /// Support (transaction count) of a single item.
    pub fn item_support(&self, item: u32) -> u32 {
        self.bitmaps[item as usize].count()
    }

    /// Support of an arbitrary itemset, by intersecting bitmaps.
    /// The empty set's support is the number of transactions.
    pub fn support(&self, items: &[u32]) -> u32 {
        match items {
            [] => self.n_transactions as u32,
            [i] => self.item_support(*i),
            [first, rest @ ..] => {
                let mut acc = self.bitmaps[*first as usize].clone();
                for &i in rest {
                    acc.and_assign(&self.bitmaps[i as usize]);
                }
                acc.count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionDb {
        TransactionDb::from_transactions(
            4,
            &[vec![0, 1, 2], vec![0, 1], vec![0, 2], vec![3], vec![0, 1, 2, 3]],
        )
    }

    #[test]
    fn supports() {
        let db = sample();
        assert_eq!(db.n_transactions(), 5);
        assert_eq!(db.item_support(0), 4);
        assert_eq!(db.item_support(3), 2);
        assert_eq!(db.support(&[0, 1]), 3);
        assert_eq!(db.support(&[0, 1, 2]), 2);
        assert_eq!(db.support(&[1, 3]), 1);
        assert_eq!(db.support(&[]), 5);
    }

    #[test]
    fn duplicate_items_in_transaction_ok() {
        let db = TransactionDb::from_transactions(2, &[vec![0, 0, 1]]);
        assert_eq!(db.item_support(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item() {
        TransactionDb::from_transactions(2, &[vec![2]]);
    }

    #[test]
    fn from_item_bitmaps_equals_horizontal_build() {
        let horizontal = sample();
        let bitmaps: Vec<Bitmap> = (0..4u32).map(|i| horizontal.item_bitmap(i).clone()).collect();
        let vertical = TransactionDb::from_item_bitmaps(5, bitmaps);
        assert_eq!(vertical.n_items(), 4);
        assert_eq!(vertical.n_transactions(), 5);
        for i in 0..4u32 {
            assert_eq!(vertical.item_support(i), horizontal.item_support(i));
        }
        assert_eq!(vertical.support(&[0, 1, 2]), 2);
    }

    #[test]
    #[should_panic(expected = "expected 5")]
    fn from_item_bitmaps_rejects_length_mismatch() {
        TransactionDb::from_item_bitmaps(5, vec![Bitmap::zeros(4)]);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::from_transactions(3, &[]);
        assert_eq!(db.n_transactions(), 0);
        assert_eq!(db.support(&[0]), 0);
    }
}
