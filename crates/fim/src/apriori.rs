//! Textbook Apriori (Agrawal & Srikant, VLDB'94), used as a slow-but-simple
//! reference to validate the Eclat and MAFIA-style miners.

use crate::{Itemset, TransactionDb};

/// Mine all frequent itemsets levelwise. Returns sets sorted by
/// (length, items). Intended for test-sized inputs: support counting is a
/// full scan per level.
pub fn apriori(db: &TransactionDb, minsup: u32) -> Vec<Itemset> {
    assert!(minsup >= 1, "minsup must be >= 1");
    let mut out: Vec<Itemset> = Vec::new();
    // L1.
    let mut level: Vec<Vec<u32>> = (0..db.n_items() as u32)
        .filter(|&i| db.item_support(i) >= minsup)
        .map(|i| vec![i])
        .collect();
    while !level.is_empty() {
        for items in &level {
            out.push(Itemset { items: items.clone(), support: db.support(items) });
        }
        // Candidate generation: join sets sharing the first k-1 items.
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        for (a_idx, a) in level.iter().enumerate() {
            for b in &level[a_idx + 1..] {
                let k = a.len();
                if a[..k - 1] != b[..k - 1] {
                    continue;
                }
                let mut cand = a.clone();
                cand.push(b[k - 1]);
                debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
                // Prune: all k-subsets must be frequent (present in level).
                let all_subsets_frequent = (0..cand.len()).all(|skip| {
                    let sub: Vec<u32> = cand
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &x)| (i != skip).then_some(x))
                        .collect();
                    level.binary_search(&sub).is_ok()
                });
                if all_subsets_frequent {
                    candidates.push(cand);
                }
            }
        }
        // Support filtering.
        level = candidates.into_iter().filter(|c| db.support(c) >= minsup).collect();
        level.sort();
    }
    out.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        let db = TransactionDb::from_transactions(
            5,
            &[vec![0, 1, 4], vec![1, 3], vec![1, 2], vec![0, 1, 3], vec![0, 2]],
        );
        let got = apriori(&db, 2);
        let sets: Vec<(Vec<u32>, u32)> = got.into_iter().map(|s| (s.items, s.support)).collect();
        assert_eq!(
            sets,
            vec![
                (vec![0], 3),
                (vec![1], 4),
                (vec![2], 2),
                (vec![3], 2),
                (vec![0, 1], 2),
                (vec![1, 3], 2),
            ]
        );
    }

    #[test]
    fn empty_and_extreme_minsup() {
        let db = TransactionDb::from_transactions(3, &[vec![0], vec![1]]);
        assert!(apriori(&db, 3).is_empty());
        assert_eq!(apriori(&db, 1).len(), 2);
    }
}
