//! Fixed-width transaction bitmaps (the "vertical" representation).

/// A bitset over transaction ids, `len` bits packed into `u64` words.
///
/// All bitmaps produced from one [`crate::TransactionDb`] share the same
/// length, so binary operations assert equal word counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap over `len` transaction slots.
    pub fn zeros(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no addressable bits exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Population count.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `self & other` as a new bitmap.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// Popcount of `self & other` without allocating.
    pub fn and_count(&self, other: &Bitmap) -> u32 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones()).sum()
    }

    /// In-place `self &= other`.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True iff the two bitmaps share at least one set bit (early-exit).
    pub fn intersects(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place `self |= other`.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True iff every set bit of `self` is set in `other`.
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.count(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert!(b.get(64));
        assert!(!b.get(63));
    }

    #[test]
    fn and_and_count_agree() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        let c = a.and(&b);
        assert_eq!(c.count(), a.and_count(&b));
        assert_eq!(c.count(), 17); // multiples of 6 in 0..100
    }

    #[test]
    fn intersects_and_or() {
        let mut a = Bitmap::zeros(70);
        let mut b = Bitmap::zeros(70);
        a.set(3);
        b.set(65);
        assert!(!a.intersects(&b));
        b.set(3);
        assert!(a.intersects(&b));
        a.or_assign(&b);
        assert!(a.get(65));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn subset_relation() {
        let mut a = Bitmap::zeros(70);
        let mut b = Bitmap::zeros(70);
        a.set(3);
        a.set(65);
        b.set(3);
        b.set(65);
        b.set(10);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut a = Bitmap::zeros(200);
        for i in [5usize, 63, 64, 127, 128, 199] {
            a.set(i);
        }
        let got: Vec<usize> = a.iter_ones().collect();
        assert_eq!(got, vec![5, 63, 64, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        Bitmap::zeros(10).and(&Bitmap::zeros(11));
    }
}
