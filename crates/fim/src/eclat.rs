//! Eclat: depth-first enumeration of *all* frequent itemsets over the
//! vertical representation (Zaki et al.). Used directly for small problems
//! and as the shared machinery validated against [`crate::apriori`].

use crate::{Bitmap, Itemset, TransactionDb};

/// Guard against combinatorial explosion when enumerating all frequent
/// itemsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EclatLimit {
    /// No cap (use only when the instance is known to be small).
    Unbounded,
    /// Stop with an error after this many itemsets.
    MaxItemsets(usize),
}

/// Mine all frequent itemsets with support ≥ `minsup` (absolute count ≥ 1).
///
/// Returns itemsets in depth-first order (prefix before extensions), each
/// with its exact support. Errors if `limit` is exceeded.
pub fn mine_frequent(
    db: &TransactionDb,
    minsup: u32,
    limit: EclatLimit,
) -> Result<Vec<Itemset>, String> {
    assert!(minsup >= 1, "minsup must be >= 1");
    let cap = match limit {
        EclatLimit::Unbounded => usize::MAX,
        EclatLimit::MaxItemsets(k) => k,
    };
    let mut out = Vec::new();
    // Frequent single items, ascending id.
    let roots: Vec<(u32, Bitmap, u32)> = (0..db.n_items() as u32)
        .filter_map(|i| {
            let bm = db.item_bitmap(i);
            let sup = bm.count();
            (sup >= minsup).then(|| (i, bm.clone(), sup))
        })
        .collect();
    let mut prefix = Vec::new();
    dfs(&roots, &mut prefix, minsup, cap, &mut out)?;
    Ok(out)
}

fn dfs(
    tail: &[(u32, Bitmap, u32)],
    prefix: &mut Vec<u32>,
    minsup: u32,
    cap: usize,
    out: &mut Vec<Itemset>,
) -> Result<(), String> {
    for (idx, (item, bm, sup)) in tail.iter().enumerate() {
        prefix.push(*item);
        if out.len() >= cap {
            return Err(format!("frequent itemset cap of {cap} exceeded"));
        }
        out.push(Itemset { items: prefix.clone(), support: *sup });
        // Extensions: intersect with strictly later tail items.
        let mut next: Vec<(u32, Bitmap, u32)> = Vec::new();
        for (jtem, jbm, _) in &tail[idx + 1..] {
            let nbm = bm.and(jbm);
            let nsup = nbm.count();
            if nsup >= minsup {
                next.push((*jtem, nbm, nsup));
            }
        }
        dfs(&next, prefix, minsup, cap, out)?;
        prefix.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // Classic 5-transaction example.
        TransactionDb::from_transactions(
            5,
            &[vec![0, 1, 4], vec![1, 3], vec![1, 2], vec![0, 1, 3], vec![0, 2]],
        )
    }

    #[test]
    fn mines_expected_sets_at_minsup_2() {
        let got = mine_frequent(&db(), 2, EclatLimit::Unbounded).unwrap();
        let mut sets: Vec<(Vec<u32>, u32)> =
            got.into_iter().map(|is| (is.items, is.support)).collect();
        sets.sort();
        let expected: Vec<(Vec<u32>, u32)> = vec![
            (vec![0], 3),
            (vec![0, 1], 2),
            (vec![1], 4),
            (vec![1, 3], 2),
            (vec![2], 2),
            (vec![3], 2),
        ];
        assert_eq!(sets, expected);
    }

    #[test]
    fn minsup_one_enumerates_every_occurring_set() {
        let got = mine_frequent(&db(), 1, EclatLimit::Unbounded).unwrap();
        // {0,1,4} occurs once; its subsets all occur.
        assert!(got.iter().any(|s| s.items == vec![0, 1, 4] && s.support == 1));
    }

    #[test]
    fn cap_is_enforced() {
        let err = mine_frequent(&db(), 1, EclatLimit::MaxItemsets(3)).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn high_minsup_yields_nothing() {
        let got = mine_frequent(&db(), 6, EclatLimit::Unbounded).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn supports_are_exact() {
        let d = db();
        for s in mine_frequent(&d, 2, EclatLimit::Unbounded).unwrap() {
            assert_eq!(s.support, d.support(&s.items), "support mismatch for {:?}", s.items);
        }
    }
}
