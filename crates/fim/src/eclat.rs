//! Eclat: depth-first enumeration of *all* frequent itemsets over the
//! vertical representation (Zaki et al.). Used directly for small problems
//! and as the shared machinery validated against [`crate::apriori`].

use crate::{Bitmap, Itemset, TransactionDb};
use revmax_par::par_index_map;

/// Minimum extension-tail length before the tidset intersections of one
/// DFS node fan out across worker threads. Below this the intersections
/// are too cheap to amortize a dispatch. The threshold depends only on the
/// data, never on the thread count, so mining output is identical at any
/// parallelism (`DESIGN.md` §6).
const PAR_FANOUT_MIN: usize = 32;

/// Guard against combinatorial explosion when enumerating all frequent
/// itemsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EclatLimit {
    /// No cap (use only when the instance is known to be small).
    Unbounded,
    /// Stop with an error after this many itemsets.
    MaxItemsets(usize),
}

/// Mine all frequent itemsets with support ≥ `minsup` (absolute count ≥ 1).
///
/// Returns itemsets in depth-first order (prefix before extensions), each
/// with its exact support. Errors if `limit` is exceeded. Single-threaded;
/// see [`mine_frequent_with_threads`] for the parallel variant (identical
/// output by contract).
pub fn mine_frequent(
    db: &TransactionDb,
    minsup: u32,
    limit: EclatLimit,
) -> Result<Vec<Itemset>, String> {
    mine_frequent_with_threads(db, minsup, limit, 1)
}

/// [`mine_frequent`] with the tidset-intersection fan-out of each DFS node
/// spread over up to `threads` workers.
///
/// The DFS order, the itemsets, their supports, and the cap accounting are
/// bit-identical to the sequential miner at any thread count: only the
/// *computation* of one node's candidate extensions is distributed, and
/// their order (strictly-later tail items) is preserved.
pub fn mine_frequent_with_threads(
    db: &TransactionDb,
    minsup: u32,
    limit: EclatLimit,
    threads: usize,
) -> Result<Vec<Itemset>, String> {
    assert!(minsup >= 1, "minsup must be >= 1");
    let cap = match limit {
        EclatLimit::Unbounded => usize::MAX,
        EclatLimit::MaxItemsets(k) => k,
    };
    let mut out = Vec::new();
    // Frequent single items, ascending id.
    let roots: Vec<(u32, Bitmap, u32)> = (0..db.n_items() as u32)
        .filter_map(|i| {
            let bm = db.item_bitmap(i);
            let sup = bm.count();
            (sup >= minsup).then(|| (i, bm.clone(), sup))
        })
        .collect();
    let mut prefix = Vec::new();
    dfs(&roots, &mut prefix, minsup, cap, threads.max(1), &mut out)?;
    Ok(out)
}

fn dfs(
    tail: &[(u32, Bitmap, u32)],
    prefix: &mut Vec<u32>,
    minsup: u32,
    cap: usize,
    threads: usize,
    out: &mut Vec<Itemset>,
) -> Result<(), String> {
    for (idx, (item, bm, sup)) in tail.iter().enumerate() {
        prefix.push(*item);
        if out.len() >= cap {
            return Err(format!("frequent itemset cap of {cap} exceeded"));
        }
        out.push(Itemset { items: prefix.clone(), support: *sup });
        // Extensions: intersect with strictly later tail items. Wide
        // fan-outs compute the (independent) intersections in parallel;
        // the infrequent ones are filtered afterwards in tail order, so
        // `next` is identical to the sequential construction.
        let exts = &tail[idx + 1..];
        let next: Vec<(u32, Bitmap, u32)> = if threads > 1 && exts.len() >= PAR_FANOUT_MIN {
            par_index_map(threads, exts.len(), |j| {
                let (jtem, jbm, _) = &exts[j];
                let nbm = bm.and(jbm);
                let nsup = nbm.count();
                (*jtem, nbm, nsup)
            })
            .into_iter()
            .filter(|&(_, _, nsup)| nsup >= minsup)
            .collect()
        } else {
            exts.iter()
                .filter_map(|(jtem, jbm, _)| {
                    let nbm = bm.and(jbm);
                    let nsup = nbm.count();
                    (nsup >= minsup).then_some((*jtem, nbm, nsup))
                })
                .collect()
        };
        dfs(&next, prefix, minsup, cap, threads, out)?;
        prefix.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // Classic 5-transaction example.
        TransactionDb::from_transactions(
            5,
            &[vec![0, 1, 4], vec![1, 3], vec![1, 2], vec![0, 1, 3], vec![0, 2]],
        )
    }

    #[test]
    fn mines_expected_sets_at_minsup_2() {
        let got = mine_frequent(&db(), 2, EclatLimit::Unbounded).unwrap();
        let mut sets: Vec<(Vec<u32>, u32)> =
            got.into_iter().map(|is| (is.items, is.support)).collect();
        sets.sort();
        let expected: Vec<(Vec<u32>, u32)> = vec![
            (vec![0], 3),
            (vec![0, 1], 2),
            (vec![1], 4),
            (vec![1, 3], 2),
            (vec![2], 2),
            (vec![3], 2),
        ];
        assert_eq!(sets, expected);
    }

    #[test]
    fn minsup_one_enumerates_every_occurring_set() {
        let got = mine_frequent(&db(), 1, EclatLimit::Unbounded).unwrap();
        // {0,1,4} occurs once; its subsets all occur.
        assert!(got.iter().any(|s| s.items == vec![0, 1, 4] && s.support == 1));
    }

    #[test]
    fn cap_is_enforced() {
        let err = mine_frequent(&db(), 1, EclatLimit::MaxItemsets(3)).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn high_minsup_yields_nothing() {
        let got = mine_frequent(&db(), 6, EclatLimit::Unbounded).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn parallel_mining_identical_to_sequential() {
        // 64 items / 120 synthetic transactions: the root fan-out exceeds
        // PAR_FANOUT_MIN, so the parallel intersection path runs. Output
        // must match the sequential miner exactly, order included.
        let n_items = 64usize;
        let txs: Vec<Vec<u32>> = (0..120u32)
            .map(|t| {
                (0..n_items as u32).filter(|&i| (t * 7 + i * 11) % 5 < 2).collect::<Vec<u32>>()
            })
            .collect();
        let db = TransactionDb::from_transactions(n_items, &txs);
        let seq = mine_frequent_with_threads(&db, 30, EclatLimit::Unbounded, 1).unwrap();
        assert!(!seq.is_empty());
        for threads in [2, 4, 7] {
            let par = mine_frequent_with_threads(&db, 30, EclatLimit::Unbounded, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
        // The cap error is reproduced identically too.
        let seq_err = mine_frequent_with_threads(&db, 30, EclatLimit::MaxItemsets(5), 1);
        let par_err = mine_frequent_with_threads(&db, 30, EclatLimit::MaxItemsets(5), 4);
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn supports_are_exact() {
        let d = db();
        for s in mine_frequent(&d, 2, EclatLimit::Unbounded).unwrap() {
            assert_eq!(s.support, d.support(&s.items), "support mismatch for {:?}", s.items);
        }
    }
}
