//! # revmax-fim — frequent & maximal frequent itemset mining
//!
//! The `FreqItemset` baselines of *Mining Revenue-Maximizing Bundling
//! Configuration* (VLDB'15, Section 6.1.3) simulate Amazon's "Frequently
//! Bought Together" by mining **maximal frequent itemsets** from the
//! consumers-as-transactions view of the data (a consumer's transaction is
//! the set of items she has non-zero willingness to pay for). The paper uses
//! MAFIA (Burdick, Calimlim, Gehrke — ICDM'01); this crate implements the
//! same vertical-bitmap depth-first miner from scratch:
//!
//! * [`TransactionDb`] — vertical layout: one transaction bitmap per item.
//! * [`mine_maximal`] — MAFIA-style DFS over the set-enumeration tree with
//!   dynamic tail reordering, parent-equivalence pruning (PEP), FHUT
//!   (frequent head-union-tail shortcut) and HUTMFI (subsumption-based
//!   subtree pruning).
//! * [`mine_frequent`] — Eclat-style DFS enumerating *all* frequent
//!   itemsets (with an explosion guard).
//! * [`apriori`] — textbook levelwise reference implementation (Agrawal &
//!   Srikant, VLDB'94), used to cross-validate the miners in tests.
//!
//! ```
//! use revmax_fim::{TransactionDb, mine_maximal};
//!
//! let db = TransactionDb::from_transactions(4, &[
//!     vec![0, 1, 2],
//!     vec![0, 1, 2],
//!     vec![0, 1],
//!     vec![3],
//! ]);
//! let maximal = mine_maximal(&db, 2);
//! // {0,1,2} is frequent at support 2 and subsumes {0,1}.
//! assert_eq!(maximal.len(), 1);
//! assert_eq!(maximal[0].items, vec![0, 1, 2]);
//! assert_eq!(maximal[0].support, 2);
//! ```

mod apriori;
mod bitmap;
mod db;
mod eclat;
mod maximal;

pub use apriori::apriori;
pub use bitmap::Bitmap;
pub use db::TransactionDb;
pub use eclat::{mine_frequent, mine_frequent_with_threads, EclatLimit};
pub use maximal::{mine_maximal, mine_maximal_with_threads};

/// A mined itemset: sorted item ids plus its transaction support.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Itemset {
    /// Item ids, strictly increasing.
    pub items: Vec<u32>,
    /// Number of transactions containing every item of the set.
    pub support: u32,
}

impl Itemset {
    /// True if `self`'s items are a subset of `other`'s.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_subset(&self.items, &other.items)
    }
}

/// Subset test on strictly-increasing id slices (merge scan).
pub(crate) fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut it = b.iter();
    'outer: for &x in a {
        for &y in it.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Convert a relative minimum support (fraction of transactions) to an
/// absolute transaction count, the form the miners take. Always at least 1.
///
/// The paper's default for the baselines is 0.1%: `relative_minsup(0.001, m)`.
pub fn relative_minsup(fraction: f64, n_transactions: usize) -> u32 {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1], got {fraction}");
    ((fraction * n_transactions as f64).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_merge_scan() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1]));
        assert!(!is_subset(&[1, 2], &[2]));
    }

    #[test]
    fn relative_minsup_rounds_up_and_floors_at_one() {
        assert_eq!(relative_minsup(0.001, 4449), 5); // the paper's setting
        assert_eq!(relative_minsup(0.0, 100), 1);
        assert_eq!(relative_minsup(1.0, 100), 100);
        assert_eq!(relative_minsup(0.5, 3), 2);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn relative_minsup_rejects_out_of_range() {
        relative_minsup(1.5, 10);
    }
}
