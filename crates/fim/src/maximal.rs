//! MAFIA-style maximal frequent itemset mining.
//!
//! Depth-first search over the set-enumeration tree with the three classic
//! MAFIA prunings (Burdick, Calimlim, Gehrke — ICDM'01):
//!
//! * **PEP** (parent equivalence pruning): a tail item whose conditional
//!   support equals the prefix's support belongs to *every* maximal superset
//!   of the prefix, so it is moved into the prefix unconditionally.
//! * **FHUT** (frequent head-union-tail): if prefix ∪ tail is itself
//!   frequent, it is the unique candidate from this subtree.
//! * **HUTMFI**: if prefix ∪ tail is a subset of an already-found maximal
//!   set, the whole subtree is subsumed and is skipped.
//!
//! Tails are dynamically reordered by increasing conditional support, which
//! empirically keeps the search tree small (failing extensions first).
//! Correctness of emission-time subsumption checking follows from the
//! left-to-right exploration order: any maximal superset of an emitted
//! candidate lives in an earlier subtree (see the module tests, which
//! cross-check against a filter over Eclat's full output).

use crate::{Bitmap, Itemset, TransactionDb};
use revmax_par::par_index_map;

/// Minimum tail length before one node's conditional-bitmap intersections
/// fan out across worker threads (same contract as the Eclat threshold:
/// data-dependent only, so output is identical at any thread count).
const PAR_FANOUT_MIN: usize = 32;

/// Mine the maximal frequent itemsets at absolute support `minsup ≥ 1`.
///
/// Output is sorted lexicographically by items; every set carries its exact
/// support. Singletons that are frequent but extendable never appear — only
/// maximal sets do. Single-threaded; see [`mine_maximal_with_threads`].
pub fn mine_maximal(db: &TransactionDb, minsup: u32) -> Vec<Itemset> {
    mine_maximal_with_threads(db, minsup, 1)
}

/// [`mine_maximal`] with each DFS node's tidset intersections spread over
/// up to `threads` workers. Output is bit-identical to the sequential
/// miner at any thread count: the intersections are independent, their
/// tail order is preserved, and the PEP/emission logic stays sequential
/// (`DESIGN.md` §6).
pub fn mine_maximal_with_threads(db: &TransactionDb, minsup: u32, threads: usize) -> Vec<Itemset> {
    assert!(minsup >= 1, "minsup must be >= 1");
    let roots: Vec<(u32, Bitmap, u32)> = (0..db.n_items() as u32)
        .filter_map(|i| {
            let bm = db.item_bitmap(i);
            let sup = bm.count();
            (sup >= minsup).then(|| (i, bm.clone(), sup))
        })
        .collect();
    let mut miner = Miner {
        minsup,
        threads: threads.max(1),
        found: Vec::new(),
        index: InvertedIndex::default(),
    };
    // Root: empty prefix with full-transaction "bitmap" (represented lazily:
    // each root already carries its own bitmap, so recursion starts per-root
    // the same way inner nodes do).
    let mut ordered = roots;
    ordered.sort_by_key(|r| r.2); // increasing support
    miner.search(&mut Vec::new(), None, ordered);
    let mut out = miner.found;
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

#[derive(Default)]
struct InvertedIndex {
    /// For each item id, the indices of found maximal sets containing it.
    by_item: Vec<Vec<u32>>,
}

impl InvertedIndex {
    fn ensure(&mut self, item: u32) {
        if self.by_item.len() <= item as usize {
            self.by_item.resize(item as usize + 1, Vec::new());
        }
    }

    fn insert(&mut self, set_idx: u32, items: &[u32]) {
        for &i in items {
            self.ensure(i);
            self.by_item[i as usize].push(set_idx);
        }
    }

    /// Candidate set ids that contain `item` (empty if none).
    fn sets_with(&self, item: u32) -> &[u32] {
        self.by_item.get(item as usize).map(Vec::as_slice).unwrap_or(&[])
    }
}

struct Miner {
    minsup: u32,
    threads: usize,
    found: Vec<Itemset>,
    index: InvertedIndex,
}

impl Miner {
    /// Is `candidate` (sorted) a subset of any found maximal set?
    fn subsumed(&self, candidate: &[u32]) -> bool {
        let Some(&probe) = candidate.first() else { return !self.found.is_empty() };
        // Scan only the sets containing the first item (fewest on average
        // after reordering, and any superset must contain it).
        self.index
            .sets_with(probe)
            .iter()
            .any(|&si| crate::is_subset(candidate, &self.found[si as usize].items))
    }

    fn emit(&mut self, items: Vec<u32>, support: u32) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        if !self.subsumed(&items) {
            let idx = self.found.len() as u32;
            self.index.insert(idx, &items);
            self.found.push(Itemset { items, support });
        }
    }

    /// DFS. `prefix` is the current head (sorted), `pbm` its bitmap (None at
    /// the artificial root), `tail` the frequent extensions with their
    /// conditional bitmaps and supports, in increasing-support order.
    fn search(
        &mut self,
        prefix: &mut Vec<u32>,
        pbm: Option<&Bitmap>,
        tail: Vec<(u32, Bitmap, u32)>,
    ) {
        if tail.is_empty() {
            if let Some(bm) = pbm {
                let mut items = prefix.clone();
                items.sort_unstable();
                self.emit(items, bm.count());
            }
            return;
        }
        // HUTMFI: prefix ∪ tail already covered by a known maximal set?
        let mut hut: Vec<u32> = prefix.iter().copied().chain(tail.iter().map(|t| t.0)).collect();
        hut.sort_unstable();
        if self.subsumed(&hut) {
            return;
        }
        // FHUT: is prefix ∪ tail itself frequent?
        {
            let mut acc = tail[0].1.clone();
            for (_, bm, _) in &tail[1..] {
                acc.and_assign(bm);
            }
            // Tail bitmaps are already conditioned on the prefix.
            let sup = acc.count();
            if sup >= self.minsup {
                self.emit(hut, sup);
                return;
            }
        }
        for idx in 0..tail.len() {
            let (item, bm, _sup) = &tail[idx];
            let item = *item;
            prefix.push(item);
            // Build the child's tail from strictly later entries, applying
            // PEP: equal-support extensions join the prefix immediately.
            let parent_sup = bm.count();
            let mut pep_moved: Vec<u32> = Vec::new();
            let mut child_tail: Vec<(u32, Bitmap, u32)> = Vec::new();
            let mut child_bm = bm.clone();
            // The independent tidset intersections of this node, fanned out
            // over workers for wide tails; PEP classification stays
            // sequential in tail order, so the child tail is identical to
            // the sequential construction.
            let exts = &tail[idx + 1..];
            let intersected: Vec<(u32, Bitmap, u32)> =
                if self.threads > 1 && exts.len() >= PAR_FANOUT_MIN {
                    par_index_map(self.threads, exts.len(), |j| {
                        let (jtem, jbm, _) = &exts[j];
                        let nbm = bm.and(jbm);
                        let nsup = nbm.count();
                        (*jtem, nbm, nsup)
                    })
                } else {
                    exts.iter()
                        .map(|(jtem, jbm, _)| {
                            let nbm = bm.and(jbm);
                            let nsup = nbm.count();
                            (*jtem, nbm, nsup)
                        })
                        .collect()
                };
            for (jtem, nbm, nsup) in intersected {
                if nsup < self.minsup {
                    continue;
                }
                if nsup == parent_sup {
                    // PEP: jtem occurs in every transaction of the prefix.
                    pep_moved.push(jtem);
                    child_bm.and_assign(&nbm); // no-op on support, keeps bitmap consistent
                } else {
                    child_tail.push((jtem, nbm, nsup));
                }
            }
            prefix.extend_from_slice(&pep_moved);
            child_tail.sort_by_key(|t| t.2);
            // PEP items' bitmaps equal the prefix bitmap, but child_tail
            // bitmaps were conditioned on `bm` only; re-condition on the PEP
            // items is a no-op because their tid-sets contain bm's.
            self.search(prefix, Some(&child_bm), child_tail);
            prefix.truncate(prefix.len() - 1 - pep_moved.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine_frequent, EclatLimit};

    /// Reference: maximal sets = frequent sets with no frequent strict
    /// superset (filter over Eclat's complete output).
    fn reference_maximal(db: &TransactionDb, minsup: u32) -> Vec<Itemset> {
        let all = mine_frequent(db, minsup, EclatLimit::Unbounded).unwrap();
        let mut out: Vec<Itemset> = all
            .iter()
            .filter(|s| !all.iter().any(|t| t.items.len() > s.items.len() && s.is_subset_of(t)))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.items.cmp(&b.items));
        out
    }

    fn check(db: &TransactionDb, minsup: u32) {
        let got = mine_maximal(db, minsup);
        let want = reference_maximal(db, minsup);
        assert_eq!(got, want, "maximal mismatch at minsup {minsup}");
    }

    #[test]
    fn textbook_example() {
        let db = TransactionDb::from_transactions(
            5,
            &[vec![0, 1, 4], vec![1, 3], vec![1, 2], vec![0, 1, 3], vec![0, 2]],
        );
        for minsup in 1..=5 {
            check(&db, minsup);
        }
    }

    #[test]
    fn single_maximal_superset() {
        let db = TransactionDb::from_transactions(
            4,
            &[vec![0, 1, 2], vec![0, 1, 2], vec![0, 1], vec![3]],
        );
        let got = mine_maximal(&db, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![0, 1, 2]);
        assert_eq!(got[0].support, 2);
    }

    #[test]
    fn pep_merges_equal_support_items() {
        // Items 0 and 1 always co-occur: PEP should fuse them.
        let db =
            TransactionDb::from_transactions(3, &[vec![0, 1], vec![0, 1], vec![0, 1, 2], vec![2]]);
        let got = mine_maximal(&db, 2);
        assert!(got.iter().any(|s| s.items == vec![0, 1] && s.support == 3));
        for minsup in 1..=4 {
            check(&db, minsup);
        }
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::from_transactions(3, &[]);
        assert!(mine_maximal(&db, 1).is_empty());
    }

    #[test]
    fn disjoint_transactions() {
        let db = TransactionDb::from_transactions(
            6,
            &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3], vec![4, 5]],
        );
        let got = mine_maximal(&db, 2);
        let sets: Vec<Vec<u32>> = got.iter().map(|s| s.items.clone()).collect();
        assert_eq!(sets, vec![vec![0, 1], vec![2, 3]]);
        check(&db, 2);
    }

    #[test]
    fn dense_random_cross_check() {
        // Pseudo-random database, all minsups, vs the Eclat filter.
        let mut state = 42u64;
        let mut txs = Vec::new();
        for _ in 0..40 {
            let mut tx = Vec::new();
            for item in 0..10u32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (state >> 33) % 10 < 4 {
                    tx.push(item);
                }
            }
            txs.push(tx);
        }
        let db = TransactionDb::from_transactions(10, &txs);
        for minsup in [1, 2, 3, 5, 8, 12, 20] {
            check(&db, minsup);
        }
    }

    #[test]
    fn parallel_maximal_identical_to_sequential() {
        // 64 items so root tails exceed PAR_FANOUT_MIN and the parallel
        // intersection path actually runs.
        let n_items = 64usize;
        let txs: Vec<Vec<u32>> = (0..150u32)
            .map(|t| (0..n_items as u32).filter(|&i| (t * 13 + i * 7) % 6 < 2).collect())
            .collect();
        let db = TransactionDb::from_transactions(n_items, &txs);
        let seq = mine_maximal_with_threads(&db, 20, 1);
        assert!(!seq.is_empty());
        assert_eq!(seq, mine_maximal(&db, 20));
        for threads in [2, 4, 7] {
            assert_eq!(mine_maximal_with_threads(&db, 20, threads), seq, "threads={threads}");
        }
    }
}
