//! Property tests tying the three miners together on random databases:
//! Eclat must equal Apriori exactly; the maximal miner must equal the
//! maximality filter over Eclat's output.

use proptest::prelude::*;
use revmax_fim::{apriori, mine_frequent, mine_maximal, EclatLimit, Itemset, TransactionDb};

fn arb_db(max_items: usize, max_tx: usize) -> impl Strategy<Value = TransactionDb> {
    (2usize..=max_items).prop_flat_map(move |n| {
        let tx = proptest::collection::vec(0u32..n as u32, 0..=n);
        proptest::collection::vec(tx, 0..=max_tx).prop_map(move |mut txs| {
            for tx in &mut txs {
                tx.sort_unstable();
                tx.dedup();
            }
            TransactionDb::from_transactions(n, &txs)
        })
    })
}

fn normalized(mut sets: Vec<Itemset>) -> Vec<(Vec<u32>, u32)> {
    sets.sort_by(|a, b| a.items.cmp(&b.items));
    sets.into_iter().map(|s| (s.items, s.support)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn eclat_equals_apriori(db in arb_db(8, 24), minsup in 1u32..6) {
        let e = normalized(mine_frequent(&db, minsup, EclatLimit::Unbounded).unwrap());
        let a = normalized(apriori(&db, minsup));
        prop_assert_eq!(e, a);
    }

    #[test]
    fn maximal_equals_filtered_frequent(db in arb_db(9, 30), minsup in 1u32..6) {
        let all = mine_frequent(&db, minsup, EclatLimit::Unbounded).unwrap();
        let mut expect: Vec<Itemset> = all
            .iter()
            .filter(|s| !all.iter().any(|t| t.items.len() > s.items.len() && s.is_subset_of(t)))
            .cloned()
            .collect();
        expect.sort_by(|a, b| a.items.cmp(&b.items));
        let got = mine_maximal(&db, minsup);
        prop_assert_eq!(normalized(got), normalized(expect));
    }

    #[test]
    fn maximal_sets_are_frequent_and_pairwise_unrelated(db in arb_db(10, 25), minsup in 1u32..5) {
        let got = mine_maximal(&db, minsup);
        for s in &got {
            prop_assert!(s.support >= minsup);
            prop_assert_eq!(s.support, db.support(&s.items));
        }
        for (i, a) in got.iter().enumerate() {
            for b in got.iter().skip(i + 1) {
                prop_assert!(!a.is_subset_of(b) && !b.is_subset_of(a),
                    "maximal sets related: {:?} vs {:?}", a.items, b.items);
            }
        }
    }
}
