//! Property suite for the unified `Objective` API (DESIGN.md §13):
//!
//! * `Objective::Mean` is **bit-identical** to the pre-objective solver —
//!   the default registry, the objective-knobbed registry, and
//!   `Market::with_objective(Mean)` all agree bit for bit across all seven
//!   configurators and thread counts 1/2/8;
//! * `Cvar(1.0)` degenerates to the mean bit for bit on finite markets
//!   (the `(buyers − 0)·max/1.0` identities, pinned end to end);
//! * robust (CVaR/quantile) solves are thread-count invariant — the §6
//!   determinism contract extends to every objective;
//! * distinct objectives separate `Params` fingerprints pairwise, so a
//!   CVaR solve can never hit a cached mean solve.

use proptest::prelude::*;
use revmax_core::algorithms::{registry, registry_with, RegistryOptions};
use revmax_core::market::Market;
use revmax_core::objective::Objective;
use revmax_core::params::Params;
use revmax_core::prelude::Threads;
use revmax_core::wtp::WtpMatrix;

/// Random dense markets with at least one positive WTP, θ ∈ [−0.1, 0.15].
fn arb_market() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..60u32).prop_map(|raw| if raw < 20 { 0.0 } else { raw as f64 * 0.5 })
    }
    (2usize..7, 1usize..5)
        .prop_flat_map(move |(m, n)| {
            (
                proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m),
                -10i32..=15,
            )
                .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
        })
        .prop_filter("needs sellable content", |(rows, _)| rows.iter().flatten().any(|&w| w > 0.0))
}

/// Quantile levels safely inside (0, 1).
fn arb_q() -> impl Strategy<Value = f64> {
    (1u32..=19).prop_map(|k| k as f64 / 20.0)
}

fn market(rows: &[Vec<f64>], theta: f64, threads: usize, objective: Objective) -> Market {
    Market::new(
        WtpMatrix::from_rows(rows.to_vec()),
        Params::default()
            .with_theta(theta)
            .with_threads(Threads::Fixed(threads))
            .with_objective(objective),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mean_objective_is_bit_identical_to_the_legacy_path((rows, theta) in arb_market()) {
        for threads in [1usize, 2, 8] {
            let legacy = market(&rows, theta, threads, Objective::Mean);
            let knobbed = registry_with(RegistryOptions {
                objective: Some(Objective::Mean),
                ..Default::default()
            });
            for ((name, plain), (_, via_knob)) in registry().into_iter().zip(knobbed) {
                let a = plain.run(&legacy);
                let b = via_knob.run(&legacy);
                prop_assert_eq!(
                    a.revenue.to_bits(), b.revenue.to_bits(),
                    "{} at {} threads", name, threads
                );
                prop_assert_eq!(&a.config, &b.config, "{} at {} threads", name, threads);
                // The objective-scored revenue under Mean is the legacy
                // expected revenue, bit for bit.
                prop_assert_eq!(
                    a.config.revenue(&legacy, Objective::Mean).to_bits(),
                    a.config.expected_revenue(&legacy).to_bits(),
                    "{}", name
                );
            }
        }
    }

    #[test]
    fn cvar_at_one_degenerates_to_mean_bit_for_bit((rows, theta) in arb_market()) {
        for threads in [1usize, 2, 8] {
            let mean = market(&rows, theta, threads, Objective::Mean);
            let cvar1 = market(&rows, theta, threads, Objective::Cvar(1.0));
            for (name, c) in registry() {
                let a = c.run(&mean);
                let b = c.run(&cvar1);
                prop_assert_eq!(
                    a.revenue.to_bits(), b.revenue.to_bits(),
                    "{} at {} threads", name, threads
                );
                prop_assert_eq!(&a.config, &b.config, "{} at {} threads", name, threads);
                prop_assert_eq!(
                    a.config.revenue(&mean, Objective::Cvar(1.0)).to_bits(),
                    a.config.expected_revenue(&mean).to_bits(),
                    "{}", name
                );
            }
        }
    }

    #[test]
    fn robust_solves_are_thread_count_invariant((rows, theta) in arb_market(), q in arb_q()) {
        for objective in [Objective::Cvar(q), Objective::Quantile(q)] {
            let reference = market(&rows, theta, 1, objective);
            let reference: Vec<_> =
                registry().into_iter().map(|(n, c)| (n, c.run(&reference))).collect();
            for threads in [2usize, 8] {
                let m = market(&rows, theta, threads, objective);
                for ((name, base), (_, c)) in reference.iter().zip(registry()) {
                    let again = c.run(&m);
                    prop_assert_eq!(
                        base.revenue.to_bits(), again.revenue.to_bits(),
                        "{} under {:?} at {} threads", name, objective, threads
                    );
                    prop_assert_eq!(
                        &base.config, &again.config,
                        "{} under {:?} at {} threads", name, objective, threads
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn objectives_separate_fingerprints_pairwise(qa in arb_q(), qb in arb_q()) {
        let mut objectives = vec![
            Objective::Mean,
            Objective::Cvar(1.0),
            Objective::Cvar(qa),
            Objective::Quantile(qa),
        ];
        if qb != qa {
            objectives.push(Objective::Cvar(qb));
            objectives.push(Objective::Quantile(qb));
        }
        let fps: Vec<u64> = objectives
            .iter()
            .map(|&o| Params::default().with_objective(o).fingerprint())
            .collect();
        for i in 0..objectives.len() {
            for j in (i + 1)..objectives.len() {
                prop_assert_ne!(
                    fps[i], fps[j],
                    "{:?} and {:?} must fingerprint apart", objectives[i], objectives[j]
                );
            }
        }
    }
}
