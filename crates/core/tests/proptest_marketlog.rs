//! Property tests for the event-sourced delta layer (`DESIGN.md` §10):
//!
//! 1. **Replay ≡ rebuild**: a random event stream applied through a
//!    [`MarketLog`] reads bit-for-bit like a `Market` rebuilt from scratch
//!    on the stream's net content — every row, every column, the totals,
//!    and the content fingerprint. Replaying the recorded history onto the
//!    same base reproduces the log exactly (both fingerprint halves).
//! 2. **Compaction identity**: folding the pending deltas into a fresh
//!    arena changes no read and no content fingerprint.
//! 3. **Fingerprint separation/collision**: every event type moves the
//!    `(base, delta)` fingerprint, and equivalent histories (same net
//!    effect through different event sequences) collide.

use proptest::prelude::*;
use revmax_core::fingerprint::DeltaFingerprint;
use revmax_core::market::Market;
use revmax_core::marketlog::{Event, MarketLog};
use revmax_core::params::Params;
use revmax_core::wtp::WtpMatrix;

/// A random dense base matrix (unpriced) plus θ.
fn arb_base() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..80u32).prop_map(|raw| if raw < 30 { 0.0 } else { raw as f64 * 0.25 })
    }
    (1usize..5, 1usize..5).prop_flat_map(move |(m, n)| {
        (proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m), -10i32..=10)
            .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
    })
}

/// An abstract churn op; indices are seeds resolved modulo the current
/// dimensions at apply time, so every generated stream is valid.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { u: usize, i: usize, w: f64 },
    Delete { u: usize, i: usize },
    AddUser,
    AddItem,
    RetireUser { u: usize },
    RetireItem { i: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Weighted selector: upserts most common, structural events rarer.
    let op = (0u32..10, 0usize..64, 0usize..64, 1u32..60).prop_map(|(sel, u, i, w)| match sel {
        0..=3 => Op::Upsert { u, i, w: w as f64 * 0.5 },
        4..=5 => Op::Delete { u, i },
        6 => Op::AddUser,
        7 => Op::AddItem,
        8 => Op::RetireUser { u },
        _ => Op::RetireItem { i },
    });
    proptest::collection::vec(op, 0..12)
}

/// Dense reference model mirroring what the log's snapshot must read.
struct Model {
    rows: Vec<Vec<f64>>,
    retired_users: Vec<bool>,
    retired_items: Vec<bool>,
}

impl Model {
    fn new(rows: &[Vec<f64>]) -> Model {
        Model {
            retired_users: vec![false; rows.len()],
            retired_items: vec![false; rows[0].len()],
            rows: rows.to_vec(),
        }
    }

    /// Apply `op` to both the model and the log; returns false if the op
    /// had no valid target (retired id) and was skipped.
    fn step(&mut self, log: &mut MarketLog, op: Op) -> Result<bool, String> {
        let (nu, ni) = (self.rows.len(), self.rows[0].len());
        match op {
            Op::Upsert { u, i, w } => {
                let (u, i) = (u % nu, i % ni);
                if self.retired_users[u] || self.retired_items[i] {
                    return Ok(false);
                }
                log.apply(Event::UpsertWtp { user: u as u32, item: i as u32, wtp: w })?;
                self.rows[u][i] = w;
            }
            Op::Delete { u, i } => {
                let (u, i) = (u % nu, i % ni);
                log.apply(Event::DeleteWtp { user: u as u32, item: i as u32 })?;
                self.rows[u][i] = 0.0;
            }
            Op::AddUser => {
                log.apply(Event::AddUser)?;
                self.rows.push(vec![0.0; ni]);
                self.retired_users.push(false);
            }
            Op::AddItem => {
                log.apply(Event::AddItem { listed_price: None })?;
                for r in &mut self.rows {
                    r.push(0.0);
                }
                self.retired_items.push(false);
            }
            Op::RetireUser { u } => {
                let u = u % nu;
                log.apply(Event::RetireUser { user: u as u32 })?;
                self.rows[u].iter_mut().for_each(|w| *w = 0.0);
                self.retired_users[u] = true;
            }
            Op::RetireItem { i } => {
                let i = i % ni;
                log.apply(Event::RetireItem { item: i as u32 })?;
                self.rows.iter_mut().for_each(|r| r[i] = 0.0);
                self.retired_items[i] = true;
            }
        }
        Ok(true)
    }
}

/// Every read of `a` must be bit-identical to `b`: dimensions, totals,
/// every row, every column, and the content fingerprint.
fn assert_reads_identical(a: &Market, b: &Market) {
    let (wa, wb) = (a.wtp(), b.wtp());
    prop_assert_eq!(wa.n_users(), wb.n_users());
    prop_assert_eq!(wa.n_items(), wb.n_items());
    prop_assert_eq!(wa.nnz(), wb.nnz());
    prop_assert_eq!(wa.total_wtp().to_bits(), wb.total_wtp().to_bits());
    for u in 0..wa.n_users() as u32 {
        let (ra, rb) = (wa.row(u), wb.row(u));
        prop_assert_eq!(ra.ids, rb.ids, "row {} ids", u);
        let (va, vb): (Vec<u64>, Vec<u64>) = (
            ra.values.iter().map(|w| w.to_bits()).collect(),
            rb.values.iter().map(|w| w.to_bits()).collect(),
        );
        prop_assert_eq!(va, vb, "row {} values", u);
    }
    for i in 0..wa.n_items() as u32 {
        let (ca, cb) = (wa.col(i), wb.col(i));
        prop_assert_eq!(ca.ids, cb.ids, "col {} ids", i);
        let (va, vb): (Vec<u64>, Vec<u64>) = (
            ca.values.iter().map(|w| w.to_bits()).collect(),
            cb.values.iter().map(|w| w.to_bits()).collect(),
        );
        prop_assert_eq!(va, vb, "col {} values", i);
    }
    prop_assert_eq!(a.fingerprint(), b.fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn replay_reads_like_a_from_scratch_rebuild((rows, theta) in arb_base(), ops in arb_ops()) {
        let base = Market::new(WtpMatrix::from_rows(rows.clone()), Params::default().with_theta(theta));
        let mut log = MarketLog::new(base.clone());
        let mut model = Model::new(&rows);
        for op in ops {
            model.step(&mut log, op).unwrap();
        }

        // The overlay snapshot reads bit-for-bit like a market rebuilt from
        // the model's dense content.
        let snapshot = log.snapshot();
        let rebuilt = Market::new(
            WtpMatrix::from_rows(model.rows.clone()),
            Params::default().with_theta(theta),
        );
        assert_reads_identical(&snapshot, &rebuilt);

        // Replaying the recorded history onto the same base reproduces the
        // log exactly: same reads, same (base, delta) fingerprint.
        let replayed = MarketLog::replay(base, log.events()).unwrap();
        assert_reads_identical(&replayed.snapshot(), &snapshot);
        prop_assert_eq!(replayed.fingerprint(), log.fingerprint());
    }

    #[test]
    fn compaction_is_identity_on_reads((rows, theta) in arb_base(), ops in arb_ops()) {
        let base = Market::new(WtpMatrix::from_rows(rows.clone()), Params::default().with_theta(theta));
        let mut log = MarketLog::new(base);
        let mut model = Model::new(&rows);
        for op in ops {
            model.step(&mut log, op).unwrap();
        }
        let before = log.snapshot();
        log.compact();
        prop_assert_eq!(log.pending_overrides(), 0);
        let after = log.snapshot();
        prop_assert!(!after.wtp().has_delta(), "compaction must leave a pristine arena");
        assert_reads_identical(&after, &before);
    }

    #[test]
    fn every_event_type_moves_the_delta_fingerprint((rows, theta) in arb_base()) {
        let base = Market::new(WtpMatrix::from_rows(rows.clone()), Params::default().with_theta(theta));
        let log = MarketLog::new(base);
        let fp0 = log.fingerprint();

        // Each event type, applied to a fresh clone, separates the delta
        // half (the base half never moves without compaction).
        let (nu, ni) = (rows.len() as u32, rows[0].len() as u32);
        let mut variants: Vec<(&str, Event)> = vec![
            ("add_user", Event::AddUser),
            ("add_item", Event::AddItem { listed_price: None }),
            ("upsert", Event::UpsertWtp { user: 0, item: 0, wtp: rows[0][0] + 1.0 }),
            ("retire_user", Event::RetireUser { user: nu - 1 }),
            ("retire_item", Event::RetireItem { item: ni - 1 }),
        ];
        // A delete only moves the fingerprint when the cell exists.
        if let Some((u, i)) = (0..nu)
            .flat_map(|u| (0..ni).map(move |i| (u, i)))
            .find(|&(u, i)| rows[u as usize][i as usize] > 0.0)
        {
            variants.push(("delete", Event::DeleteWtp { user: u, item: i }));
        }
        let mut fps: Vec<(&str, DeltaFingerprint)> = vec![("untouched", fp0)];
        for (name, event) in variants {
            let mut l = log.clone();
            l.apply(event).unwrap();
            let fp = l.fingerprint();
            prop_assert_eq!(fp.base, fp0.base, "{}: base half must not move", name);
            for (other, prev) in &fps {
                prop_assert_ne!(
                    fp.combined(), prev.combined(),
                    "{} must separate from {}", name, other
                );
            }
            fps.push((name, fp));
        }
    }

    #[test]
    fn equivalent_histories_collide(
        (rows, theta) in arb_base(),
        w1 in 1u32..40,
        w2 in 41u32..80,
    ) {
        let base = Market::new(WtpMatrix::from_rows(rows.clone()), Params::default().with_theta(theta));
        let (w1, w2) = (w1 as f64 * 0.5, w2 as f64 * 0.5);

        // Overwriting an override ≡ writing the final value directly.
        let mut a = MarketLog::new(base.clone());
        a.apply(Event::UpsertWtp { user: 0, item: 0, wtp: w1 }).unwrap();
        a.apply(Event::UpsertWtp { user: 0, item: 0, wtp: w2 }).unwrap();
        let mut b = MarketLog::new(base.clone());
        b.apply(Event::UpsertWtp { user: 0, item: 0, wtp: w2 }).unwrap();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_ne!(a.events().len(), b.events().len(), "histories differ, content agrees");

        // Upserting the base's own content (bit-equal) cancels: ≡ untouched.
        if rows[0][0] > 0.0 {
            let mut c = MarketLog::new(base.clone());
            c.apply(Event::UpsertWtp { user: 0, item: 0, wtp: w1 }).unwrap();
            c.apply(Event::UpsertWtp { user: 0, item: 0, wtp: rows[0][0] }).unwrap();
            prop_assert_eq!(c.fingerprint(), MarketLog::new(base.clone()).fingerprint());
        }

        // Upsert-then-delete of a base-absent cell ≡ untouched.
        if rows[0][0] == 0.0 {
            let mut d = MarketLog::new(base.clone());
            d.apply(Event::UpsertWtp { user: 0, item: 0, wtp: w1 }).unwrap();
            d.apply(Event::DeleteWtp { user: 0, item: 0 }).unwrap();
            prop_assert_eq!(d.fingerprint(), MarketLog::new(base).fingerprint());
        }
    }
}
