//! Property tests for the dual-CSR storage layer (`DESIGN.md` §7):
//!
//! 1. Both CSR orientations (row and column views) agree entry-for-entry
//!    with a dense reference matrix, whatever order the triples arrive in.
//! 2. Any [`MarketView`] — item subset, user subset, or both — answers
//!    every solve **bit-identically** to a `Market` built from scratch on
//!    the restricted triples: same revenue, same prices, same bundles,
//!    for every configurator in the registry.

use proptest::prelude::*;
use revmax_core::algorithms::registry;
use revmax_core::market::Market;
use revmax_core::params::{Params, Threads};
use revmax_core::wtp::WtpMatrix;

/// A random dense WTP matrix (entries 0 with ~40% probability) plus θ.
fn arb_dense() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    // ~3/8 of cells are zero, the rest positive quarter-dollar amounts.
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..80u32).prop_map(|raw| if raw < 30 { 0.0 } else { raw as f64 * 0.25 })
    }
    let dims = (1usize..7, 1usize..7);
    dims.prop_flat_map(move |(m, n)| {
        (proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m), -20i32..=20)
            .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
    })
}

/// Dense → sorted nonzero triples.
fn triples_of(dense: &[Vec<f64>]) -> Vec<(u32, u32, f64)> {
    let mut t = Vec::new();
    for (u, row) in dense.iter().enumerate() {
        for (i, &w) in row.iter().enumerate() {
            if w > 0.0 {
                t.push((u as u32, i as u32, w));
            }
        }
    }
    t
}

/// Canonical bit-exact serialization of an outcome (prices, revenues,
/// bundle structure) for cross-checking two solves.
fn canon(o: &revmax_core::config::Outcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    write!(s, "{}|{:016x}|{:016x}|", o.algorithm, o.revenue.to_bits(), o.gain.to_bits()).unwrap();
    fn node(n: &revmax_core::config::OfferNode, out: &mut String) {
        use std::fmt::Write as _;
        write!(out, "[{:?}@{:016x}", n.bundle.items(), n.price.to_bits()).unwrap();
        for c in &n.children {
            node(c, out);
        }
        out.push(']');
    }
    for r in &o.config.roots {
        node(r, &mut s);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn csr_orientations_agree_with_dense_reference((dense, _) in arb_dense(), seed in 0u64..1000) {
        // Shuffle the triples deterministically: the builder must not care
        // about arrival order.
        let mut triples = triples_of(&dense);
        let k = triples.len();
        for idx in 0..k {
            let j = (seed as usize).wrapping_mul(31).wrapping_add(idx * 7) % k;
            triples.swap(idx, j);
        }
        let (m, n) = (dense.len(), dense[0].len());
        let w = WtpMatrix::from_triples(m, n, triples, None);

        // Entry-wise agreement through both orientations.
        for (u, row) in dense.iter().enumerate() {
            for (i, &want) in row.iter().enumerate() {
                prop_assert_eq!(w.get(u as u32, i as u32), want);
                prop_assert_eq!(w.row(u as u32).get(i as u32), want);
            }
        }
        // Row/col slices are sorted, consistent, and cover exactly nnz.
        let mut nnz = 0usize;
        for i in 0..n as u32 {
            let col = w.col(i);
            prop_assert!(col.ids.windows(2).all(|p| p[0] < p[1]), "col ids not ascending");
            for (u, val) in col.iter() {
                prop_assert_eq!(val, dense[u as usize][i as usize]);
            }
            nnz += col.len();
        }
        prop_assert_eq!(nnz, w.nnz());
        let mut row_nnz = 0usize;
        for u in 0..m as u32 {
            let row = w.row(u);
            prop_assert!(row.ids.windows(2).all(|p| p[0] < p[1]), "row ids not ascending");
            row_nnz += row.len();
        }
        prop_assert_eq!(row_nnz, w.nnz());
    }

    #[test]
    fn market_view_solves_equal_from_scratch_markets(
        (dense, theta) in arb_dense(),
        item_mask in 1u32..64,
        user_mask in 1u32..64,
    ) {
        let (m, n) = (dense.len(), dense[0].len());
        // Non-empty subsets carved from the masks.
        let mut items: Vec<u32> =
            (0..n as u32).filter(|i| item_mask & (1 << (i % 6)) != 0).collect();
        let mut users: Vec<u32> =
            (0..m as u32).filter(|u| user_mask & (1 << (u % 6)) != 0).collect();
        if items.is_empty() {
            items.push(0);
        }
        if users.is_empty() {
            users.push(0);
        }

        let params = Params::default().with_theta(theta).with_threads(Threads::Fixed(1));
        let whole = Market::new(
            WtpMatrix::from_triples(m, n, triples_of(&dense), None),
            params,
        );
        let view = whole.view(Some(&items), Some(&users));

        // From-scratch market over the restricted triples with remapped ids.
        let restricted: Vec<(u32, u32, f64)> = triples_of(&dense)
            .into_iter()
            .filter_map(|(u, i, w)| {
                let lu = users.iter().position(|&x| x == u)?;
                let li = items.iter().position(|&x| x == i)?;
                Some((lu as u32, li as u32, w))
            })
            .collect();
        let scratch_market = Market::new(
            WtpMatrix::from_triples(users.len(), items.len(), restricted, None),
            params,
        );

        prop_assert_eq!(view.total_wtp().to_bits(), scratch_market.total_wtp().to_bits());
        for (name, c) in registry() {
            let via_view = c.run(&view);
            let via_scratch = c.run(&scratch_market);
            prop_assert_eq!(
                canon(&via_view),
                canon(&via_scratch),
                "{} diverged between view and from-scratch market",
                name
            );
        }
    }
}
