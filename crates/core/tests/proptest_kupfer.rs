//! Property test pinning the documented Kupfer-ratio bound
//! (`metrics::kupfer_ratio`, arXiv:1611.09613): for `θ ≥ 0` under step
//! adoption, on any market with positive separate-sale revenue,
//!
//! ```text
//! 1/N  ≤  R_bundle / R_sep  ≤  M·(1+θ)
//! ```
//!
//! with `N` the item count and `M` the consumer count (proof sketch in the
//! function's docs). The bound is theory-backed only for non-negative
//! complementarity and step adoption, which is what this suite generates.

use proptest::prelude::*;
use revmax_core::market::Market;
use revmax_core::metrics::kupfer_ratio;
use revmax_core::params::Params;
use revmax_core::wtp::WtpMatrix;

/// Random dense markets with at least one positive WTP, θ ∈ [0, 0.2].
fn arb_market() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..80u32).prop_map(|raw| if raw < 30 { 0.0 } else { raw as f64 * 0.25 })
    }
    (1usize..7, 1usize..7)
        .prop_flat_map(move |(m, n)| {
            (proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m), 0i32..=20)
                .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
        })
        .prop_filter("needs sellable content", |(rows, _)| rows.iter().flatten().any(|&w| w > 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kupfer_ratio_respects_the_step_adoption_bound((rows, theta) in arb_market()) {
        let (m, n) = (rows.len() as f64, rows[0].len() as f64);
        let market =
            Market::new(WtpMatrix::from_rows(rows), Params::default().with_theta(theta));
        let ratio = kupfer_ratio(&market);
        // Positive content ⇒ positive separate revenue ⇒ a real ratio.
        prop_assert!(ratio > 0.0, "ratio must be defined on sellable markets, got {}", ratio);
        let tol = 1e-9;
        prop_assert!(
            ratio >= 1.0 / n - tol,
            "ratio {} below 1/N = {} (θ = {})", ratio, 1.0 / n, theta
        );
        prop_assert!(
            ratio <= m * (1.0 + theta) + tol,
            "ratio {} above M(1+θ) = {} (θ = {})", ratio, m * (1.0 + theta), theta
        );
    }

    #[test]
    fn kupfer_ratio_is_scale_invariant((rows, theta) in arb_market(), k in 1u32..9) {
        // Scaling every WTP by k scales both numerator and denominator.
        let k = k as f64;
        let scaled: Vec<Vec<f64>> =
            rows.iter().map(|r| r.iter().map(|w| w * k).collect()).collect();
        let a = kupfer_ratio(&Market::new(
            WtpMatrix::from_rows(rows),
            Params::default().with_theta(theta),
        ));
        let b = kupfer_ratio(&Market::new(
            WtpMatrix::from_rows(scaled),
            Params::default().with_theta(theta),
        ));
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{} vs {}", a, b);
    }
}
