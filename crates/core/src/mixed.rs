//! Mixed bundling: incremental pricing and consumer-upgrade evaluation
//! (Section 4.2, "Pure vs. Mixed Bundling").
//!
//! ## The upgrade rule
//!
//! Components are priced first; a bundle `b` is then priced conditioned on
//! its components. A consumer currently holding sub-offers `H ⊂ b` (having
//! paid `q`) upgrades to `b` exactly when the *implicit price* of the
//! add-on does not exceed the add-on's WTP:
//!
//! ```text
//!   w_{u, b∖H} ≥ p_b − q
//! ```
//!
//! With `H = ∅` this is the plain `w_{u,b} ≥ p_b`. Both cases reduce to one
//! *upgrade breakpoint* per consumer,
//!
//! ```text
//!   bp_u = q_u + α · w(b ∖ H_u)        (upgrade iff p_b ≤ bp_u + ε)
//! ```
//!
//! which generalizes the paper's two-item condition (`p_AB − p_A ≤ w_B`)
//! and reproduces its Table 6 case study. The stochastic model applies the
//! sigmoid to the upgrade margin `α·w(b∖H) − (p_b − q) + ε`.
//!
//! ## Price constraints
//!
//! Per Guiltinan's mixed-bundling constraints (§4.2): the bundle price must
//! exceed every direct sub-offer's price and stay below their sum —
//! otherwise the bundle is not a viable alternative to its parts.

use crate::adoption::AdoptionModel;
use crate::config::OfferNode;
use crate::market::{Market, Scratch};
use rand::Rng;

/// Per-consumer holdings inside one top-level offer tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserState {
    pub user: u32,
    /// Raw Σ of item WTPs over held items.
    pub held_sum: f64,
    /// Total amount paid.
    pub paid: f64,
    /// Number of held items.
    pub held_count: u32,
}

/// A top-level offer under construction during mixed search: its offer
/// tree, the consumers' current holdings, and the tree's revenue.
#[derive(Debug, Clone)]
pub struct TopOffer {
    pub node: OfferNode,
    /// States of consumers holding something, sorted by user id.
    pub states: Vec<UserState>,
    /// Σ paid over states.
    pub revenue: f64,
    /// Users with positive WTP on any of the offer's items.
    pub raters: revmax_fim::Bitmap,
}

/// A candidate merge evaluated by [`price_merge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergePlan {
    /// Chosen bundle price.
    pub price: f64,
    /// Expected incremental revenue over the two sub-offers.
    pub gain: f64,
}

/// Initialize a component offer: price the single item optimally and record
/// which consumers buy it.
pub fn init_component(market: &Market, item: u32, scratch: &mut Scratch) -> TopOffer {
    let outcome = market.price_pure(&[item], scratch);
    let adoption = market.pricing_ctx().adoption;
    let mut states = Vec::new();
    let mut revenue = 0.0;
    for (u, w) in market.wtp().col(item).iter() {
        if adoption.margin(w, outcome.price) >= 0.0 {
            states.push(UserState { user: u, held_sum: w, paid: outcome.price, held_count: 1 });
            revenue += outcome.price;
        }
    }
    TopOffer {
        node: OfferNode::leaf(crate::bundle::Bundle::single(item), outcome.price),
        states,
        revenue,
        raters: market.item_raters(item),
    }
}

/// Merge two sorted state lists, summing holdings of shared users.
fn merge_states(a: &[UserState], b: &[UserState]) -> Vec<UserState> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) if x.user == y.user => {
                out.push(UserState {
                    user: x.user,
                    held_sum: x.held_sum + y.held_sum,
                    paid: x.paid + y.paid,
                    held_count: x.held_count + y.held_count,
                });
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) => {
                if x.user < y.user {
                    out.push(*x);
                    i += 1;
                } else {
                    out.push(*y);
                    j += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Upgrade breakpoints for the merge of two offers: for every interested
/// consumer, `(bp, q, margin-at(p) = bp − p + ε)`. Consumes the merged
/// bundle's per-user sums plus the combined holdings.
fn breakpoints(
    market: &Market,
    sums: &[(u32, f64)],
    held: &[UserState],
    merged_size: usize,
) -> Vec<(f64, f64)> {
    let params = market.params();
    let alpha = market.pricing_ctx().adoption.alpha;
    let mut out = Vec::with_capacity(sums.len());
    let mut h = 0usize;
    for &(u, s_b) in sums {
        while h < held.len() && held[h].user < u {
            h += 1;
        }
        let (s_held, q, c_held) = if h < held.len() && held[h].user == u {
            (held[h].held_sum, held[h].paid, held[h].held_count as usize)
        } else {
            (0.0, 0.0, 0)
        };
        let addon_count = merged_size.saturating_sub(c_held);
        let addon_raw = (s_b - s_held).max(0.0);
        let addon_wtp = params.set_wtp(addon_raw, addon_count.max(1));
        out.push((q + alpha * addon_wtp, q));
    }
    out
}

/// Find the revenue-maximizing price for offering `a ∪ b` next to `a` and
/// `b`. Returns `None` when no feasible price yields positive expected
/// incremental revenue (the merge is then not worth making).
pub fn price_merge(
    market: &Market,
    a: &TopOffer,
    b: &TopOffer,
    scratch: &mut Scratch,
) -> Option<MergePlan> {
    price_merge_many(market, &[a, b], scratch)
}

/// N-ary version of [`price_merge`]: price the union of any number of
/// disjoint sub-offers (used by the FreqItemset baseline, whose bundles sit
/// directly above all their component items).
pub fn price_merge_many(
    market: &Market,
    parts: &[&TopOffer],
    scratch: &mut Scratch,
) -> Option<MergePlan> {
    assert!(parts.len() >= 2, "a merge needs at least two sub-offers");
    let merged = union_of(parts);
    let lo = parts.iter().map(|p| p.node.price).fold(0.0f64, f64::max);
    let hi = parts.iter().map(|p| p.node.price).fold(0.0, |a, x| a + x);
    if hi <= lo {
        return None; // degenerate (a zero-priced side): no feasible price
    }
    let sums = market.bundle_user_sums(merged.items(), scratch);
    if sums.is_empty() {
        return None;
    }
    let held = combined_states(parts);
    let bps = breakpoints(market, sums, &held, merged.len());
    let adoption = market.pricing_ctx().adoption;
    let epsilon = adoption.epsilon;

    let mut best: Option<MergePlan> = None;
    let mut consider = |price: f64| {
        if price <= lo || price >= hi {
            return;
        }
        let mut gain = 0.0;
        for &(bp, q) in &bps {
            let margin = bp - price + epsilon;
            let p_upgrade = adoption.probability_of_margin(margin);
            gain += p_upgrade * (price - q);
        }
        if gain > best.map_or(0.0, |m| m.gain) {
            best = Some(MergePlan { price, gain });
        }
    };

    if adoption.is_step() {
        // Exact: the objective is piecewise linear in p with all maxima at
        // consumer breakpoints (plus the approach-to-hi corner).
        for &(bp, _) in &bps {
            consider(bp);
        }
        consider(hi - (hi - lo) * 1e-9);
    } else {
        let t = market.params().price_levels.max(1);
        for k in 1..=t {
            consider(lo + (hi - lo) * k as f64 / (t + 1) as f64);
        }
    }
    best.filter(|m| m.gain > 0.0)
}

/// Union bundle of several sub-offers.
fn union_of(parts: &[&TopOffer]) -> crate::bundle::Bundle {
    let mut it = parts.iter();
    let first = it.next().expect("at least one part").node.bundle.clone();
    it.fold(first, |acc, p| acc.union(&p.node.bundle))
}

/// Combined holdings across several sub-offers.
fn combined_states(parts: &[&TopOffer]) -> Vec<UserState> {
    let mut acc: Vec<UserState> = Vec::new();
    for p in parts {
        acc = merge_states(&acc, &p.states);
    }
    acc
}

/// Commit a merge at the planned price: build the joint offer node and roll
/// the consumer holdings forward (upgraders now hold the full bundle).
pub fn commit_merge(
    market: &Market,
    a: TopOffer,
    b: TopOffer,
    price: f64,
    scratch: &mut Scratch,
) -> TopOffer {
    commit_merge_many(market, vec![a, b], price, scratch)
}

/// N-ary version of [`commit_merge`].
pub fn commit_merge_many(
    market: &Market,
    parts: Vec<TopOffer>,
    price: f64,
    scratch: &mut Scratch,
) -> TopOffer {
    let part_refs: Vec<&TopOffer> = parts.iter().collect();
    let merged = union_of(&part_refs);
    let held = combined_states(&part_refs);
    let sums = market.bundle_user_sums(merged.items(), scratch);
    let adoption = market.pricing_ctx().adoption;
    let params = market.params();
    let alpha = adoption.alpha;
    let merged_size = merged.len();

    let mut states = Vec::with_capacity(sums.len());
    let mut revenue = 0.0;
    let mut h = 0usize;
    for &(u, s_b) in sums {
        while h < held.len() && held[h].user < u {
            h += 1;
        }
        let prior = (h < held.len() && held[h].user == u).then(|| held[h]);
        let (s_held, q, c_held) =
            prior.map_or((0.0, 0.0, 0usize), |s| (s.held_sum, s.paid, s.held_count as usize));
        let addon_count = merged_size.saturating_sub(c_held);
        let addon_wtp = params.set_wtp((s_b - s_held).max(0.0), addon_count.max(1));
        let margin = alpha * addon_wtp - (price - q) + adoption.epsilon;
        if margin >= 0.0 {
            states.push(UserState {
                user: u,
                held_sum: s_b,
                paid: price,
                held_count: merged_size as u32,
            });
            revenue += price;
        } else if let Some(s) = prior {
            states.push(s);
            revenue += s.paid;
        }
    }
    let mut raters = revmax_fim::Bitmap::zeros(market.n_users());
    let mut children = Vec::with_capacity(parts.len());
    for p in parts {
        raters.or_assign(&p.raters);
        children.push(p.node);
    }
    TopOffer { node: OfferNode { bundle: merged, price, children }, states, revenue, raters }
}

/// Deterministic (threshold) bottom-up evaluation of a mixed offer tree:
/// exact under step adoption; the modal outcome under a soft sigmoid.
pub fn evaluate_tree_deterministic(
    market: &Market,
    root: &OfferNode,
    scratch: &mut Scratch,
) -> f64 {
    let states = eval_node(market, root, scratch, &mut Decide::Threshold);
    // fold(0.0, ..), not sum(): std's f64 sum identity is -0.0, which an
    // empty state list (a tree nobody is interested in) would surface as
    // a negative-zero revenue (see BundleConfig::expected_revenue).
    states.iter().map(|s| s.paid).fold(0.0, |a, p| a + p)
}

/// Deterministic bottom-up evaluation returning the **per-user** final
/// holdings (payment, held items) instead of the summed revenue — the raw
/// material for scoring a mixed tree under a robust
/// [`crate::objective::Objective`] (quantile/CVaR need the payment
/// distribution, not its sum). Same traversal as
/// [`evaluate_tree_deterministic`]; states arrive sorted by user id.
pub fn evaluate_tree_states(
    market: &Market,
    root: &OfferNode,
    scratch: &mut Scratch,
) -> Vec<UserState> {
    eval_node(market, root, scratch, &mut Decide::Threshold)
}

/// Monte-Carlo evaluation: every adoption decision is drawn from the
/// sigmoid. One run; callers average (the paper averages ten).
pub fn evaluate_tree_sampled<R: Rng>(
    market: &Market,
    root: &OfferNode,
    scratch: &mut Scratch,
    rng: &mut R,
) -> f64 {
    let mut decide = Decide::Sample(rng);
    let states = eval_node(market, root, scratch, &mut decide);
    states.iter().map(|s| s.paid).fold(0.0, |a, p| a + p)
}

/// Decision mode for tree evaluation.
enum Decide<'a> {
    Threshold,
    Sample(&'a mut (dyn rand::RngCore + 'a)),
}

impl Decide<'_> {
    fn adopt(&mut self, adoption: &AdoptionModel, margin: f64) -> bool {
        match self {
            Decide::Threshold => margin >= 0.0,
            Decide::Sample(rng) => adoption.sample_margin(rng, margin),
        }
    }
}

fn eval_node(
    market: &Market,
    node: &OfferNode,
    scratch: &mut Scratch,
    decide: &mut Decide<'_>,
) -> Vec<UserState> {
    let adoption = market.pricing_ctx().adoption;
    let params = market.params();
    if node.children.is_empty() {
        // A leaf offer (single item, or a bundle sold with no sub-offers):
        // plain take-it-or-leave-it adoption on the bundle WTP.
        let size = node.bundle.len();
        // The enumeration borrows the scratch-resident pairs directly —
        // nothing below re-borrows `scratch`, so no clone is needed.
        let sums = market.bundle_user_sums(node.bundle.items(), scratch);
        let mut states = Vec::new();
        for &(u, s) in sums {
            let w = params.set_wtp(s, size);
            if decide.adopt(&adoption, adoption.margin(w, node.price)) {
                states.push(UserState {
                    user: u,
                    held_sum: s,
                    paid: node.price,
                    held_count: size as u32,
                });
            }
        }
        return states;
    }
    // Children first (post-order), then the upgrade pass for this node.
    let mut held: Vec<UserState> = Vec::new();
    for c in &node.children {
        let cs = eval_node(market, c, scratch, decide);
        held = merge_states(&held, &cs);
    }
    let sums = market.bundle_user_sums(node.bundle.items(), scratch);
    let size = node.bundle.len();
    let mut out = Vec::with_capacity(sums.len());
    let mut h = 0usize;
    for &(u, s_b) in sums {
        while h < held.len() && held[h].user < u {
            h += 1;
        }
        let prior = (h < held.len() && held[h].user == u).then(|| held[h]);
        let (s_held, q, c_held) =
            prior.map_or((0.0, 0.0, 0usize), |s| (s.held_sum, s.paid, s.held_count as usize));
        let addon_count = size.saturating_sub(c_held);
        let addon_wtp = params.set_wtp((s_b - s_held).max(0.0), addon_count.max(1));
        let margin = adoption.alpha * addon_wtp - (node.price - q) + adoption.epsilon;
        if decide.adopt(&adoption, margin) {
            out.push(UserState {
                user: u,
                held_sum: s_b,
                paid: node.price,
                held_count: size as u32,
            });
        } else if let Some(s) = prior {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Bundle;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    /// Table 1's market (θ = −0.05).
    fn market() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    #[test]
    fn components_initialize_with_buyers() {
        let m = market();
        let mut s = m.scratch();
        let a = init_component(&m, 0, &mut s);
        assert!((a.node.price - 8.0).abs() < 1e-9);
        assert!((a.revenue - 16.0).abs() < 1e-9);
        assert_eq!(a.states.len(), 2); // u1, u2 buy A
        let b = init_component(&m, 1, &mut s);
        assert!((b.node.price - 11.0).abs() < 1e-9);
        assert_eq!(b.states.len(), 1); // u3 buys B
    }

    #[test]
    fn table1_mixed_bundle_under_upgrade_semantics() {
        // Table 1 claims $38.20 for mixed bundling, but that number follows
        // the intro's naive "bundle if affordable" reading. Under the
        // paper's own §4.2 upgrade policy (which it calls out as THE
        // correct consumer behaviour), with components at pA=8, pB=11:
        //   u1 holds A (q=8), add-on B worth 4 → breakpoint 12;
        //   u2 holds A (q=8), add-on B worth 2 → breakpoint 10 (< lo=11);
        //   u3 holds B (q=11), add-on A worth 5 → breakpoint 16.
        // Candidates 12 (Δ = 4+1 = 5) and 16 (Δ = 5) tie; the search takes
        // the lower price, total = 27 + 5 = 32. See EXPERIMENTS.md, Table 1.
        let m = market();
        let mut s = m.scratch();
        let a = init_component(&m, 0, &mut s);
        let b = init_component(&m, 1, &mut s);
        let plan = price_merge(&m, &a, &b, &mut s).expect("merge should gain");
        assert!((plan.gain - 5.0).abs() < 1e-6, "gain {}", plan.gain);
        assert!((plan.price - 12.0).abs() < 1e-6, "price {}", plan.price);
        let merged = commit_merge(&m, a, b, plan.price, &mut s);
        assert!((merged.revenue - 32.0).abs() < 1e-6, "revenue {}", merged.revenue);
        // Deterministic evaluation of the final tree agrees with the
        // incrementally-accounted revenue.
        let ev = evaluate_tree_deterministic(&m, &merged.node, &mut s);
        assert!((ev - merged.revenue).abs() < 1e-9);
    }

    #[test]
    fn upgrade_honours_implicit_price() {
        // §4.2's counter-intuitive example: wAB ≥ pAB does not imply
        // purchase. pA=8, pB=8, pAB=15.2: u1 (wA=12, wB=4) must NOT take
        // the bundle: implicit B price 7.2 > 4.
        let m = market();
        let mut s = m.scratch();
        let root = OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.2,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 8.0),
            ],
        };
        let states = eval_node(&m, &root, &mut s, &mut Decide::Threshold);
        let u1 = states.iter().find(|st| st.user == 0).expect("u1 buys something");
        assert_eq!(u1.held_count, 1, "u1 must hold only item A");
        assert!((u1.paid - 8.0).abs() < 1e-9);
    }

    #[test]
    fn alternative_prices_let_u1_take_bundle() {
        // §4.2's second scenario: pA=12, pB=4, pAB=15.2 → u1 upgrades
        // (implicit B price 3.2 ≤ 4).
        let m = market();
        let mut s = m.scratch();
        let root = OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.2,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 12.0),
                OfferNode::leaf(Bundle::single(1), 4.0),
            ],
        };
        let states = eval_node(&m, &root, &mut s, &mut Decide::Threshold);
        let u1 = states.iter().find(|st| st.user == 0).unwrap();
        assert_eq!(u1.held_count, 2, "u1 should upgrade to the bundle");
        assert!((u1.paid - 15.2).abs() < 1e-9);
    }

    #[test]
    fn merge_gain_never_negative() {
        let m = market();
        let mut s = m.scratch();
        let a = init_component(&m, 0, &mut s);
        let b = init_component(&m, 1, &mut s);
        if let Some(plan) = price_merge(&m, &a, &b, &mut s) {
            assert!(plan.gain > 0.0);
            assert!(plan.price > a.node.price.max(b.node.price));
            assert!(plan.price < a.node.price + b.node.price);
        }
    }

    #[test]
    fn both_holders_consolidate_cheaper() {
        // A consumer holding both children upgrades to the (cheaper)
        // bundle; the seller loses the difference. Construct directly.
        let w = WtpMatrix::from_rows(vec![vec![10.0, 10.0]]);
        let m = Market::new(w, Params::default());
        let mut s = m.scratch();
        let root = OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.0,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 10.0),
                OfferNode::leaf(Bundle::single(1), 10.0),
            ],
        };
        let rev = evaluate_tree_deterministic(&m, &root, &mut s);
        // Buys both at 10+10=20, then consolidates to the 15 bundle.
        assert!((rev - 15.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_step_equals_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let m = market();
        let mut s = m.scratch();
        let a = init_component(&m, 0, &mut s);
        let b = init_component(&m, 1, &mut s);
        let plan = price_merge(&m, &a, &b, &mut s).unwrap();
        let merged = commit_merge(&m, a, b, plan.price, &mut s);
        let det = evaluate_tree_deterministic(&m, &merged.node, &mut s);
        let mut rng = StdRng::seed_from_u64(3);
        let smp = evaluate_tree_sampled(&m, &merged.node, &mut s, &mut rng);
        assert!((det - smp).abs() < 1e-9);
    }
}
