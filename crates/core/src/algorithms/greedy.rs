//! Algorithm 2: the greedy configurator.
//!
//! Each iteration merges the single pair of current bundles with the
//! highest absolute revenue gain, then requotes only the merges involving
//! the newly formed bundle (O(N) per iteration after the O(N²) first
//! round). A max-heap with lazy invalidation (offers are versioned; stale
//! entries are discarded at pop time) keeps each iteration at
//! O(log candidates).
//!
//! Stopping: by default, when the best gain is no longer positive ("One
//! natural stopping condition, which we adopt in this paper, is when there
//! is no more revenue gain"). The paper's alternative — merge all the way
//! to a single bundle and return the best intermediate configuration — is
//! available via [`GreedyOptions::merge_to_single`] and exercised by the
//! ablation bench.

use crate::algorithms::pure_state::{MergeQuote, MixedOffer, PureOffer, SearchOffer};
use crate::algorithms::Configurator;
use crate::config::{BundleConfig, Outcome};
use crate::market::{Market, Scratch};
use crate::trace::IterationTrace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Options for [`GreedyConfigurator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyOptions {
    /// Restrict candidate pairs to bundles sharing at least one rater
    /// (lossless for θ ≤ 0; the same heuristic the matching engine uses).
    pub co_rater_pruning: bool,
    /// Keep merging (accepting negative gains) until one bundle remains,
    /// then return the best configuration seen (§5.3.2's alternative
    /// stopping condition).
    pub merge_to_single: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions { co_rater_pruning: true, merge_to_single: false }
    }
}

/// Heap entry: a quoted merge between two specific offer versions.
struct HeapEntry {
    gain: f64,
    price: f64,
    i: usize,
    j: usize,
    vi: u64,
    vj: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; deterministic tie-break on indices. total_cmp
        // keeps the heap total even if a NaN gain ever slips in (a NaN
        // sorts above +inf here, surfacing the bad quote immediately
        // instead of panicking mid-solve).
        self.gain.total_cmp(&other.gain).then_with(|| (other.i, other.j).cmp(&(self.i, self.j)))
    }
}

/// The engine behind [`PureGreedy`] and [`MixedGreedy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyConfigurator {
    pub opts: GreedyOptions,
}

struct Pool<S> {
    offers: Vec<Option<S>>,
    versions: Vec<u64>,
}

impl<S: SearchOffer> Pool<S> {
    fn alive(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.offers.len()).filter(|&i| self.offers[i].is_some())
    }
}

impl GreedyConfigurator {
    #[allow(clippy::too_many_arguments)]
    fn quote_into_heap<S: SearchOffer>(
        &self,
        market: &Market,
        pool: &Pool<S>,
        scratch: &mut Scratch,
        heap: &mut BinaryHeap<HeapEntry>,
        i: usize,
        j: usize,
        allow_nonpositive: bool,
    ) {
        let (Some(a), Some(b)) = (&pool.offers[i], &pool.offers[j]) else { return };
        if !market.params().size_cap.allows(a.bundle().len() + b.bundle().len()) {
            return;
        }
        if self.opts.co_rater_pruning && !a.raters().intersects(b.raters()) {
            return;
        }
        let quote = match S::plan_merge(market, a, b, scratch) {
            Some(q) => q,
            None if allow_nonpositive => {
                // merge_to_single mode needs *some* quote even when the
                // merge loses revenue: price the union outright.
                let merged = a.bundle().union(b.bundle());
                let priced = market.price_pure(merged.items(), scratch);
                MergeQuote { price: priced.price, gain: priced.revenue - a.revenue() - b.revenue() }
            }
            None => return,
        };
        heap.push(HeapEntry {
            gain: quote.gain,
            price: quote.price,
            i,
            j,
            vi: pool.versions[i],
            vj: pool.versions[j],
        });
    }

    fn run_generic<S: SearchOffer>(&self, market: &Market, name: &'static str) -> Outcome {
        let start = Instant::now(); // audit: allow(wall-clock) trace timings are reported stats, never a result input
        let mut scratch = market.scratch();
        let n = market.n_items();
        let mut trace = IterationTrace::new();

        let mut pool: Pool<S> = Pool {
            offers: (0..n as u32).map(|i| Some(S::init(market, i, &mut scratch))).collect(),
            versions: vec![0; n],
        };
        let mut revenue = pool
            .alive()
            .map(|i| pool.offers[i].as_ref().unwrap().revenue())
            .fold(0.0, |a, x| a + x);
        let components_revenue = revenue;
        let allow_nonpositive = self.opts.merge_to_single;

        // First round: all (pruned) pairs.
        let mut heap = BinaryHeap::new();
        if self.opts.co_rater_pruning {
            for (a, b) in market.co_rated_pairs() {
                self.quote_into_heap(
                    market,
                    &pool,
                    &mut scratch,
                    &mut heap,
                    a as usize,
                    b as usize,
                    allow_nonpositive,
                );
            }
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    self.quote_into_heap(
                        market,
                        &pool,
                        &mut scratch,
                        &mut heap,
                        i,
                        j,
                        allow_nonpositive,
                    );
                }
            }
        }

        // Best configuration snapshot (merge_to_single mode only). After
        // the first dip into loss territory, every new revenue peak is
        // snapshotted (a valley can be followed by a higher peak, which a
        // first-dip-only snapshot would miss).
        let mut best_snapshot: Option<(f64, Vec<Option<S>>)> = None;
        let mut dipped = false;
        let mut alive_count = n;
        while let Some(entry) = heap.pop() {
            // Lazy invalidation: both endpoints must be unchanged.
            if pool.offers[entry.i].is_none()
                || pool.offers[entry.j].is_none()
                || pool.versions[entry.i] != entry.vi
                || pool.versions[entry.j] != entry.vj
            {
                continue;
            }
            if entry.gain <= 0.0 && !allow_nonpositive {
                break; // natural stopping condition
            }
            if entry.gain <= 0.0 && !dipped {
                // Crossing into loss territory: remember the peak.
                dipped = true;
                best_snapshot = Some((revenue, clone_pool(&pool.offers)));
            }
            let a = pool.offers[entry.i].take().unwrap();
            let b = pool.offers[entry.j].take().unwrap();
            pool.versions[entry.i] += 1;
            pool.versions[entry.j] += 1;
            let merged = S::commit_merge(
                market,
                a,
                b,
                MergeQuote { price: entry.price, gain: entry.gain },
                &mut scratch,
            );
            revenue += entry.gain;
            pool.offers.push(Some(merged));
            pool.versions.push(0);
            let new_idx = pool.offers.len() - 1;
            alive_count -= 1;
            trace.push(revenue, start.elapsed(), alive_count);
            if dipped && best_snapshot.as_ref().is_some_and(|(b, _)| revenue > *b) {
                // New post-valley peak: update the rollback point.
                best_snapshot = Some((revenue, clone_pool(&pool.offers)));
            }
            // Requote the new bundle against every other alive offer.
            let others: Vec<usize> = pool.alive().filter(|&x| x != new_idx).collect();
            for x in others {
                self.quote_into_heap(
                    market,
                    &pool,
                    &mut scratch,
                    &mut heap,
                    x.min(new_idx),
                    x.max(new_idx),
                    allow_nonpositive,
                );
            }
            if alive_count == 1 {
                break;
            }
        }

        // merge_to_single: roll back to the best configuration seen.
        if let Some((best_rev, snapshot)) = best_snapshot {
            if best_rev > revenue {
                pool.offers = snapshot;
                revenue = best_rev;
            }
        }

        let roots = pool.offers.into_iter().flatten().map(S::into_node).collect();
        let config = BundleConfig { strategy: S::STRATEGY, roots };
        debug_assert!({
            config.validate(n);
            true
        });
        Outcome::assemble(name, config, revenue, components_revenue, market, trace)
    }
}

fn clone_pool<S: SearchOffer>(offers: &[Option<S>]) -> Vec<Option<S>> {
    offers.to_vec()
}

/// `Pure Greedy` (Algorithm 2 under pure bundling).
#[derive(Debug, Clone, Copy, Default)]
pub struct PureGreedy {
    pub opts: GreedyOptions,
}

impl Configurator for PureGreedy {
    fn name(&self) -> &'static str {
        "Pure Greedy"
    }

    fn run(&self, market: &Market) -> Outcome {
        GreedyConfigurator { opts: self.opts }.run_generic::<PureOffer>(market, self.name())
    }
}

/// `Mixed Greedy` (Algorithm 2 under mixed bundling).
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedGreedy {
    pub opts: GreedyOptions,
}

impl Configurator for MixedGreedy {
    fn name(&self) -> &'static str {
        "Mixed Greedy"
    }

    fn run(&self, market: &Market) -> Outcome {
        GreedyConfigurator { opts: self.opts }.run_generic::<MixedOffer>(market, self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{complementary, substitutes, table1, table1_theta_zero};
    use crate::algorithms::Components;

    #[test]
    fn heap_ordering_is_total_even_with_nan_gains() {
        // Regression (PR 5 class): `HeapEntry::cmp` used
        // `partial_cmp(..).expect("gains are never NaN")` — one NaN quote
        // panicked the heap. total_cmp makes the order total: a NaN sorts
        // above +inf (surfacing the bad quote first) instead of aborting.
        let e = |gain: f64, i: usize, j: usize| HeapEntry { gain, price: 0.0, i, j, vi: 0, vj: 0 };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(e(1.0, 0, 1));
        heap.push(e(f64::NAN, 0, 2));
        heap.push(e(f64::INFINITY, 1, 2));
        assert!(heap.pop().unwrap().gain.is_nan());
        assert_eq!(heap.pop().unwrap().gain, f64::INFINITY);
        assert_eq!(heap.pop().unwrap().gain, 1.0);
        // Finite ties still break on indices, low pair first.
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(e(2.0, 3, 4));
        heap.push(e(2.0, 0, 1));
        let top = heap.pop().unwrap();
        assert_eq!((top.i, top.j), (0, 1));
    }

    #[test]
    fn pure_greedy_on_table1() {
        let out = PureGreedy::default().run(&table1());
        assert!((out.revenue - 30.4).abs() < 1e-9);
        assert_eq!(out.config.roots.len(), 1);
        out.config.validate(2);
    }

    #[test]
    fn mixed_greedy_on_table1() {
        let m = table1();
        let out = MixedGreedy::default().run(&m);
        assert!((out.revenue - 32.0).abs() < 1e-9);
        assert!((out.config.expected_revenue(&m) - out.revenue).abs() < 1e-9);
    }

    #[test]
    fn greedy_never_below_components() {
        for m in [table1(), table1_theta_zero(), complementary(), substitutes()] {
            let c = Components::optimal().run(&m);
            assert!(PureGreedy::default().run(&m).revenue >= c.revenue - 1e-9);
            assert!(MixedGreedy::default().run(&m).revenue >= c.revenue - 1e-9);
        }
    }

    #[test]
    fn one_merge_per_iteration() {
        let out = PureGreedy::default().run(&complementary());
        // Every iteration collapses exactly two bundles into one.
        let pts = out.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert_eq!(w[0].n_bundles, w[1].n_bundles + 1);
            assert!(w[1].revenue >= w[0].revenue);
        }
    }

    #[test]
    fn merge_to_single_never_worse_than_default() {
        for m in [table1(), table1_theta_zero(), complementary(), substitutes()] {
            let plain = PureGreedy::default().run(&m);
            let deep =
                PureGreedy { opts: GreedyOptions { merge_to_single: true, ..Default::default() } }
                    .run(&m);
            assert!(
                deep.revenue >= plain.revenue - 1e-9,
                "merge_to_single lost revenue: {} vs {}",
                deep.revenue,
                plain.revenue
            );
        }
    }

    #[test]
    fn greedy_matches_matching_on_two_items() {
        // With two items both algorithms solve the same 1-merge decision.
        use crate::algorithms::{MixedMatching, PureMatching};
        for m in [table1(), table1_theta_zero(), substitutes()] {
            let pg = PureGreedy::default().run(&m).revenue;
            let pm = PureMatching::default().run(&m).revenue;
            assert!((pg - pm).abs() < 1e-9);
            let mg = MixedGreedy::default().run(&m).revenue;
            let mm = MixedMatching::default().run(&m).revenue;
            assert!((mg - mm).abs() < 1e-9);
        }
    }
}
