//! Algorithm 1: the matching-based configurator.
//!
//! Each iteration builds a graph whose vertices are the current top-level
//! bundles, scores candidate pairwise merges, and commits the
//! maximum-weight matching of the positive-gain edges (computed by the
//! blossom engine in `revmax-matching` through the gain-graph reduction).
//! Merged bundles become single vertices for the next round, so bundle
//! sizes can double every iteration. Stops when no matching improves
//! revenue or when the size cap `k` forbids further growth.
//!
//! The two pruning rules of Section 5.3.1 are on by default and
//! individually switchable for ablation:
//!
//! * **co-rater pruning** (first iteration): only item pairs co-rated by at
//!   least one consumer are candidate edges;
//! * **new-vertex pruning** (later iterations): only edges touching a
//!   vertex formed in the previous iteration are (re)considered.

use crate::algorithms::pure_state::{MergeQuote, MixedOffer, PureOffer, SearchOffer};
use crate::algorithms::Configurator;
use crate::config::{BundleConfig, Outcome};
use crate::market::Market;
use crate::trace::IterationTrace;
use revmax_matching::max_weight_matching_f64;
use revmax_par::par_chunks_map_reduce;
use std::time::Instant;

/// Candidate pairs per scoring chunk. Each chunk allocates one fresh
/// [`Scratch`](crate::market::Scratch), so chunks are sized to amortize
/// that; a pure constant (thread-count independent) keeps chunk boundaries
/// — and thus the scored-edge order — deterministic (`DESIGN.md` §6).
const SCORING_CHUNK: usize = 64;

/// Pruning switches for [`MatchingConfigurator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingOptions {
    /// First-iteration pruning: only co-rated item pairs.
    pub co_rater_pruning: bool,
    /// Later-iteration pruning: only edges involving a new vertex.
    pub new_vertex_pruning: bool,
    /// Hard cap on iterations (safety valve; the diminishing-returns
    /// argument of §5.3.1 bounds it in practice).
    pub max_iterations: usize,
}

impl Default for MatchingOptions {
    fn default() -> Self {
        MatchingOptions { co_rater_pruning: true, new_vertex_pruning: true, max_iterations: 64 }
    }
}

/// The engine behind [`PureMatching`] and [`MixedMatching`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingConfigurator {
    pub opts: MatchingOptions,
}

impl MatchingConfigurator {
    fn run_generic<S: SearchOffer>(&self, market: &Market, name: &'static str) -> Outcome {
        let start = Instant::now(); // audit: allow(wall-clock) trace timings are reported stats, never a result input
        let mut scratch = market.scratch();
        let n = market.n_items();
        let mut trace = IterationTrace::new();

        // Offer pool; `None` = consumed by a merge.
        let mut offers: Vec<Option<S>> =
            (0..n as u32).map(|i| Some(S::init(market, i, &mut scratch))).collect();
        let mut revenue =
            offers.iter().map(|o| o.as_ref().unwrap().revenue()).fold(0.0, |a, x| a + x);
        let components_revenue = revenue;

        // Vertices formed in the previous iteration (all, initially).
        let mut fresh: Vec<usize> = (0..n).collect();
        let size_cap = market.params().size_cap;

        for _iter in 0..self.opts.max_iterations {
            // ---- candidate generation -------------------------------------------
            let candidate_pairs: Vec<(usize, usize)> = if trace.iterations() == 0 {
                if self.opts.co_rater_pruning {
                    market
                        .co_rated_pairs()
                        .into_iter()
                        .map(|(a, b)| (a as usize, b as usize))
                        .collect()
                } else {
                    (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect()
                }
            } else {
                let alive: Vec<usize> =
                    (0..offers.len()).filter(|&i| offers[i].is_some()).collect();
                let mut pairs = Vec::new();
                if self.opts.new_vertex_pruning {
                    let fresh_set: std::collections::HashSet<usize> =
                        fresh.iter().copied().collect();
                    for &i in &fresh {
                        for &j in &alive {
                            if j != i && (!fresh_set.contains(&j) || j > i) {
                                pairs.push((i.min(j), i.max(j)));
                            }
                        }
                    }
                } else {
                    for (ai, &i) in alive.iter().enumerate() {
                        for &j in &alive[ai + 1..] {
                            pairs.push((i, j));
                        }
                    }
                }
                pairs
            };

            // ---- scoring ---------------------------------------------------------
            // The gain matrix: every candidate pair is priced independently
            // against the read-only offer pool. With threads > 1 the pairs
            // fan out over fixed-size chunks (each with its own scratch),
            // reduced in chunk order; at 1 thread the loop streams through
            // the engine's scratch with no extra allocation. Either way the
            // scored-edge sequence is identical.
            let offers_ref = &offers;
            let opts = self.opts;
            let score_pair = |i: usize,
                              j: usize,
                              scratch: &mut crate::market::Scratch|
             -> Option<(usize, usize, MergeQuote)> {
                let (Some(a), Some(b)) = (&offers_ref[i], &offers_ref[j]) else {
                    return None;
                };
                if !size_cap.allows(a.bundle().len() + b.bundle().len()) {
                    return None;
                }
                // Co-rater check between composite bundles (cheap bitmap
                // intersection) under the same pruning flag.
                if opts.co_rater_pruning && !a.raters().intersects(b.raters()) {
                    return None;
                }
                S::plan_merge(market, a, b, scratch).map(|q| (i, j, q))
            };
            let scored: Vec<(usize, usize, MergeQuote)> = if market.threads() <= 1 {
                candidate_pairs
                    .iter()
                    .filter_map(|&(i, j)| score_pair(i, j, &mut scratch))
                    .collect()
            } else {
                par_chunks_map_reduce(
                    market.threads(),
                    &candidate_pairs,
                    SCORING_CHUNK,
                    |chunk| {
                        let mut scratch = market.scratch();
                        chunk
                            .iter()
                            .filter_map(|&(i, j)| score_pair(i, j, &mut scratch))
                            .collect::<Vec<_>>()
                    },
                    Vec::new(),
                    |mut acc: Vec<(usize, usize, MergeQuote)>, mut part| {
                        acc.append(&mut part);
                        acc
                    },
                )
            };
            let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(scored.len());
            let mut quotes: std::collections::HashMap<(usize, usize), MergeQuote> =
                std::collections::HashMap::new();
            for (i, j, q) in scored {
                edges.push((i, j, q.gain));
                quotes.insert((i, j), q);
            }
            if edges.is_empty() {
                break;
            }

            // ---- maximum-weight matching on the gain graph -----------------------
            // Compact the vertex set to the endpoints of gainful edges; all
            // other offers keep their self-loops (stay as they are).
            let mut vmap: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let mut vback: Vec<usize> = Vec::new();
            let mut cedges = Vec::with_capacity(edges.len());
            for &(i, j, w) in &edges {
                let a = *vmap.entry(i).or_insert_with(|| {
                    vback.push(i);
                    vback.len() - 1
                });
                let b = *vmap.entry(j).or_insert_with(|| {
                    vback.push(j);
                    vback.len() - 1
                });
                cedges.push((a, b, w));
            }
            let (matching, gain_total) = max_weight_matching_f64(vback.len(), &cedges);
            if gain_total <= 0.0 || matching.edges.is_empty() {
                break;
            }

            // ---- commit the matched merges ---------------------------------------
            fresh.clear();
            for &(ca, cb) in &matching.edges {
                let (i, j) = (vback[ca].min(vback[cb]), vback[ca].max(vback[cb]));
                let quote = quotes[&(i, j)];
                let a = offers[i].take().expect("matched offer alive");
                let b = offers[j].take().expect("matched offer alive");
                let merged = S::commit_merge(market, a, b, quote, &mut scratch);
                revenue += quote.gain;
                offers.push(Some(merged));
                fresh.push(offers.len() - 1);
            }
            let n_bundles = offers.iter().filter(|o| o.is_some()).count();
            trace.push(revenue, start.elapsed(), n_bundles);
        }

        let roots = offers.into_iter().flatten().map(S::into_node).collect();
        let config = BundleConfig { strategy: S::STRATEGY, roots };
        debug_assert!({
            config.validate(n);
            true
        });
        Outcome::assemble(name, config, revenue, components_revenue, market, trace)
    }
}

/// `Pure Matching` (Algorithm 1 under pure bundling).
#[derive(Debug, Clone, Copy, Default)]
pub struct PureMatching {
    pub opts: MatchingOptions,
}

impl Configurator for PureMatching {
    fn name(&self) -> &'static str {
        "Pure Matching"
    }

    fn run(&self, market: &Market) -> Outcome {
        MatchingConfigurator { opts: self.opts }.run_generic::<PureOffer>(market, self.name())
    }
}

/// `Mixed Matching` (Algorithm 1 under mixed bundling).
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedMatching {
    pub opts: MatchingOptions,
}

impl Configurator for MixedMatching {
    fn name(&self) -> &'static str {
        "Mixed Matching"
    }

    fn run(&self, market: &Market) -> Outcome {
        MatchingConfigurator { opts: self.opts }.run_generic::<MixedOffer>(market, self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{complementary, substitutes, table1, table1_theta_zero};
    use crate::algorithms::Components;
    use crate::params::{Params, SizeCap};
    use crate::wtp::WtpMatrix;

    #[test]
    fn pure_matching_on_table1() {
        let out = PureMatching::default().run(&table1());
        // Bundle {A,B} at 15.2 nets 30.4 > 27 → single bundle.
        assert!((out.revenue - 30.4).abs() < 1e-9);
        assert_eq!(out.config.roots.len(), 1);
        assert!((out.gain - 3.4 / 27.0).abs() < 1e-9);
        out.config.validate(2);
    }

    #[test]
    fn mixed_matching_on_table1() {
        let m = table1();
        let out = MixedMatching::default().run(&m);
        assert!((out.revenue - 32.0).abs() < 1e-9);
        // The root offers the bundle AND keeps both components on sale.
        assert_eq!(out.config.roots.len(), 1);
        assert_eq!(out.config.roots[0].children.len(), 2);
        out.config.validate(2);
        // Re-evaluating the final configuration reproduces the reported
        // revenue (search accounting is consistent with evaluation).
        assert!((out.config.expected_revenue(&m) - out.revenue).abs() < 1e-9);
    }

    #[test]
    fn reverts_to_components_on_substitutes() {
        let m = substitutes();
        for out in [PureMatching::default().run(&m), MixedMatching::default().run(&m)] {
            assert!((out.revenue - out.components_revenue).abs() < 1e-9, "{}", out.algorithm);
            assert_eq!(out.gain, 0.0);
            assert_eq!(out.config.roots.len(), 2);
        }
    }

    #[test]
    fn size_cap_enforced() {
        // Each user loves one item (10) and mildly wants the rest (2):
        // the grand bundle flattens WTP to 16 for everyone, the classic
        // case where large bundles dominate (Bakos–Brynjolfsson).
        let rows = || {
            WtpMatrix::from_rows(vec![
                vec![10.0, 2.0, 2.0, 2.0],
                vec![2.0, 10.0, 2.0, 2.0],
                vec![2.0, 2.0, 10.0, 2.0],
                vec![2.0, 2.0, 2.0, 10.0],
            ])
        };
        let m = Market::new(rows(), Params::default().with_size_cap(SizeCap::AtMost(2)));
        let out = PureMatching::default().run(&m);
        assert!(out.config.max_bundle_size() <= 2);
        out.config.validate(4);
        // Without the cap the grand bundle forms: price 16 × 4 users = 64
        // vs components 4 × 10 = 40.
        let m2 = Market::new(rows(), Params::default());
        let out2 = PureMatching::default().run(&m2);
        assert_eq!(out2.config.max_bundle_size(), 4);
        assert!((out2.revenue - 64.0).abs() < 1e-9);
        assert!(out2.revenue >= out.revenue - 1e-9);
    }

    #[test]
    fn complementary_market_bundles_up() {
        let out = PureMatching::default().run(&complementary());
        assert!(out.gain > 0.0);
        assert!(out.config.max_bundle_size() >= 2);
    }

    #[test]
    fn disabling_pruning_cannot_reduce_revenue_at_theta_zero() {
        // With θ=0, co-rater pruning is lossless: revenue must match.
        let m = table1_theta_zero();
        let pruned = PureMatching::default().run(&m);
        let full = PureMatching {
            opts: MatchingOptions {
                co_rater_pruning: false,
                new_vertex_pruning: false,
                ..Default::default()
            },
        }
        .run(&m);
        assert!((pruned.revenue - full.revenue).abs() < 1e-9);
    }

    #[test]
    fn trace_is_recorded() {
        let out = PureMatching::default().run(&table1());
        assert_eq!(out.trace.iterations(), 1);
        assert!((out.trace.final_revenue() - 30.4).abs() < 1e-9);
    }

    #[test]
    fn matching_beats_or_equals_components_always() {
        for m in [table1(), table1_theta_zero(), complementary(), substitutes()] {
            let c = Components::optimal().run(&m);
            let pm = PureMatching::default().run(&m);
            let mm = MixedMatching::default().run(&m);
            assert!(pm.revenue >= c.revenue - 1e-9);
            assert!(mm.revenue >= c.revenue - 1e-9);
        }
    }
}
