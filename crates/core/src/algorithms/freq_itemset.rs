//! The frequent-itemset bundling baseline (Section 6.1.3).
//!
//! Simulates "Frequently Bought Together": consumers are transactions (a
//! consumer's transaction is her positive-WTP item set), maximal frequent
//! itemsets mined MAFIA-style are the candidate bundles, and a greedy pass
//! picks non-overlapping candidates by absolute revenue gain over their
//! components, completing the configuration with singletons. "Individual
//! items are used as candidates even if they do not meet the minimum
//! support (this favors the frequent itemset approach)."
//!
//! The paper's tuned minimum support is 0.1% ("We experimented with various
//! minimum supports and found 0.1% to produce the highest revenue").

use crate::algorithms::Configurator;
use crate::bundle::Bundle;
use crate::config::{BundleConfig, OfferNode, Outcome, Strategy};
use crate::market::Market;
use crate::mixed;
use crate::trace::IterationTrace;
use revmax_fim::{mine_maximal_with_threads, relative_minsup, TransactionDb};
use std::time::Instant;

/// Options for the FreqItemset baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqOptions {
    /// Relative minimum support (fraction of consumers); paper default 0.1%.
    pub minsup: f64,
}

impl Default for FreqOptions {
    fn default() -> Self {
        FreqOptions { minsup: 0.001 }
    }
}

/// The engine behind [`PureFreqItemset`] and [`MixedFreqItemset`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FreqItemsetConfigurator {
    pub opts: FreqOptions,
}

impl FreqItemsetConfigurator {
    fn candidates(&self, market: &Market) -> Vec<Bundle> {
        // Vertical construction straight from the CSR item columns: each
        // item's rater bitmap IS its transaction bitmap (consumers are the
        // transactions), so no per-user item lists are materialized.
        let bitmaps: Vec<revmax_fim::Bitmap> =
            (0..market.n_items() as u32).map(|i| market.item_raters(i)).collect();
        let db = TransactionDb::from_item_bitmaps(market.n_users(), bitmaps);
        let minsup = relative_minsup(self.opts.minsup, market.n_users());
        let size_cap = market.params().size_cap;
        mine_maximal_with_threads(&db, minsup, market.threads())
            .into_iter()
            .filter(|s| s.items.len() >= 2 && size_cap.allows(s.items.len()))
            .map(|s| Bundle::new(s.items))
            .collect()
    }

    fn run_pure(&self, market: &Market) -> Outcome {
        let start = Instant::now(); // audit: allow(wall-clock) trace timings are reported stats, never a result input
        let mut scratch = market.scratch();
        let mut trace = IterationTrace::new();
        // Component prices/revenues.
        let singles: Vec<crate::pricing::PricedOutcome> =
            (0..market.n_items() as u32).map(|i| market.price_pure(&[i], &mut scratch)).collect();
        let components_revenue = singles.iter().map(|p| p.revenue).fold(0.0, |a, x| a + x);

        // Score candidates by absolute gain over their components.
        let mut scored: Vec<(Bundle, f64, f64)> = self
            .candidates(market)
            .into_iter()
            .filter_map(|b| {
                let priced = market.price_pure(b.items(), &mut scratch);
                let comp =
                    b.items().iter().map(|&i| singles[i as usize].revenue).fold(0.0, |a, x| a + x);
                let gain = priced.revenue - comp;
                (gain > 0.0).then_some((b, priced.price, gain))
            })
            .collect();
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));

        // Greedy non-overlapping selection.
        let mut used = vec![false; market.n_items()];
        let mut roots: Vec<OfferNode> = Vec::new();
        let mut revenue = components_revenue;
        for (bundle, price, gain) in scored {
            if bundle.items().iter().any(|&i| used[i as usize]) {
                continue;
            }
            for &i in bundle.items() {
                used[i as usize] = true;
            }
            revenue += gain;
            roots.push(OfferNode::leaf(bundle, price));
            trace.push(revenue, start.elapsed(), roots.len());
        }
        // Complete with singletons.
        for i in 0..market.n_items() as u32 {
            if !used[i as usize] {
                roots.push(OfferNode::leaf(Bundle::single(i), singles[i as usize].price));
            }
        }
        let config = BundleConfig { strategy: Strategy::Pure, roots };
        debug_assert!({
            config.validate(market.n_items());
            true
        });
        Outcome::assemble("Pure FreqItemset", config, revenue, components_revenue, market, trace)
    }

    fn run_mixed(&self, market: &Market) -> Outcome {
        let start = Instant::now(); // audit: allow(wall-clock) trace timings are reported stats, never a result input
        let mut scratch = market.scratch();
        let mut trace = IterationTrace::new();
        // Components first (the incremental policy).
        let mut components: Vec<Option<mixed::TopOffer>> = (0..market.n_items() as u32)
            .map(|i| Some(mixed::init_component(market, i, &mut scratch)))
            .collect();
        let components_revenue =
            components.iter().map(|c| c.as_ref().unwrap().revenue).fold(0.0, |a, x| a + x);

        // Score candidates by incremental revenue of the bundle offer.
        let mut scored: Vec<(Bundle, f64, f64)> = Vec::new();
        for b in self.candidates(market) {
            let parts: Vec<&mixed::TopOffer> =
                b.items().iter().map(|&i| components[i as usize].as_ref().unwrap()).collect();
            if let Some(plan) = mixed::price_merge_many(market, &parts, &mut scratch) {
                scored.push((b, plan.price, plan.gain));
            }
        }
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));

        let mut used = vec![false; market.n_items()];
        let mut roots: Vec<OfferNode> = Vec::new();
        let mut revenue = components_revenue;
        for (bundle, price, gain) in scored {
            if bundle.items().iter().any(|&i| used[i as usize]) {
                continue;
            }
            let parts: Vec<mixed::TopOffer> = bundle
                .items()
                .iter()
                .map(|&i| {
                    used[i as usize] = true;
                    components[i as usize].take().unwrap()
                })
                .collect();
            let merged = mixed::commit_merge_many(market, parts, price, &mut scratch);
            revenue += gain;
            roots.push(merged.node);
            trace.push(revenue, start.elapsed(), roots.len());
        }
        for slot in components.iter_mut() {
            if let Some(c) = slot.take() {
                roots.push(c.node);
            }
        }
        let config = BundleConfig { strategy: Strategy::Mixed, roots };
        debug_assert!({
            config.validate(market.n_items());
            true
        });
        Outcome::assemble("Mixed FreqItemset", config, revenue, components_revenue, market, trace)
    }
}

/// `Pure FreqItemset` baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PureFreqItemset {
    pub opts: FreqOptions,
}

impl Configurator for PureFreqItemset {
    fn name(&self) -> &'static str {
        "Pure FreqItemset"
    }

    fn run(&self, market: &Market) -> Outcome {
        FreqItemsetConfigurator { opts: self.opts }.run_pure(market)
    }
}

/// `Mixed FreqItemset` baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedFreqItemset {
    pub opts: FreqOptions,
}

impl Configurator for MixedFreqItemset {
    fn name(&self) -> &'static str {
        "Mixed FreqItemset"
    }

    fn run(&self, market: &Market) -> Outcome {
        FreqItemsetConfigurator { opts: self.opts }.run_mixed(market)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{substitutes, table1, table1_theta_zero};
    use crate::algorithms::Components;

    #[test]
    fn pure_freqitemset_on_table1() {
        // All three consumers rate both items → {0,1} is maximal frequent.
        let out = PureFreqItemset::default().run(&table1());
        assert!((out.revenue - 30.4).abs() < 1e-9);
        assert_eq!(out.config.roots.len(), 1);
        out.config.validate(2);
    }

    #[test]
    fn mixed_freqitemset_on_table1() {
        let m = table1();
        let out = MixedFreqItemset::default().run(&m);
        assert!((out.revenue - 32.0).abs() < 1e-9);
        assert!((out.config.expected_revenue(&m) - out.revenue).abs() < 1e-9);
        out.config.validate(2);
    }

    #[test]
    fn never_below_components() {
        for m in [table1(), table1_theta_zero(), substitutes()] {
            let c = Components::optimal().run(&m);
            assert!(PureFreqItemset::default().run(&m).revenue >= c.revenue - 1e-9);
            assert!(MixedFreqItemset::default().run(&m).revenue >= c.revenue - 1e-9);
        }
    }

    #[test]
    fn high_minsup_degenerates_to_components() {
        let m = table1_theta_zero();
        let out = PureFreqItemset { opts: FreqOptions { minsup: 1.1_f64.min(1.0) } }.run(&m);
        // minsup 100%: {0,1} is still frequent here (all users rated both),
        // so use a market where they don't all co-rate.
        let _ = out;
        let w = crate::wtp::WtpMatrix::from_rows(vec![vec![10.0, 0.0], vec![0.0, 10.0]]);
        let m2 = crate::market::Market::new(w, crate::params::Params::default());
        let out2 = PureFreqItemset::default().run(&m2);
        assert_eq!(out2.gain, 0.0);
        assert_eq!(out2.config.roots.len(), 2);
    }
}
