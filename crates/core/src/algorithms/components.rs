//! The non-bundling baseline: sell every item individually (Section 6.1.3).

use crate::algorithms::Configurator;
use crate::bundle::Bundle;
use crate::config::{BundleConfig, OfferNode, Outcome, Strategy};
use crate::market::Market;
use crate::trace::IterationTrace;

/// How component prices are set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ComponentPricing {
    /// Revenue-optimal per-item price (§4.2) — the stronger baseline the
    /// paper compares against ("Optimal pricing is stronger baseline than
    /// Amazon's pricing … It is sufficient to compare to optimal pricing").
    Optimal,
    /// The item's listed price from the dataset ("Amazon's pricing",
    /// Table 2). Requires listed prices on the WTP matrix.
    Listed,
}

/// `Components`: each item sold separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Components {
    pricing: ComponentPricing,
}

impl Components {
    /// Optimal per-item pricing (the paper's default baseline).
    pub fn optimal() -> Self {
        Components { pricing: ComponentPricing::Optimal }
    }

    /// Listed ("Amazon's") pricing, for the Table 2 comparison.
    pub fn listed() -> Self {
        Components { pricing: ComponentPricing::Listed }
    }
}

impl Default for Components {
    fn default() -> Self {
        Self::optimal()
    }
}

impl Configurator for Components {
    fn name(&self) -> &'static str {
        match self.pricing {
            ComponentPricing::Optimal => "Components",
            ComponentPricing::Listed => "Components (listed prices)",
        }
    }

    fn run(&self, market: &Market) -> Outcome {
        let mut scratch = market.scratch();
        let mut roots = Vec::with_capacity(market.n_items());
        let mut revenue = 0.0;
        for item in 0..market.n_items() as u32 {
            let priced = match self.pricing {
                ComponentPricing::Optimal => market.price_pure(&[item], &mut scratch),
                ComponentPricing::Listed => market
                    .price_listed(item)
                    .expect("listed pricing requires a matrix built from ratings data"),
            };
            revenue += priced.revenue;
            // Items nobody wants still need a price on the menu; use the
            // listed price or zero.
            let price = if priced.price > 0.0 {
                priced.price
            } else {
                market.wtp().listed_price(item).unwrap_or(0.0)
            };
            roots.push(OfferNode::leaf(Bundle::single(item), price));
        }
        let config = BundleConfig { strategy: Strategy::Pure, roots };
        Outcome::assemble(self.name(), config, revenue, revenue, market, IterationTrace::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::table1;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    #[test]
    fn table1_components_revenue() {
        let out = Components::optimal().run(&table1());
        assert!((out.revenue - 27.0).abs() < 1e-9);
        assert_eq!(out.gain, 0.0);
        assert_eq!(out.config.roots.len(), 2);
        out.config.validate(2);
        // Coverage = 27 / 42.
        assert!((out.coverage - 27.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn listed_pricing_uses_dataset_prices() {
        // One item at listed price 10; raters at stars 5 and 2 (λ=1.25):
        // WTP 12.5 and 5. Listed price 10 sells to the 5-star user only.
        let w = WtpMatrix::from_ratings(2, 1, vec![(0, 0, 5), (1, 0, 2)], &[10.0], 1.25);
        let m = Market::new(w, Params::default());
        let out = Components::listed().run(&m);
        assert!((out.revenue - 10.0).abs() < 1e-9);
        assert_eq!(out.config.roots[0].price, 10.0);
        // Optimal pricing does better: charge 12.5 (12.5) or 5 (10)... 12.5.
        let opt = Components::optimal().run(&m);
        assert!((opt.revenue - 12.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "listed pricing requires")]
    fn listed_without_prices_panics() {
        Components::listed().run(&table1());
    }

    #[test]
    fn expected_revenue_of_config_matches_reported() {
        let m = table1();
        let out = Components::optimal().run(&m);
        assert!((out.config.expected_revenue(&m) - out.revenue).abs() < 1e-9);
    }
}
