//! The non-bundling baseline: sell every item individually (Section 6.1.3).

use crate::algorithms::Configurator;
use crate::bundle::Bundle;
use crate::config::{BundleConfig, OfferNode, Outcome, Strategy};
use crate::market::{Market, Scratch};
use crate::pricing::PricedOutcome;
use crate::trace::IterationTrace;

/// How component prices are set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ComponentPricing {
    /// Revenue-optimal per-item price (§4.2) — the stronger baseline the
    /// paper compares against ("Optimal pricing is stronger baseline than
    /// Amazon's pricing … It is sufficient to compare to optimal pricing").
    Optimal,
    /// The item's listed price from the dataset ("Amazon's pricing",
    /// Table 2). Requires listed prices on the WTP matrix.
    Listed,
}

/// `Components`: each item sold separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Components {
    pricing: ComponentPricing,
}

impl Components {
    /// Optimal per-item pricing (the paper's default baseline).
    pub fn optimal() -> Self {
        Components { pricing: ComponentPricing::Optimal }
    }

    /// Listed ("Amazon's") pricing, for the Table 2 comparison.
    pub fn listed() -> Self {
        Components { pricing: ComponentPricing::Listed }
    }
}

impl Default for Components {
    fn default() -> Self {
        Self::optimal()
    }
}

/// Per-item pricing memo of one [`Components`] run — what
/// [`Components::run_incremental`] patches after churn instead of
/// re-pricing every item.
#[derive(Debug, Clone)]
pub struct ComponentsMemo {
    /// Priced outcome of each item, in item order.
    priced: Vec<PricedOutcome>,
    /// Consumer count the memo was priced against (a grown market
    /// invalidates every item: under sigmoid adoption even a ratings-free
    /// consumer shifts expected buyers).
    n_users: usize,
}

impl Components {
    fn price_item(&self, market: &Market, item: u32, scratch: &mut Scratch) -> PricedOutcome {
        match self.pricing {
            ComponentPricing::Optimal => market.price_pure(&[item], scratch),
            ComponentPricing::Listed => market
                .price_listed(item)
                .expect("listed pricing requires a matrix built from ratings data"),
        }
    }

    /// [`Configurator::run`] plus the per-item memo for later incremental
    /// re-runs.
    pub fn run_with_memo(&self, market: &Market) -> (Outcome, ComponentsMemo) {
        let mut scratch = market.scratch();
        let priced: Vec<PricedOutcome> = (0..market.n_items() as u32)
            .map(|item| self.price_item(market, item, &mut scratch))
            .collect();
        self.assemble_memo(market, priced)
    }

    /// Incremental re-run after churn (`DESIGN.md` §10): re-price only
    /// items whose column changed (`touched_items`, ascending — see
    /// [`crate::marketlog::MarketLog::touched_items`]) or that are new
    /// since the memo; every other item reuses its memoized outcome. The
    /// assembly loop accumulates in item order, so the result is
    /// **bit-identical** to [`Components::run_with_memo`] on the same
    /// market.
    pub fn run_incremental(
        &self,
        market: &Market,
        prev: &ComponentsMemo,
        touched_items: &[u32],
    ) -> (Outcome, ComponentsMemo) {
        debug_assert!(touched_items.windows(2).all(|w| w[0] < w[1]), "touched items unsorted");
        if market.n_users() != prev.n_users {
            return self.run_with_memo(market);
        }
        let mut scratch = market.scratch();
        let priced: Vec<PricedOutcome> = (0..market.n_items() as u32)
            .map(|item| {
                if (item as usize) >= prev.priced.len()
                    || touched_items.binary_search(&item).is_ok()
                {
                    self.price_item(market, item, &mut scratch)
                } else {
                    prev.priced[item as usize]
                }
            })
            .collect();
        self.assemble_memo(market, priced)
    }

    fn assemble_memo(
        &self,
        market: &Market,
        priced: Vec<PricedOutcome>,
    ) -> (Outcome, ComponentsMemo) {
        let mut roots = Vec::with_capacity(priced.len());
        let mut revenue = 0.0;
        for (item, p) in priced.iter().enumerate() {
            revenue += p.revenue;
            // Items nobody wants still need a price on the menu; use the
            // listed price or zero.
            let price = if p.price > 0.0 {
                p.price
            } else {
                market.wtp().listed_price(item as u32).unwrap_or(0.0)
            };
            roots.push(OfferNode::leaf(Bundle::single(item as u32), price));
        }
        let config = BundleConfig { strategy: Strategy::Pure, roots };
        let outcome =
            Outcome::assemble(self.name(), config, revenue, revenue, market, IterationTrace::new());
        (outcome, ComponentsMemo { priced, n_users: market.n_users() })
    }
}

impl Configurator for Components {
    fn name(&self) -> &'static str {
        match self.pricing {
            ComponentPricing::Optimal => "Components",
            ComponentPricing::Listed => "Components (listed prices)",
        }
    }

    fn run(&self, market: &Market) -> Outcome {
        self.run_with_memo(market).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::table1;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    #[test]
    fn table1_components_revenue() {
        let out = Components::optimal().run(&table1());
        assert!((out.revenue - 27.0).abs() < 1e-9);
        assert_eq!(out.gain, 0.0);
        assert_eq!(out.config.roots.len(), 2);
        out.config.validate(2);
        // Coverage = 27 / 42.
        assert!((out.coverage - 27.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn listed_pricing_uses_dataset_prices() {
        // One item at listed price 10; raters at stars 5 and 2 (λ=1.25):
        // WTP 12.5 and 5. Listed price 10 sells to the 5-star user only.
        let w = WtpMatrix::from_ratings(2, 1, vec![(0, 0, 5), (1, 0, 2)], &[10.0], 1.25);
        let m = Market::new(w, Params::default());
        let out = Components::listed().run(&m);
        assert!((out.revenue - 10.0).abs() < 1e-9);
        assert_eq!(out.config.roots[0].price, 10.0);
        // Optimal pricing does better: charge 12.5 (12.5) or 5 (10)... 12.5.
        let opt = Components::optimal().run(&m);
        assert!((opt.revenue - 12.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "listed pricing requires")]
    fn listed_without_prices_panics() {
        Components::listed().run(&table1());
    }

    #[test]
    fn expected_revenue_of_config_matches_reported() {
        let m = table1();
        let out = Components::optimal().run(&m);
        assert!((out.config.expected_revenue(&m) - out.revenue).abs() < 1e-9);
    }

    #[test]
    fn incremental_rerun_is_bit_identical_to_cold() {
        use crate::marketlog::{Event, MarketLog};
        let m = table1();
        let (cold0, memo) = Components::optimal().run_with_memo(&m);
        assert_eq!(cold0.revenue.to_bits(), Components::optimal().run(&m).revenue.to_bits());

        // Touch item 0 and add a fresh item; item 1 must reuse its memo.
        let mut log = MarketLog::new(m);
        log.apply(Event::UpsertWtp { user: 2, item: 0, wtp: 6.5 }).unwrap();
        log.add_item(None).unwrap();
        log.apply(Event::UpsertWtp { user: 0, item: 2, wtp: 3.0 }).unwrap();
        let churned = log.snapshot();

        let (inc, memo2) =
            Components::optimal().run_incremental(&churned, &memo, &log.touched_items());
        let (cold, _) = Components::optimal().run_with_memo(&churned);
        assert_eq!(inc.revenue.to_bits(), cold.revenue.to_bits());
        assert_eq!(inc.config, cold.config);
        assert_eq!(memo2.n_users, 3);

        // User growth falls back to a full re-price, still bit-identical.
        log.apply(Event::AddUser).unwrap();
        let grown = log.snapshot();
        let (inc, _) = Components::optimal().run_incremental(&grown, &memo, &log.touched_items());
        let (cold, _) = Components::optimal().run_with_memo(&grown);
        assert_eq!(inc.revenue.to_bits(), cold.revenue.to_bits());
    }
}
