//! Shared search-state abstraction for the matching and greedy engines.
//!
//! Both Algorithm 1 (matching) and Algorithm 2 (greedy) manipulate a pool
//! of current top-level offers and repeatedly merge pairs. The only
//! difference between pure and mixed bundling is *how a merge is priced and
//! accounted* (Section 5.3.3: "the key difference between the two is how
//! the revenue of a bundle is computed"). [`SearchOffer`] abstracts exactly
//! that, so each engine is written once.

use crate::bundle::Bundle;
use crate::config::{OfferNode, Strategy};
use crate::market::{Market, Scratch};
use crate::mixed::{self, TopOffer};

/// A priced quote for merging two offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MergeQuote {
    /// Price of the merged bundle.
    pub price: f64,
    /// Revenue gain over the two offers.
    pub gain: f64,
}

/// One top-level offer during configuration search. `Send + Sync` so the
/// matching engine can score candidate merges from a read-only offer pool
/// across worker threads.
pub(crate) trait SearchOffer: Sized + Clone + Send + Sync {
    /// Which problem variant this offer type solves.
    const STRATEGY: Strategy;

    /// The items covered.
    fn bundle(&self) -> &Bundle;
    /// Current expected revenue attributed to this offer.
    fn revenue(&self) -> f64;
    /// Users with positive WTP on any covered item.
    fn raters(&self) -> &revmax_fim::Bitmap;
    /// Convert into the final offer tree.
    fn into_node(self) -> OfferNode;

    /// Initial singleton offer for one item.
    fn init(market: &Market, item: u32, scratch: &mut Scratch) -> Self;
    /// Price the merge of `a` and `b`; `None` when the gain is not positive.
    fn plan_merge(market: &Market, a: &Self, b: &Self, scratch: &mut Scratch)
        -> Option<MergeQuote>;
    /// Execute a planned merge.
    fn commit_merge(
        market: &Market,
        a: Self,
        b: Self,
        quote: MergeQuote,
        scratch: &mut Scratch,
    ) -> Self;
}

/// Pure-bundling offer: a bundle at a single price, no sub-offers.
#[derive(Debug, Clone)]
pub(crate) struct PureOffer {
    pub bundle: Bundle,
    pub price: f64,
    pub revenue: f64,
    pub raters: revmax_fim::Bitmap,
}

impl SearchOffer for PureOffer {
    const STRATEGY: Strategy = Strategy::Pure;

    fn bundle(&self) -> &Bundle {
        &self.bundle
    }

    fn revenue(&self) -> f64 {
        self.revenue
    }

    fn raters(&self) -> &revmax_fim::Bitmap {
        &self.raters
    }

    fn into_node(self) -> OfferNode {
        OfferNode::leaf(self.bundle, self.price)
    }

    fn init(market: &Market, item: u32, scratch: &mut Scratch) -> Self {
        let priced = market.price_pure(&[item], scratch);
        PureOffer {
            bundle: Bundle::single(item),
            price: priced.price,
            revenue: priced.revenue,
            raters: market.item_raters(item),
        }
    }

    fn plan_merge(
        market: &Market,
        a: &Self,
        b: &Self,
        scratch: &mut Scratch,
    ) -> Option<MergeQuote> {
        let merged = a.bundle.union(&b.bundle);
        let priced = market.price_pure(merged.items(), scratch);
        let gain = priced.revenue - a.revenue - b.revenue;
        (gain > 0.0).then_some(MergeQuote { price: priced.price, gain })
    }

    fn commit_merge(
        market: &Market,
        a: Self,
        b: Self,
        quote: MergeQuote,
        scratch: &mut Scratch,
    ) -> Self {
        let merged = a.bundle.union(&b.bundle);
        // Re-derive revenue at the quoted price for exact accounting.
        let _ = scratch;
        let _ = market;
        let mut raters = a.raters;
        raters.or_assign(&b.raters);
        PureOffer {
            bundle: merged,
            price: quote.price,
            revenue: a.revenue + b.revenue + quote.gain,
            raters,
        }
    }
}

/// Mixed-bundling offer: wraps [`mixed::TopOffer`] (offer tree + consumer
/// holdings).
#[derive(Debug, Clone)]
pub(crate) struct MixedOffer {
    inner: TopOffer,
}

impl SearchOffer for MixedOffer {
    const STRATEGY: Strategy = Strategy::Mixed;

    fn bundle(&self) -> &Bundle {
        &self.inner.node.bundle
    }

    fn revenue(&self) -> f64 {
        self.inner.revenue
    }

    fn raters(&self) -> &revmax_fim::Bitmap {
        &self.inner.raters
    }

    fn into_node(self) -> OfferNode {
        self.inner.node
    }

    fn init(market: &Market, item: u32, scratch: &mut Scratch) -> Self {
        MixedOffer { inner: mixed::init_component(market, item, scratch) }
    }

    fn plan_merge(
        market: &Market,
        a: &Self,
        b: &Self,
        scratch: &mut Scratch,
    ) -> Option<MergeQuote> {
        mixed::price_merge(market, &a.inner, &b.inner, scratch)
            .map(|p| MergeQuote { price: p.price, gain: p.gain })
    }

    fn commit_merge(
        market: &Market,
        a: Self,
        b: Self,
        quote: MergeQuote,
        scratch: &mut Scratch,
    ) -> Self {
        MixedOffer { inner: mixed::commit_merge(market, a.inner, b.inner, quote.price, scratch) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::table1;

    #[test]
    fn pure_offer_init_and_merge() {
        let m = table1();
        let mut s = m.scratch();
        let a = PureOffer::init(&m, 0, &mut s);
        let b = PureOffer::init(&m, 1, &mut s);
        assert!((a.revenue - 16.0).abs() < 1e-9);
        assert!((b.revenue - 11.0).abs() < 1e-9);
        // Pure merge: bundle revenue 30.4 > 27 → gain 3.4.
        let q = PureOffer::plan_merge(&m, &a, &b, &mut s).expect("gain");
        assert!((q.gain - 3.4).abs() < 1e-9);
        assert!((q.price - 15.2).abs() < 1e-9);
        let merged = PureOffer::commit_merge(&m, a, b, q, &mut s);
        assert!((merged.revenue - 30.4).abs() < 1e-9);
        assert_eq!(merged.bundle.items(), &[0, 1]);
    }

    #[test]
    fn mixed_offer_matches_mixed_module() {
        let m = table1();
        let mut s = m.scratch();
        let a = MixedOffer::init(&m, 0, &mut s);
        let b = MixedOffer::init(&m, 1, &mut s);
        let q = MixedOffer::plan_merge(&m, &a, &b, &mut s).expect("gain");
        assert!((q.gain - 5.0).abs() < 1e-9);
        let merged = MixedOffer::commit_merge(&m, a, b, q, &mut s);
        assert!((merged.revenue() - 32.0).abs() < 1e-9);
        // The mixed node keeps its components as children.
        assert_eq!(merged.inner.node.children.len(), 2);
    }

    #[test]
    fn plan_merge_none_when_no_gain() {
        use crate::algorithms::test_support::substitutes;
        let m = substitutes();
        let mut s = m.scratch();
        let a = PureOffer::init(&m, 0, &mut s);
        let b = PureOffer::init(&m, 1, &mut s);
        // Heavy substitutes (θ=-0.5): merging loses revenue.
        assert!(PureOffer::plan_merge(&m, &a, &b, &mut s).is_none());
    }
}
