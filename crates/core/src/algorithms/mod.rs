//! The configuration algorithms (Section 5) and baselines (Section 6.1.3).

mod components;
mod freq_itemset;
mod greedy;
mod matching;
mod pure_state;

pub use components::Components;
pub use freq_itemset::{FreqItemsetConfigurator, FreqOptions, MixedFreqItemset, PureFreqItemset};
pub use greedy::{GreedyConfigurator, GreedyOptions, MixedGreedy, PureGreedy};
pub use matching::{MatchingConfigurator, MatchingOptions, MixedMatching, PureMatching};

use crate::config::Outcome;
use crate::market::Market;

/// A bundle-configuration algorithm: consumes a market, produces a priced
/// configuration with metrics and a per-iteration trace.
pub trait Configurator {
    /// Paper nomenclature ("Components", "Pure Matching", …).
    fn name(&self) -> &'static str;
    /// Run on a market.
    fn run(&self, market: &Market) -> Outcome;
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::market::Market;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    /// Table 1's market (θ = −0.05).
    pub fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![12.0, 4.0],
            vec![8.0, 2.0],
            vec![5.0, 11.0],
        ]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    /// Same WTP, θ = 0 (independent items).
    pub fn table1_theta_zero() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![12.0, 4.0],
            vec![8.0, 2.0],
            vec![5.0, 11.0],
        ]);
        Market::new(w, Params::default())
    }

    /// A complementary market where bundling clearly wins: two items,
    /// anti-correlated WTP, θ > 0.
    pub fn complementary() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![10.0, 2.0],
            vec![2.0, 10.0],
            vec![6.0, 6.0],
            vec![9.0, 3.0],
        ]);
        Market::new(w, Params::default().with_theta(0.10))
    }

    /// A market of substitutes (θ < 0) where bundling cannot help and every
    /// algorithm must fall back to Components.
    pub fn substitutes() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![10.0, 10.0],
            vec![10.0, 10.0],
            vec![10.0, 10.0],
        ]);
        Market::new(w, Params::default().with_theta(-0.5))
    }
}
