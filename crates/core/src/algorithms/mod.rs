//! The configuration algorithms (Section 5) and baselines (Section 6.1.3).

mod components;
mod freq_itemset;
mod greedy;
mod matching;
mod pure_state;

pub use components::Components;
pub use freq_itemset::{FreqItemsetConfigurator, FreqOptions, MixedFreqItemset, PureFreqItemset};
pub use greedy::{GreedyConfigurator, GreedyOptions, MixedGreedy, PureGreedy};
pub use matching::{MatchingConfigurator, MatchingOptions, MixedMatching, PureMatching};

use crate::config::Outcome;
use crate::market::Market;
use crate::objective::Objective;

/// A bundle-configuration algorithm: consumes a market, produces a priced
/// configuration with metrics and a per-iteration trace.
pub trait Configurator {
    /// Paper nomenclature ("Components", "Pure Matching", …).
    fn name(&self) -> &'static str;
    /// Run on a market.
    fn run(&self, market: &Market) -> Outcome;
}

/// Per-family options for [`registry_with`]: one knob set per engine,
/// defaulted to the paper's settings.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegistryOptions {
    pub greedy: GreedyOptions,
    pub freq: FreqOptions,
    pub matching: MatchingOptions,
    /// Pricing objective override. `None` (the default) runs every
    /// configurator on the market exactly as given — bit-identical to the
    /// pre-objective registry. `Some(o)` re-targets each solve at
    /// objective `o` via [`Market::with_objective`], whatever the market
    /// itself carries.
    pub objective: Option<Objective>,
}

/// The seven comparative methods of Section 6.2 in the paper's order, each
/// paired with its canonical name. **The** single place the configurator
/// list is defined — the experiment harness, the determinism suite, and
/// the examples all draw from here.
pub fn registry() -> Vec<(&'static str, Box<dyn Configurator>)> {
    registry_with(RegistryOptions::default())
}

/// [`registry`] with explicit engine options (ablations, sweeps).
pub fn registry_with(opts: RegistryOptions) -> Vec<(&'static str, Box<dyn Configurator>)> {
    let RegistryOptions { greedy, freq, matching, objective } = opts;
    let base: Vec<(&'static str, Box<dyn Configurator>)> = vec![
        ("Components", Box::new(Components::optimal()) as Box<dyn Configurator>),
        ("Pure Matching", Box::new(PureMatching { opts: matching })),
        ("Pure Greedy", Box::new(PureGreedy { opts: greedy })),
        ("Mixed Matching", Box::new(MixedMatching { opts: matching })),
        ("Mixed Greedy", Box::new(MixedGreedy { opts: greedy })),
        ("Pure FreqItemset", Box::new(PureFreqItemset { opts: freq })),
        ("Mixed FreqItemset", Box::new(MixedFreqItemset { opts: freq })),
    ];
    match objective {
        // No override: hand back the configurators untouched, so default
        // registries stay literally the pre-objective construction.
        None => base,
        Some(objective) => base
            .into_iter()
            .map(|(n, inner)| {
                (n, Box::new(ObjectiveOverride { inner, objective }) as Box<dyn Configurator>)
            })
            .collect(),
    }
}

/// Adapter applying [`RegistryOptions::objective`]: runs the wrapped
/// configurator on [`Market::with_objective`] of whatever market it is
/// given.
struct ObjectiveOverride {
    inner: Box<dyn Configurator>,
    objective: Objective,
}

impl Configurator for ObjectiveOverride {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, market: &Market) -> Outcome {
        self.inner.run(&market.with_objective(self.objective))
    }
}

/// Look one configurator up by its registry name (default options).
pub fn by_name(name: &str) -> Option<Box<dyn Configurator>> {
    registry().into_iter().find(|(n, _)| *n == name).map(|(_, c)| c)
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::market::Market;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    /// Table 1's market (θ = −0.05).
    pub fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    /// Same WTP, θ = 0 (independent items).
    pub fn table1_theta_zero() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default())
    }

    /// A complementary market where bundling clearly wins: two items,
    /// anti-correlated WTP, θ > 0.
    pub fn complementary() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![10.0, 2.0],
            vec![2.0, 10.0],
            vec![6.0, 6.0],
            vec![9.0, 3.0],
        ]);
        Market::new(w, Params::default().with_theta(0.10))
    }

    /// A market of substitutes (θ < 0) where bundling cannot help and every
    /// algorithm must fall back to Components.
    pub fn substitutes() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![10.0, 10.0], vec![10.0, 10.0], vec![10.0, 10.0]]);
        Market::new(w, Params::default().with_theta(-0.5))
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_has_the_seven_methods_in_paper_order() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "Components",
                "Pure Matching",
                "Pure Greedy",
                "Mixed Matching",
                "Mixed Greedy",
                "Pure FreqItemset",
                "Mixed FreqItemset",
            ]
        );
    }

    #[test]
    fn registry_keys_agree_with_configurator_names() {
        for (key, c) in registry() {
            assert_eq!(key, c.name());
        }
    }

    #[test]
    fn by_name_round_trips() {
        let c = by_name("Mixed Matching").expect("known name");
        assert_eq!(c.name(), "Mixed Matching");
        assert!(by_name("No Such Method").is_none());
    }

    #[test]
    fn registry_with_honours_options() {
        let opts = RegistryOptions { freq: FreqOptions { minsup: 0.25 }, ..Default::default() };
        let m = test_support::table1();
        // Same market, same options → same outcome through the registry as
        // through a hand-built configurator.
        let via_registry = registry_with(opts)
            .into_iter()
            .find(|(n, _)| *n == "Pure FreqItemset")
            .unwrap()
            .1
            .run(&m);
        let direct = PureFreqItemset { opts: FreqOptions { minsup: 0.25 } }.run(&m);
        assert_eq!(via_registry.revenue.to_bits(), direct.revenue.to_bits());
    }

    #[test]
    fn objective_knob_keeps_names_and_order() {
        let opts = RegistryOptions {
            objective: Some(crate::objective::Objective::Cvar(0.9)),
            ..Default::default()
        };
        let names: Vec<&str> = registry_with(opts).iter().map(|(n, _)| *n).collect();
        let default_names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, default_names);
        for (key, c) in registry_with(opts) {
            assert_eq!(key, c.name());
        }
    }

    #[test]
    fn objective_knob_equals_retargeted_market() {
        // Running the wrapped registry on `m` must equal running the
        // default registry on `m.with_objective(o)` bit for bit.
        let m = test_support::complementary();
        let o = crate::objective::Objective::Cvar(0.6);
        let retargeted = m.with_objective(o);
        let wrapped = registry_with(RegistryOptions { objective: Some(o), ..Default::default() });
        for ((name, via_knob), (_, direct)) in wrapped.into_iter().zip(registry()) {
            let a = via_knob.run(&m);
            let b = direct.run(&retargeted);
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits(), "{name}");
            assert_eq!(a.config, b.config, "{name}");
        }
    }
}

#[cfg(test)]
mod doc_claim_tests {
    //! Pins the two numeric claims the crate-level docs make (the
    //! `lib.rs` quickstart): the Table 1 Components baseline is exactly
    //! $27, and mixed bundling never falls below Components — not just on
    //! Table 1 but across randomly generated markets.

    use super::test_support::table1;
    use super::{Components, Configurator, MixedMatching};
    use crate::market::Market;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table1_components_is_27_and_mixed_is_32() {
        let m = table1();
        let components = Components::optimal().run(&m);
        assert!(
            (components.revenue - 27.0).abs() < 1e-6,
            "Components on Table 1 must be $27, got {}",
            components.revenue
        );
        let mixed = MixedMatching::default().run(&m);
        // $32.00 under the §4.2 upgrade semantics (see EXPERIMENTS.md).
        assert!(
            (mixed.revenue - 32.0).abs() < 1e-6,
            "Mixed Matching on Table 1 must be $32, got {}",
            mixed.revenue
        );
        assert!(mixed.revenue > components.revenue);
    }

    #[test]
    fn mixed_matching_never_below_components_across_seeds() {
        // §6's guarantee: every configurator reverts to Components when
        // bundling cannot help, so revenue never drops below the baseline.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_users = rng.random_range(3..12usize);
            let n_items = rng.random_range(2..7usize);
            let rows: Vec<Vec<f64>> = (0..n_users)
                .map(|_| (0..n_items).map(|_| rng.random_range(0.0..20.0)).collect())
                .collect();
            let theta = rng.random_range(-0.2..=0.2);
            let m = Market::new(WtpMatrix::from_rows(rows), Params::default().with_theta(theta));
            let base = Components::optimal().run(&m).revenue;
            let mixed = MixedMatching::default().run(&m).revenue;
            assert!(
                mixed >= base - 1e-9,
                "seed {seed} (theta {theta:.3}): mixed {mixed} below components {base}"
            );
        }
    }
}
