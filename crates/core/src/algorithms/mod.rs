//! The configuration algorithms (Section 5) and baselines (Section 6.1.3).

mod components;
mod freq_itemset;
mod greedy;
mod matching;
mod pure_state;

pub use components::Components;
pub use freq_itemset::{FreqItemsetConfigurator, FreqOptions, MixedFreqItemset, PureFreqItemset};
pub use greedy::{GreedyConfigurator, GreedyOptions, MixedGreedy, PureGreedy};
pub use matching::{MatchingConfigurator, MatchingOptions, MixedMatching, PureMatching};

use crate::config::Outcome;
use crate::market::Market;

/// A bundle-configuration algorithm: consumes a market, produces a priced
/// configuration with metrics and a per-iteration trace.
pub trait Configurator {
    /// Paper nomenclature ("Components", "Pure Matching", …).
    fn name(&self) -> &'static str;
    /// Run on a market.
    fn run(&self, market: &Market) -> Outcome;
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::market::Market;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    /// Table 1's market (θ = −0.05).
    pub fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    /// Same WTP, θ = 0 (independent items).
    pub fn table1_theta_zero() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default())
    }

    /// A complementary market where bundling clearly wins: two items,
    /// anti-correlated WTP, θ > 0.
    pub fn complementary() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![10.0, 2.0],
            vec![2.0, 10.0],
            vec![6.0, 6.0],
            vec![9.0, 3.0],
        ]);
        Market::new(w, Params::default().with_theta(0.10))
    }

    /// A market of substitutes (θ < 0) where bundling cannot help and every
    /// algorithm must fall back to Components.
    pub fn substitutes() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![10.0, 10.0], vec![10.0, 10.0], vec![10.0, 10.0]]);
        Market::new(w, Params::default().with_theta(-0.5))
    }
}

#[cfg(test)]
mod doc_claim_tests {
    //! Pins the two numeric claims the crate-level docs make (the
    //! `lib.rs` quickstart): the Table 1 Components baseline is exactly
    //! $27, and mixed bundling never falls below Components — not just on
    //! Table 1 but across randomly generated markets.

    use super::test_support::table1;
    use super::{Components, Configurator, MixedMatching};
    use crate::market::Market;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table1_components_is_27_and_mixed_is_32() {
        let m = table1();
        let components = Components::optimal().run(&m);
        assert!(
            (components.revenue - 27.0).abs() < 1e-6,
            "Components on Table 1 must be $27, got {}",
            components.revenue
        );
        let mixed = MixedMatching::default().run(&m);
        // $32.00 under the §4.2 upgrade semantics (see EXPERIMENTS.md).
        assert!(
            (mixed.revenue - 32.0).abs() < 1e-6,
            "Mixed Matching on Table 1 must be $32, got {}",
            mixed.revenue
        );
        assert!(mixed.revenue > components.revenue);
    }

    #[test]
    fn mixed_matching_never_below_components_across_seeds() {
        // §6's guarantee: every configurator reverts to Components when
        // bundling cannot help, so revenue never drops below the baseline.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_users = rng.random_range(3..12usize);
            let n_items = rng.random_range(2..7usize);
            let rows: Vec<Vec<f64>> = (0..n_users)
                .map(|_| (0..n_items).map(|_| rng.random_range(0.0..20.0)).collect())
                .collect();
            let theta = rng.random_range(-0.2..=0.2);
            let m = Market::new(WtpMatrix::from_rows(rows), Params::default().with_theta(theta));
            let base = Components::optimal().run(&m).revenue;
            let mixed = MixedMatching::default().run(&m).revenue;
            assert!(
                mixed >= base - 1e-9,
                "seed {seed} (theta {theta:.3}): mixed {mixed} below components {base}"
            );
        }
    }
}
