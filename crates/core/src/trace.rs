//! Per-iteration traces of the configuration algorithms, powering the
//! revenue-vs-time analysis of Figure 6.

use std::time::Duration;

/// One algorithm iteration: the configuration revenue after the iteration
/// and the cumulative wall time spent so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationPoint {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Total expected revenue of the configuration after this iteration.
    pub revenue: f64,
    /// Cumulative wall-clock time from algorithm start.
    pub elapsed: Duration,
    /// Number of top-level bundles after this iteration.
    pub n_bundles: usize,
}

/// The full trace of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationTrace {
    points: Vec<IterationPoint>,
}

impl IterationTrace {
    /// Start an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; iterations must be recorded in order.
    pub fn push(&mut self, revenue: f64, elapsed: Duration, n_bundles: usize) {
        let iteration = self.points.len() + 1;
        if let Some(last) = self.points.last() {
            debug_assert!(elapsed >= last.elapsed, "elapsed time must be monotone");
        }
        self.points.push(IterationPoint { iteration, revenue, elapsed, n_bundles });
    }

    /// All recorded points.
    pub fn points(&self) -> &[IterationPoint] {
        &self.points
    }

    /// Number of iterations (Figure 6 reports e.g. 10 for Mixed Matching vs
    /// 4347 for Mixed Greedy on the paper's dataset).
    pub fn iterations(&self) -> usize {
        self.points.len()
    }

    /// Total wall time (the last point's cumulative time).
    pub fn total_time(&self) -> Duration {
        self.points.last().map_or(Duration::ZERO, |p| p.elapsed)
    }

    /// Final revenue.
    pub fn final_revenue(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.revenue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = IterationTrace::new();
        t.push(10.0, Duration::from_millis(5), 4);
        t.push(12.0, Duration::from_millis(9), 3);
        assert_eq!(t.iterations(), 2);
        assert_eq!(t.points()[0].iteration, 1);
        assert_eq!(t.points()[1].iteration, 2);
        assert_eq!(t.final_revenue(), 12.0);
        assert_eq!(t.total_time(), Duration::from_millis(9));
    }

    #[test]
    fn empty_trace() {
        let t = IterationTrace::new();
        assert_eq!(t.iterations(), 0);
        assert_eq!(t.final_revenue(), 0.0);
        assert_eq!(t.total_time(), Duration::ZERO);
    }
}
