//! Optimal single-bundle pricing (Section 4.2).
//!
//! Given the positive bundle WTPs of the consumers, find the price that
//! maximizes the expected objective
//!
//! ```text
//!   U(p) = α_obj · (p − c) · F(p)  +  (1 − α_obj) · Surplus(p)
//! ```
//!
//! where `F(p) = Σ_u P(adopt | p, w_u)` is the expected number of adopters
//! (Eq. 5) and `Surplus(p) = Σ_u P(adopt)·(w_u − p)`. With the paper's
//! defaults (`α_obj = 1`, `c = 0`) this is plain expected revenue
//! `p · F(p)` (Eq. 2).
//!
//! Price search modes:
//!
//! * [`PriceMode::Exact`] — candidates at the distinct consumer valuations
//!   `α·w_u`. Under the step adoption rule the optimum is always at one of
//!   these, so this mode is exact (the limit `T → ∞` of the paper's
//!   discretization). Under a soft sigmoid it falls back to the grid.
//! * [`PriceMode::Grid`] — the paper's `T` equi-spaced levels spanning
//!   `(0, max α·w]`, consumers bucketed once (`O(M)`), each level scored
//!   from bucket aggregates (`O(T²)`, constant for fixed `T`).
//!
//! A free-standing [`optimize_with_price_list`] supports arbitrary price
//! lists (the "binary search (if arbitrary price levels)" variant §4.2
//! mentions).
//!
//! All entry points are thin wrappers over [`optimize_with`], which takes
//! the candidate source ([`Candidates`]) and the revenue statistic to
//! maximize ([`Objective`]) as parameters: mean vs lower-quantile vs CVaR
//! is a knob, not a function family. Robust objectives re-score each
//! candidate price against the per-user revenue distribution (see
//! [`crate::objective`]); the exact mode stays exact because, within a
//! constant-buyer-set price interval, every objective's utility is
//! monotone in the price, so the optimum remains at a consumer valuation.

use crate::adoption::AdoptionModel;
use crate::objective::Objective;
use revmax_par::par_index_map;

/// Below this many candidate price levels (or price-list entries) the
/// search stays sequential: thread-spawn overhead would dominate. The
/// threshold depends only on the workload, never on the thread count, so
/// it cannot perturb determinism.
const PAR_LEVELS_MIN: usize = 128;

/// How candidate prices are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceMode {
    /// Candidate prices at consumer valuations (exact for step adoption).
    Exact,
    /// `T` equi-spaced levels, the paper's default discretization.
    Grid,
}

/// The result of pricing one bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricedOutcome {
    /// The chosen price.
    pub price: f64,
    /// Expected number of adopters at that price.
    pub expected_buyers: f64,
    /// Expected revenue `price × buyers`.
    pub revenue: f64,
    /// Expected consumer surplus `Σ P(adopt)(w − price)`.
    pub surplus: f64,
    /// The maximized objective (equals `revenue` at the paper defaults).
    pub utility: f64,
}

impl PricedOutcome {
    /// The "no sale" outcome (no consumers, or nothing worth charging).
    pub fn zero() -> Self {
        PricedOutcome { price: 0.0, expected_buyers: 0.0, revenue: 0.0, surplus: 0.0, utility: 0.0 }
    }
}

/// Knobs shared by every pricing call; bundled to keep signatures sane.
#[derive(Debug, Clone, Copy)]
pub struct PricingCtx {
    pub adoption: AdoptionModel,
    pub mode: PriceMode,
    /// Grid size `T` when `mode == Grid` (or as sigmoid fallback).
    pub levels: usize,
    /// Profit weight `α_obj` of the utility objective.
    pub objective_alpha: f64,
    /// Per-unit variable cost `c`.
    pub unit_cost: f64,
    /// Revenue statistic to maximize (`DESIGN.md` §13). [`Objective::Mean`]
    /// reproduces the paper's expected-revenue objective bit for bit.
    pub objective: Objective,
    /// Resolved worker-thread count for the price search (≥ 1). Results
    /// are bit-identical at any value (`DESIGN.md` §6).
    pub threads: usize,
}

impl PricingCtx {
    /// Context from [`crate::params::Params`] with [`PriceMode::Exact`].
    pub fn from_params(p: &crate::params::Params) -> Self {
        PricingCtx {
            adoption: AdoptionModel::from_params(p),
            mode: PriceMode::Exact,
            levels: p.price_levels,
            objective_alpha: p.objective_alpha,
            unit_cost: p.unit_cost,
            objective: p.objective,
            threads: p.threads.get(),
        }
    }

    /// Same but with the paper's grid discretization.
    pub fn grid_from_params(p: &crate::params::Params) -> Self {
        PricingCtx { mode: PriceMode::Grid, ..Self::from_params(p) }
    }

    /// The scored utility of one candidate price. `m` is the count of
    /// interested users (finite positive WTP); the objective pools the
    /// two-point per-user payment distribution (`buyers` pay `price`,
    /// `m − buyers` pay 0) into an effective buyer base. For
    /// [`Objective::Mean`], `base == buyers` and this is exactly the
    /// pre-objective expression — bit-identical arithmetic.
    #[inline]
    fn utility(&self, price: f64, buyers: f64, surplus: f64, m: f64) -> f64 {
        let base = self.objective.base_buyers(buyers, m);
        self.objective_alpha * (price - self.unit_cost) * base
            + (1.0 - self.objective_alpha) * surplus
    }
}

/// Streaming ordered argmax with the lowest-price tie-break. Candidates
/// must arrive in their canonical order (level/list order) so tie-breaks —
/// and therefore parallel-vs-sequential agreement — are exact.
fn fold_best(
    mut best: PricedOutcome,
    outcomes: impl Iterator<Item = PricedOutcome>,
) -> PricedOutcome {
    for out in outcomes {
        if out.utility > best.utility || (out.utility == best.utility && out.price < best.price) {
            best = out;
        }
    }
    best
}

/// Where candidate prices come from: the mode-driven machinery (consumer
/// valuations or the `T`-level grid per [`PricingCtx::mode`]) or an
/// explicit arbitrary price list.
#[derive(Debug, Clone, Copy)]
pub enum Candidates<'a> {
    /// Candidates per `ctx.mode`: valuations (exact) or the equi-spaced
    /// grid.
    Auto,
    /// Score exactly these prices (must be positive and finite).
    List(&'a [f64]),
}

/// The one objective-aware pricing entry point: optimize the price for
/// consumers with bundle WTPs `values` under an explicit [`Objective`]
/// (overriding `ctx.objective`) and candidate source. Only finite
/// positive WTP entries matter; zero/negative/non-finite entries are
/// ignored — non-finite WTPs cannot enter through
/// [`crate::wtp::CsrBuilder`], but this free-standing entry point accepts
/// arbitrary slices. [`optimize`] and [`optimize_with_price_list`] are
/// thin wrappers that pass `ctx.objective` through.
pub fn optimize_with(
    values: &[f64],
    ctx: &PricingCtx,
    objective: Objective,
    candidates: Candidates<'_>,
) -> PricedOutcome {
    let ctx = PricingCtx { objective, ..*ctx };
    let positive: Vec<f64> = values.iter().copied().filter(|&w| w.is_finite() && w > 0.0).collect();
    if positive.is_empty() {
        return PricedOutcome::zero();
    }
    match candidates {
        Candidates::Auto => match (ctx.mode, ctx.adoption.is_step()) {
            (PriceMode::Exact, true) => optimize_exact_step(&positive, &ctx),
            _ => optimize_grid(&positive, &ctx),
        },
        Candidates::List(prices) => optimize_price_list(&positive, &ctx, prices),
    }
}

/// Optimize under the context's own objective with mode-driven candidates.
pub fn optimize(values: &[f64], ctx: &PricingCtx) -> PricedOutcome {
    optimize_with(values, ctx, ctx.objective, Candidates::Auto)
}

/// Exact optimum under step adoption: the optimal price is at some
/// consumer valuation `α·w` (raising the price further loses that buyer
/// with no compensation; lowering it gains nobody new until the next
/// valuation).
fn optimize_exact_step(values: &[f64], ctx: &PricingCtx) -> PricedOutcome {
    let alpha = ctx.adoption.alpha;
    // Sort raw WTPs descending; candidate k charges the k-th valuation.
    // `total_cmp` (not `partial_cmp().unwrap()`): the solve must never
    // panic on a stray NaN reaching a pricing call — non-finite WTPs are
    // rejected at ingestion (`CsrBuilder::push`), and any NaN slipping in
    // through the public `optimize` entry points is filtered there, but a
    // sort comparator is the wrong place to enforce either.
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.total_cmp(a));
    // Prefix sums of raw WTP for O(1) surplus.
    let mut prefix = Vec::with_capacity(sorted.len() + 1);
    prefix.push(0.0);
    for &w in &sorted {
        prefix.push(prefix.last().unwrap() + w);
    }
    let m = sorted.len() as f64;
    let mut best = PricedOutcome::zero();
    let mut k = 0usize;
    while k < sorted.len() {
        // Group ties so `buyers` counts every consumer at this valuation.
        let mut end = k + 1;
        while end < sorted.len() && sorted[end] == sorted[k] {
            end += 1;
        }
        let price = alpha * sorted[k];
        let buyers = end as f64;
        let surplus = prefix[end] - price * buyers;
        let utility = ctx.utility(price, buyers, surplus, m);
        if utility > best.utility || (utility == best.utility && price < best.price) {
            best = PricedOutcome {
                price,
                expected_buyers: buyers,
                revenue: price * buyers,
                surplus,
                utility,
            };
        }
        k = end;
    }
    best
}

/// The paper's discretization: `T` equi-spaced levels over `(0, max α·w]`,
/// consumers bucketed once, every level scored against bucket aggregates.
/// Exact for step adoption (within the grid); for soft sigmoids each bucket
/// is represented by its mean valuation.
fn optimize_grid(values: &[f64], ctx: &PricingCtx) -> PricedOutcome {
    let t = ctx.levels.max(1);
    let m = values.len() as f64;
    let alpha = ctx.adoption.alpha;
    let vmax = values.iter().fold(0.0f64, |m, &w| m.max(alpha * w));
    if vmax <= 0.0 {
        // Every α·w ≤ 0 (e.g. a non-positive adoption bias constructed
        // directly on the ctx): nothing can be charged.
        return PricedOutcome::zero();
    }
    let step = vmax / t as f64;
    if step <= 0.0 || !step.is_finite() {
        // Degenerate grid: `vmax / t` underflowed to zero (subnormal
        // valuations with a large T) or overflowed. Without this guard the
        // `v / step` bucket indices below would be NaN/∞ and the outcome
        // garbage; the honest answer for a market whose valuations cannot
        // even span one grid step is the zero outcome.
        return PricedOutcome::zero();
    }
    // Bucket b (1-based) holds consumers with valuation in [p_b, p_{b+1});
    // p_b = b*step. Bucket 0 holds valuations below p_1.
    let mut count = vec![0.0f64; t + 1];
    let mut sum_val = vec![0.0f64; t + 1]; // Σ α·w per bucket
    let mut sum_raw = vec![0.0f64; t + 1]; // Σ w per bucket (for surplus)
    for &w in values {
        let v = alpha * w;
        let b = ((v / step).floor() as usize).min(t);
        count[b] += 1.0;
        sum_val[b] += v;
        sum_raw[b] += w;
    }
    let mut best = PricedOutcome::zero();
    if ctx.adoption.is_step() {
        // Suffix aggregates: buyers at level b = everyone in buckets >= b.
        let (mut buyers, mut raw) = (0.0, 0.0);
        let mut suffix: Vec<(f64, f64)> = vec![(0.0, 0.0); t + 2];
        for b in (1..=t).rev() {
            buyers += count[b];
            raw += sum_raw[b];
            suffix[b] = (buyers, raw);
        }
        for (b, &(buyers, raw)) in suffix.iter().enumerate().take(t + 1).skip(1) {
            let price = b as f64 * step;
            if buyers == 0.0 {
                continue;
            }
            let surplus = raw - price * buyers;
            let utility = ctx.utility(price, buyers, surplus, m);
            if utility > best.utility || (utility == best.utility && price < best.price) {
                best = PricedOutcome {
                    price,
                    expected_buyers: buyers,
                    revenue: price * buyers,
                    surplus,
                    utility,
                };
            }
        }
    } else {
        // O(T²) sigmoid scoring: every level scans every bucket. Levels
        // are scored independently (parallel over candidate price levels)
        // and the argmax scan below runs in level order, so the winner and
        // its tie-breaks are identical at any thread count.
        let score_level = |b: usize| {
            let price = b as f64 * step;
            let mut buyers = 0.0;
            let mut surplus = 0.0;
            for c in 0..=t {
                if count[c] == 0.0 {
                    continue;
                }
                let mean_val = sum_val[c] / count[c];
                let mean_raw = sum_raw[c] / count[c];
                let p_adopt =
                    ctx.adoption.probability_of_margin(mean_val - price + ctx.adoption.epsilon);
                buyers += count[c] * p_adopt;
                surplus += count[c] * p_adopt * (mean_raw - price);
            }
            let utility = ctx.utility(price, buyers, surplus, m);
            PricedOutcome {
                price,
                expected_buyers: buyers,
                revenue: price * buyers,
                surplus,
                utility,
            }
        };
        best = if ctx.threads > 1 && t >= PAR_LEVELS_MIN {
            fold_best(best, par_index_map(ctx.threads, t, |k| score_level(k + 1)).into_iter())
        } else {
            // Sequential fast path: stream, no per-call allocation.
            fold_best(best, (1..=t).map(score_level))
        };
    }
    best
}

/// Price search over an explicit, arbitrary price list (sorted or not).
/// Scores every listed price exactly (no bucketing); `O(M · |list|)`.
/// Thin wrapper over [`optimize_with`] with [`Candidates::List`].
pub fn optimize_with_price_list(values: &[f64], ctx: &PricingCtx, prices: &[f64]) -> PricedOutcome {
    optimize_with(values, ctx, ctx.objective, Candidates::List(prices))
}

/// List-candidate scoring; `positive` is already filtered to finite
/// positive WTPs by [`optimize_with`].
fn optimize_price_list(positive: &[f64], ctx: &PricingCtx, prices: &[f64]) -> PricedOutcome {
    if prices.is_empty() {
        return PricedOutcome::zero();
    }
    let m = positive.len() as f64;
    // Each listed price is scored independently; the argmax scan keeps the
    // list order, so parallelism cannot change the winner or tie-breaks.
    let score_price = |price: f64| {
        assert!(price.is_finite() && price > 0.0, "price list entries must be positive");
        let mut buyers = 0.0;
        let mut surplus = 0.0;
        for &w in positive {
            let p_adopt = ctx.adoption.probability(w, price);
            buyers += p_adopt;
            surplus += p_adopt * (w - price);
        }
        let utility = ctx.utility(price, buyers, surplus, m);
        PricedOutcome { price, expected_buyers: buyers, revenue: price * buyers, surplus, utility }
    };
    if ctx.threads > 1 && prices.len() >= PAR_LEVELS_MIN {
        let scored = par_index_map(ctx.threads, prices.len(), |k| score_price(prices[k]));
        fold_best(PricedOutcome::zero(), scored.into_iter())
    } else {
        // Sequential fast path: stream, no per-call allocation.
        fold_best(PricedOutcome::zero(), prices.iter().map(|&p| score_price(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn step_ctx() -> PricingCtx {
        PricingCtx::from_params(&Params::default())
    }

    #[test]
    fn table1_item_a() {
        // WTPs {12, 8, 5}: optimal price $8 → two buyers, revenue $16,
        // u1's surplus $4 (Section 1's worked example).
        let out = optimize(&[12.0, 8.0, 5.0], &step_ctx());
        assert!((out.price - 8.0).abs() < 1e-9);
        assert_eq!(out.expected_buyers, 2.0);
        assert!((out.revenue - 16.0).abs() < 1e-9);
        assert!((out.surplus - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table1_item_b() {
        // WTPs {4, 2, 11}: optimal price $11 → one buyer, revenue $11.
        let out = optimize(&[4.0, 2.0, 11.0], &step_ctx());
        assert!((out.price - 11.0).abs() < 1e-9);
        assert!((out.revenue - 11.0).abs() < 1e-9);
    }

    #[test]
    fn table1_pure_bundle() {
        // Bundle WTPs {15.2, 9.5, 15.2}: optimal price 15.2, revenue 30.4.
        let out = optimize(&[15.2, 9.5, 15.2], &step_ctx());
        assert!((out.price - 15.2).abs() < 1e-9);
        assert!((out.revenue - 30.4).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_values() {
        assert_eq!(optimize(&[], &step_ctx()), PricedOutcome::zero());
        assert_eq!(optimize(&[0.0, 0.0], &step_ctx()), PricedOutcome::zero());
    }

    #[test]
    fn grid_approximates_exact() {
        let values: Vec<f64> = (1..=200).map(|k| (k % 37) as f64 + 1.0).collect();
        let exact = optimize(&values, &step_ctx());
        let grid = optimize(&values, &PricingCtx { mode: PriceMode::Grid, ..step_ctx() });
        assert!(grid.revenue <= exact.revenue + 1e-9);
        assert!(
            grid.revenue >= 0.95 * exact.revenue,
            "grid {} vs exact {}",
            grid.revenue,
            exact.revenue
        );
    }

    #[test]
    fn grid_level_count_one_charges_max() {
        let ctx = PricingCtx { mode: PriceMode::Grid, levels: 1, ..step_ctx() };
        let out = optimize(&[10.0, 6.0], &ctx);
        assert!((out.price - 10.0).abs() < 1e-9);
        assert_eq!(out.expected_buyers, 1.0);
    }

    #[test]
    fn adoption_bias_scales_prices() {
        // α = 1.25 lets the seller charge 1.25× each valuation.
        let mut ctx = step_ctx();
        ctx.adoption.alpha = 1.25;
        let out = optimize(&[8.0, 8.0], &ctx);
        assert!((out.price - 10.0).abs() < 1e-9);
        assert_eq!(out.expected_buyers, 2.0);
    }

    #[test]
    fn sigmoid_prices_below_step() {
        // Soft adoption forces lower prices / revenue than the step rule.
        let values = vec![10.0; 50];
        let mut soft_ctx = step_ctx();
        soft_ctx.adoption.gamma = 0.5;
        soft_ctx.mode = PriceMode::Grid;
        let soft = optimize(&values, &soft_ctx);
        let hard = optimize(&values, &step_ctx());
        assert!(soft.revenue < hard.revenue);
        assert!(soft.revenue > 0.0);
    }

    #[test]
    fn surplus_objective_lowers_price() {
        // α_obj = 0 maximizes surplus alone → charge the lowest level.
        let ctx = PricingCtx { objective_alpha: 0.0, ..step_ctx() };
        let out = optimize(&[10.0, 6.0, 3.0], &ctx);
        assert!(out.price <= 3.0 + 1e-9);
        assert!(out.surplus >= 10.0 + 6.0 + 3.0 - 3.0 * out.price - 1e-9);
    }

    #[test]
    fn unit_cost_raises_price() {
        let cheap = optimize(&[10.0, 7.0, 4.0, 2.0], &step_ctx());
        let costly = optimize(&[10.0, 7.0, 4.0, 2.0], &PricingCtx { unit_cost: 6.0, ..step_ctx() });
        assert!(costly.price >= cheap.price);
        // Profit accounting: utility = (p - c) * buyers.
        assert!((costly.utility - (costly.price - 6.0) * costly.expected_buyers).abs() < 1e-9);
    }

    #[test]
    fn price_list_mode() {
        let ctx = step_ctx();
        let out = optimize_with_price_list(&[12.0, 8.0, 5.0], &ctx, &[5.0, 9.99, 11.99]);
        // At 5.00: 3 buyers → 15; at 9.99: 1 buyer → 9.99; at 11.99: 11.99.
        assert!((out.price - 5.0).abs() < 1e-12);
        assert!((out.revenue - 15.0).abs() < 1e-9);
        assert_eq!(out.expected_buyers, 3.0);
    }

    #[test]
    fn grid_sigmoid_bucketing_tracks_exact_sigmoid() {
        // The grid mode represents each bucket by its mean valuation; the
        // error vs scoring every consumer exactly must stay small.
        let values: Vec<f64> = (0..500).map(|k| 1.0 + (k % 83) as f64 * 0.37).collect();
        let mut ctx = step_ctx();
        ctx.adoption.gamma = 1.5;
        ctx.mode = PriceMode::Grid;
        let bucketed = optimize(&values, &ctx);
        // Exact reference: score the same price via the full per-consumer
        // sum at the chosen price.
        let exact_buyers: f64 =
            values.iter().map(|&w| ctx.adoption.probability(w, bucketed.price)).sum();
        let exact_rev = bucketed.price * exact_buyers;
        assert!(
            (bucketed.revenue - exact_rev).abs() < 0.01 * exact_rev,
            "bucketed {} vs exact {}",
            bucketed.revenue,
            exact_rev
        );
    }

    #[test]
    fn exact_step_handles_many_ties() {
        // All consumers share one valuation: charge it, sell to everyone.
        let values = vec![7.5; 400];
        let out = optimize(&values, &step_ctx());
        assert!((out.price - 7.5).abs() < 1e-12);
        assert_eq!(out.expected_buyers, 400.0);
        assert!((out.revenue - 3000.0).abs() < 1e-9);
        assert_eq!(out.surplus, 0.0);
    }

    #[test]
    fn parallel_price_search_is_bit_identical() {
        // Sigmoid grid with T ≥ PAR_LEVELS_MIN exercises the parallel
        // level scoring; the winner must match 1-thread bit for bit.
        let values: Vec<f64> = (0..700).map(|k| 1.0 + (k % 97) as f64 * 0.41).collect();
        let mut base = step_ctx();
        base.adoption.gamma = 1.5;
        base.mode = PriceMode::Grid;
        base.levels = 256;
        let seq = optimize(&values, &PricingCtx { threads: 1, ..base });
        for threads in [2, 4, 7] {
            let par = optimize(&values, &PricingCtx { threads, ..base });
            assert_eq!(par.price.to_bits(), seq.price.to_bits(), "threads={threads}");
            assert_eq!(par.revenue.to_bits(), seq.revenue.to_bits(), "threads={threads}");
            assert_eq!(par.surplus.to_bits(), seq.surplus.to_bits(), "threads={threads}");
        }
        // Same for the explicit price-list search.
        let prices: Vec<f64> = (1..=300).map(|k| k as f64 * 0.13).collect();
        let seq = optimize_with_price_list(&values, &PricingCtx { threads: 1, ..base }, &prices);
        for threads in [2, 4, 7] {
            let par = optimize_with_price_list(&values, &PricingCtx { threads, ..base }, &prices);
            assert_eq!(par.price.to_bits(), seq.price.to_bits(), "threads={threads}");
            assert_eq!(par.revenue.to_bits(), seq.revenue.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn nan_wtp_entries_are_ignored_not_fatal() {
        // Regression: `optimize_exact_step` used to sort with
        // `partial_cmp(..).unwrap()`, so a single NaN reaching the pricing
        // call panicked the whole solve. NaNs (and infinities) are now
        // filtered at the entry point and the sort itself is total.
        let out = optimize(&[f64::NAN, 5.0, 3.0], &step_ctx());
        assert!((out.price - 3.0).abs() < 1e-12);
        assert!((out.revenue - 6.0).abs() < 1e-12);
        assert_eq!(out.expected_buyers, 2.0);
        // All-NaN degenerates to the zero outcome, both modes.
        for mode in [PriceMode::Exact, PriceMode::Grid] {
            let out = optimize(&[f64::NAN, f64::NAN], &PricingCtx { mode, ..step_ctx() });
            assert_eq!(out, PricedOutcome::zero());
        }
        // Infinite WTPs must not produce an infinite price either.
        let out = optimize(&[f64::INFINITY, 4.0], &step_ctx());
        assert!((out.price - 4.0).abs() < 1e-12);
    }

    #[test]
    fn grid_matches_exact_on_all_nonpositive_market() {
        // Regression: with every α·w ≤ 0 the grid's `step = vmax / t` was
        // 0 and `v / step` produced NaN bucket indices. Both modes must
        // agree on the zero outcome instead.
        let values = [0.0, -2.0, -7.5];
        let exact = optimize(&values, &step_ctx());
        let grid = optimize(&values, &PricingCtx { mode: PriceMode::Grid, ..step_ctx() });
        assert_eq!(exact, PricedOutcome::zero());
        assert_eq!(grid, exact);
        // Same degeneracy via a non-positive adoption bias constructed
        // directly on the ctx (bypassing Params::validate).
        let mut anti = step_ctx();
        anti.adoption.alpha = -1.0;
        anti.mode = PriceMode::Grid;
        assert_eq!(optimize(&[3.0, 9.0], &anti), PricedOutcome::zero());
    }

    #[test]
    fn grid_subnormal_underflow_returns_zero_outcome() {
        // `vmax / t` can underflow to 0.0 for subnormal valuations and a
        // large T; the guard must return the zero outcome, not NaN fields.
        let ctx = PricingCtx { mode: PriceMode::Grid, levels: 1_000_000, ..step_ctx() };
        let out = optimize(&[1e-320], &ctx);
        assert_eq!(out, PricedOutcome::zero());
        assert!(out.price.is_finite() && out.revenue.is_finite());
    }

    #[test]
    fn cvar_objective_charges_defensively() {
        // One whale at 100, nine users at 5. Mean pricing charges the
        // whale; CVaR 0.5 scores revenue by the worst half of users, so
        // it must serve the crowd at 5 instead.
        let mut values = vec![5.0; 9];
        values.push(100.0);
        let mean = optimize(&values, &step_ctx());
        assert!((mean.price - 100.0).abs() < 1e-9);
        let cvar = optimize_with(&values, &step_ctx(), Objective::Cvar(0.5), Candidates::Auto);
        assert!((cvar.price - 5.0).abs() < 1e-9, "cvar price {}", cvar.price);
        // 10 buyers at 5, lowest 5 units all paid → base 5/0.5... the
        // utility reflects the robust statistic, revenue the mean one.
        assert!((cvar.revenue - 50.0).abs() < 1e-9);
        assert!((cvar.utility - 50.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_objective_serves_the_quantile() {
        // Quantile 0.5 pays only when more than half the interested users
        // buy: price must drop to the median valuation or below.
        let values = [10.0, 8.0, 6.0, 4.0, 2.0];
        let out = optimize_with(&values, &step_ctx(), Objective::Quantile(0.5), Candidates::Auto);
        // rank-3 user (of 5) must buy: price ≤ 6, and 6 maximizes m·p.
        assert!((out.price - 6.0).abs() < 1e-9, "price {}", out.price);
        assert_eq!(out.expected_buyers, 3.0);
        assert!((out.utility - 5.0 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn cvar_at_one_is_mean_bit_for_bit() {
        let values: Vec<f64> = (0..300).map(|k| 0.5 + (k % 61) as f64 * 0.73).collect();
        for mode in [PriceMode::Exact, PriceMode::Grid] {
            for gamma in [1e6, 1.5] {
                let mut ctx = step_ctx();
                ctx.mode = mode;
                ctx.adoption.gamma = gamma;
                let mean = optimize_with(&values, &ctx, Objective::Mean, Candidates::Auto);
                let cvar = optimize_with(&values, &ctx, Objective::Cvar(1.0), Candidates::Auto);
                assert_eq!(mean.price.to_bits(), cvar.price.to_bits());
                assert_eq!(mean.utility.to_bits(), cvar.utility.to_bits());
                assert_eq!(mean.revenue.to_bits(), cvar.revenue.to_bits());
            }
        }
        let prices: Vec<f64> = (1..=40).map(|k| k as f64 * 0.9).collect();
        let ctx = step_ctx();
        let mean = optimize_with(&values, &ctx, Objective::Mean, Candidates::List(&prices));
        let cvar = optimize_with(&values, &ctx, Objective::Cvar(1.0), Candidates::List(&prices));
        assert_eq!(mean, cvar);
    }

    #[test]
    fn robust_parallel_search_is_bit_identical() {
        // Robust objectives through the parallel sigmoid grid and price
        // list: winner must match single-threaded bit for bit.
        let values: Vec<f64> = (0..650).map(|k| 1.0 + (k % 89) as f64 * 0.43).collect();
        let mut base = step_ctx();
        base.adoption.gamma = 1.5;
        base.mode = PriceMode::Grid;
        base.levels = 256;
        for obj in [Objective::Cvar(0.7), Objective::Quantile(0.4)] {
            let seq =
                optimize_with(&values, &PricingCtx { threads: 1, ..base }, obj, Candidates::Auto);
            for threads in [2, 8] {
                let par =
                    optimize_with(&values, &PricingCtx { threads, ..base }, obj, Candidates::Auto);
                assert_eq!(par.price.to_bits(), seq.price.to_bits(), "{obj:?} threads={threads}");
                assert_eq!(
                    par.utility.to_bits(),
                    seq.utility.to_bits(),
                    "{obj:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn list_path_ignores_nonfinite_values_too() {
        // The unified filter drops non-finite WTPs in list mode as well
        // (the pre-unification list path admitted +∞ into the sums).
        let ctx = step_ctx();
        let out = optimize_with_price_list(&[f64::INFINITY, f64::NAN, 6.0], &ctx, &[5.0]);
        assert_eq!(out.expected_buyers, 1.0);
        assert!((out.revenue - 5.0).abs() < 1e-12);
    }

    #[test]
    fn revenue_never_exceeds_total_wtp() {
        let values = vec![3.0, 9.0, 1.5, 7.2, 8.8];
        let total: f64 = values.iter().sum();
        for mode in [PriceMode::Exact, PriceMode::Grid] {
            let out = optimize(&values, &PricingCtx { mode, ..step_ctx() });
            assert!(out.revenue <= total + 1e-9);
        }
    }
}
