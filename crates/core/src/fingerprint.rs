//! Stable 64-bit content fingerprints (`DESIGN.md` §8).
//!
//! The sweep engine (`revmax-engine`) keys its solve cache on a content
//! fingerprint of everything a solve depends on: the WTP entries (the CSR
//! arena slice the market actually sees, i.e. including any view
//! restriction), the resolved model [`crate::params::Params`], and the
//! price-search mode. Two markets with the same fingerprint produce
//! bit-identical solves, so a cached outcome can stand in for a fresh one.
//!
//! The hash is a plain FNV-1a over a canonical byte stream with a
//! splitmix64 finalizer for avalanche — deliberately dependency-free
//! (vendor policy) and **stable across runs and platforms**: it hashes
//! content (ids, value bits, dimensions), never addresses, capacities, or
//! iteration order of unordered containers. It is not cryptographic; a
//! 64-bit digest is collision-safe for cache sizes in the millions, not
//! against adversaries.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a/64 hasher with a strong finalizer.
///
/// All multi-byte writes are little-endian, and every variable-length
/// field should be preceded by its length (the callers in `wtp.rs` do
/// this) so that distinct streams cannot collide by concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprinter {
    state: u64,
}

impl Fingerprinter {
    /// Start a fingerprint for one domain; the `tag` separates domains
    /// (e.g. `"wtp"` vs `"params"`) so equal byte streams in different
    /// domains do not collide.
    pub fn new(tag: &str) -> Self {
        let mut fp = Fingerprinter { state: FNV_OFFSET };
        fp.write_bytes(tag.as_bytes());
        fp
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` (as `u64`, so 32- and 64-bit targets agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by its raw bit pattern. `-0.0` and `0.0` therefore
    /// fingerprint differently — callers that care must normalize; the
    /// WTP/params invariants (entries > 0, validated params) make the
    /// distinction unreachable in practice.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Final digest (splitmix64 finalizer over the FNV state).
    pub fn finish(&self) -> u64 {
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot fingerprint of a string (method names, labels).
pub fn fingerprint_str(s: &str) -> u64 {
    let mut fp = Fingerprinter::new("str");
    fp.write_str(s);
    fp.finish()
}

/// Order-dependent combination of two digests (e.g. market ⊕ method into a
/// solve-cache key). Not commutative: `combine(a, b) != combine(b, a)`.
pub fn combine(a: u64, b: u64) -> u64 {
    let mut fp = Fingerprinter::new("combine");
    fp.write_u64(a);
    fp.write_u64(b);
    fp.finish()
}

/// A two-part content identity for event-sourced markets
/// ([`crate::marketlog::MarketLog`], `DESIGN.md` §10): the digest of the
/// immutable base arena plus the digest of the **canonical net delta**
/// layered on top of it. Keeping the halves separate is what lets churn
/// tooling answer both questions a delta batch raises: "same base?"
/// (compaction epoch) and "same net changes?" (equivalent histories —
/// e.g. an upsert that is later deleted cancels out of the delta half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeltaFingerprint {
    /// Content digest of the base arena snapshot.
    pub base: u64,
    /// Digest of the canonical net overlay (empty overlay hashes the
    /// same for every log, whatever its base).
    pub delta: u64,
}

impl DeltaFingerprint {
    /// Collapse to a single order-dependent digest (`combine(base, delta)`)
    /// for use as a cache key.
    pub fn combined(&self) -> u64 {
        combine(self.base, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let mut a = Fingerprinter::new("t");
        a.write_u64(7);
        a.write_f64(1.25);
        let mut b = Fingerprinter::new("t");
        b.write_u64(7);
        b.write_f64(1.25);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tag_separates_domains() {
        let mut a = Fingerprinter::new("wtp");
        a.write_u64(1);
        let mut b = Fingerprinter::new("params");
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_changes_digest() {
        let mut a = Fingerprinter::new("t");
        a.write_f64(1.0);
        let mut b = Fingerprinter::new("t");
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn str_fingerprints_distinguish_methods() {
        assert_ne!(fingerprint_str("Pure Matching"), fingerprint_str("Mixed Matching"));
        assert_eq!(fingerprint_str("Components"), fingerprint_str("Components"));
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(3, 4), combine(3, 4));
    }

    #[test]
    fn delta_fingerprint_combines_both_halves() {
        let a = DeltaFingerprint { base: 1, delta: 2 };
        let b = DeltaFingerprint { base: 2, delta: 1 };
        assert_ne!(a.combined(), b.combined(), "halves are ordered");
        assert_eq!(a.combined(), combine(1, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefix_blocks_concatenation_collisions() {
        let mut a = Fingerprinter::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprinter::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
