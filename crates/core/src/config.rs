//! Bundle configurations: the output of every algorithm, plus evaluation.
//!
//! A configuration is a forest of [`OfferNode`]s. Under **pure bundling**
//! (Problem 1) the forest is flat: the roots partition the item set and only
//! roots are on sale. Under **mixed bundling** (Problem 2) every node of
//! every tree is on sale; children partition their parent (the subsumption
//! condition `b1∩b2≠∅ ⇒ b1⊆b2 ∨ b2⊆b1`), and consumers may upgrade from
//! held sub-offers to an ancestor bundle.

use crate::bundle::Bundle;
use crate::market::Market;
use crate::mixed;
use crate::objective::Objective;
use crate::trace::IterationTrace;
use rand::Rng;

/// The two bundling strategies of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Strict partition; only top-level bundles on sale.
    Pure,
    /// Subsumption family; bundles and their components both on sale.
    Mixed,
}

/// One sellable offer: a bundle at a price, with the offers it subsumes.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferNode {
    /// The items covered by this offer.
    pub bundle: Bundle,
    /// The (single, per §3.2 assumptions) price of this offer.
    pub price: f64,
    /// Subsumed offers (empty for components; populated under mixed
    /// bundling where replaced bundles stay on sale).
    pub children: Vec<OfferNode>,
}

impl OfferNode {
    /// A leaf offer.
    pub fn leaf(bundle: Bundle, price: f64) -> Self {
        OfferNode { bundle, price, children: Vec::new() }
    }

    /// Pre-order traversal over this offer and everything it subsumes.
    pub fn iter(&self) -> impl Iterator<Item = &OfferNode> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let node = stack.pop()?;
            stack.extend(node.children.iter());
            Some(node)
        })
    }

    /// Number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(OfferNode::node_count).sum::<usize>()
    }

    fn validate(&self, strategy: Strategy) {
        assert!(self.price.is_finite() && self.price >= 0.0, "offer price must be >= 0");
        if strategy == Strategy::Pure {
            assert!(self.children.is_empty(), "pure bundling offers cannot subsume others");
            return;
        }
        if self.children.is_empty() {
            return;
        }
        // Children must partition the parent.
        let mut covered: Vec<u32> = Vec::new();
        for c in &self.children {
            assert!(
                c.bundle.is_subset_of(&self.bundle),
                "child {} not within parent {}",
                c.bundle,
                self.bundle
            );
            covered.extend_from_slice(c.bundle.items());
            c.validate(strategy);
        }
        covered.sort_unstable();
        assert!(covered.windows(2).all(|w| w[0] != w[1]), "children of {} overlap", self.bundle);
        assert_eq!(covered, self.bundle.items(), "children of {} do not cover it", self.bundle);
    }
}

/// A complete bundle configuration `X_I` (plus, under mixed bundling, the
/// subsumed offers `X'_I` as tree children).
#[derive(Debug, Clone, PartialEq)]
pub struct BundleConfig {
    pub strategy: Strategy,
    /// Top-level offers; their bundles partition the item set.
    pub roots: Vec<OfferNode>,
}

impl BundleConfig {
    /// Validate the conditions of Problem 1 / Problem 2 against a market of
    /// `n_items` items: roots partition `I`; (mixed) children partition
    /// parents; prices are sane.
    pub fn validate(&self, n_items: usize) {
        let mut covered: Vec<u32> = Vec::new();
        for r in &self.roots {
            covered.extend_from_slice(r.bundle.items());
            r.validate(self.strategy);
        }
        covered.sort_unstable();
        assert!(covered.windows(2).all(|w| w[0] != w[1]), "top-level bundles overlap");
        let expect: Vec<u32> = (0..n_items as u32).collect();
        assert_eq!(covered, expect, "configuration does not cover all items exactly once");
    }

    /// All offers on sale (roots only for pure; every node for mixed).
    pub fn offers(&self) -> Vec<&OfferNode> {
        match self.strategy {
            Strategy::Pure => self.roots.iter().collect(),
            Strategy::Mixed => self.roots.iter().flat_map(|r| r.iter()).collect(),
        }
    }

    /// Number of top-level bundles.
    pub fn n_bundles(&self) -> usize {
        self.roots.len()
    }

    /// Size of the largest top-level bundle.
    pub fn max_bundle_size(&self) -> usize {
        self.roots.iter().map(|r| r.bundle.len()).max().unwrap_or(0)
    }

    /// Expected total revenue at the stored prices — the mean-objective
    /// score; delegates to [`BundleConfig::revenue`] with
    /// [`Objective::Mean`].
    ///
    /// Exact for pure bundling (any adoption model) and for mixed bundling
    /// under step adoption. For mixed bundling with a soft sigmoid the
    /// consumers' sequential upgrade decisions make the exact expectation
    /// exponential — use [`BundleConfig::sampled_revenue`] there (as the
    /// paper does: "we average revenues across ten runs").
    pub fn expected_revenue(&self, market: &Market) -> f64 {
        self.revenue(market, Objective::Mean)
    }

    /// Objective-scored total revenue of this configuration: the chosen
    /// statistic of the per-user revenue distribution, summed over roots
    /// in root order (`DESIGN.md` §13).
    ///
    /// * [`Objective::Mean`] (and its bitwise twin `Cvar(1.0)`) runs the
    ///   historical mean-revenue fold — bit-identical to the pre-objective
    ///   `expected_revenue`.
    /// * Robust objectives score each root against its per-user payment
    ///   distribution: pure roots via the pooled two-point closed form
    ///   ([`Objective::base_buyers`]), mixed roots via the empirical
    ///   per-user payments of a deterministic tree evaluation
    ///   ([`crate::mixed::evaluate_tree_states`] +
    ///   [`Objective::score_payments`]). In both cases the interested-user
    ///   count `m` is the number of users with a positive WTP sum on the
    ///   root's bundle.
    pub fn revenue(&self, market: &Market, objective: Objective) -> f64 {
        // Cvar(1.0) must coincide with Mean *bit for bit*; dispatching to
        // the literal mean fold (rather than the empirical sorted path,
        // whose summation order differs) makes that an identity.
        let robust = !matches!(objective, Objective::Mean | Objective::Cvar(1.0));
        let mut scratch = market.scratch();
        if !robust {
            return self
                .roots
                .iter()
                .map(|r| self.root_revenue(market, r, &mut scratch))
                .fold(0.0, |a, r| a + r);
        }
        self.roots
            .iter()
            .map(|r| self.root_revenue_robust(market, r, objective, &mut scratch))
            .fold(0.0, |a, r| a + r)
    }

    /// Expected revenue of one root subtree — the unit the incremental
    /// re-scorer ([`BundleConfig::rescore_touched`]) recomputes.
    ///
    /// Explicit `fold(0.0, ..)` rather than `Iterator::sum`: std's f64
    /// sum starts from -0.0, so an *empty* sum (an offer nobody is
    /// interested in) would evaluate to -0.0 and `price * -0.0` would
    /// leak a negative-zero revenue — observable once the serving
    /// layer compares per-consumer evaluations bit for bit. For
    /// non-empty sums the two folds are bit-identical.
    fn root_revenue(
        &self,
        market: &Market,
        root: &OfferNode,
        scratch: &mut crate::market::Scratch,
    ) -> f64 {
        match self.strategy {
            Strategy::Pure => {
                let wtps = market.bundle_wtps(root.bundle.items(), scratch);
                let adoption = market.pricing_ctx().adoption;
                let buyers: f64 = wtps
                    .iter()
                    .map(|&w| adoption.probability(w, root.price))
                    .fold(0.0, |a, p| a + p);
                root.price * buyers
            }
            Strategy::Mixed => mixed::evaluate_tree_deterministic(market, root, scratch),
        }
    }

    /// Robust-objective score of one root subtree (see
    /// [`BundleConfig::revenue`]); `objective` is `Quantile` or
    /// `Cvar(q<1)` here.
    fn root_revenue_robust(
        &self,
        market: &Market,
        root: &OfferNode,
        objective: Objective,
        scratch: &mut crate::market::Scratch,
    ) -> f64 {
        match self.strategy {
            Strategy::Pure => {
                let wtps = market.bundle_wtps(root.bundle.items(), scratch);
                let m = wtps.len() as f64;
                let adoption = market.pricing_ctx().adoption;
                let buyers: f64 = wtps
                    .iter()
                    .map(|&w| adoption.probability(w, root.price))
                    .fold(0.0, |a, p| a + p);
                root.price * objective.base_buyers(buyers, m)
            }
            Strategy::Mixed => {
                let states = mixed::evaluate_tree_states(market, root, scratch);
                let paid: Vec<f64> = states.iter().map(|s| s.paid).collect();
                // Interested users of this tree: positive WTP sum on the
                // root's full bundle (every payer necessarily is one).
                let m = market.bundle_user_sums(root.bundle.items(), scratch).len().max(paid.len());
                objective.score_payments(&paid, m)
            }
        }
    }

    /// Per-root revenue decomposition of [`BundleConfig::expected_revenue`]
    /// — the memo [`BundleConfig::rescore_touched`] patches after churn.
    pub fn revenue_breakdown(&self, market: &Market) -> RevenueBreakdown {
        let mut scratch = market.scratch();
        let per_root: Vec<f64> =
            self.roots.iter().map(|r| self.root_revenue(market, r, &mut scratch)).collect();
        let total = per_root.iter().fold(0.0, |a, &r| a + r);
        RevenueBreakdown { per_root, total, n_users: market.n_users() }
    }

    /// Incremental re-scoring after churn (`DESIGN.md` §10): recompute
    /// only roots whose bundle contains a touched item (subsumption means
    /// the root's item set covers its whole subtree); untouched roots keep
    /// their memoized revenue. The total is re-folded in root order from
    /// 0.0, so the result is **bit-identical** to a fresh
    /// [`BundleConfig::revenue_breakdown`] on the same market.
    ///
    /// `touched_items` must be sorted ascending
    /// ([`crate::marketlog::MarketLog::touched_items`] is). A change in
    /// user count recomputes every root: under sigmoid adoption even a
    /// ratings-free consumer shifts each offer's expected buyers.
    pub fn rescore_touched(
        &self,
        market: &Market,
        prev: &RevenueBreakdown,
        touched_items: &[u32],
    ) -> RevenueBreakdown {
        assert_eq!(prev.per_root.len(), self.roots.len(), "memo shape mismatch");
        debug_assert!(touched_items.windows(2).all(|w| w[0] < w[1]), "touched items unsorted");
        if market.n_users() != prev.n_users {
            return self.revenue_breakdown(market);
        }
        let mut scratch = market.scratch();
        let per_root: Vec<f64> = self
            .roots
            .iter()
            .zip(&prev.per_root)
            .map(|(r, &memo)| {
                let touched =
                    r.bundle.items().iter().any(|i| touched_items.binary_search(i).is_ok());
                if touched {
                    self.root_revenue(market, r, &mut scratch)
                } else {
                    memo
                }
            })
            .collect();
        let total = per_root.iter().fold(0.0, |a, &r| a + r);
        RevenueBreakdown { per_root, total, n_users: market.n_users() }
    }

    /// Expected revenue under an explicit consumer-choice policy (step
    /// adoption). [`crate::policy::ChoicePolicy::IncrementalUpgrade`]
    /// reproduces [`BundleConfig::expected_revenue`]; the other policies
    /// exist to compare the paper's §1 vs §4.2 readings of mixed bundling.
    pub fn expected_revenue_with_policy(
        &self,
        market: &Market,
        policy: crate::policy::ChoicePolicy,
    ) -> f64 {
        match self.strategy {
            Strategy::Pure => self.expected_revenue(market),
            Strategy::Mixed => {
                let mut scratch = market.scratch();
                self.roots
                    .iter()
                    .map(|r| crate::policy::evaluate_tree(market, r, &mut scratch, policy))
                    .fold(0.0, |a, x| a + x)
            }
        }
    }

    /// Monte-Carlo revenue: draw every adoption decision, sum the payments,
    /// average over `runs`. Matches [`BundleConfig::expected_revenue`]
    /// exactly in the step regime.
    pub fn sampled_revenue<R: Rng>(&self, market: &Market, rng: &mut R, runs: usize) -> f64 {
        assert!(runs >= 1, "at least one run required");
        let mut scratch = market.scratch();
        let mut total = 0.0;
        for _ in 0..runs {
            match self.strategy {
                Strategy::Pure => {
                    let adoption = market.pricing_ctx().adoption;
                    for r in &self.roots {
                        let wtps = market.bundle_wtps(r.bundle.items(), &mut scratch);
                        for &w in wtps.iter() {
                            if adoption.sample(rng, w, r.price) {
                                total += r.price;
                            }
                        }
                    }
                }
                Strategy::Mixed => {
                    for r in &self.roots {
                        total += mixed::evaluate_tree_sampled(market, r, &mut scratch, rng);
                    }
                }
            }
        }
        total / runs as f64
    }
}

impl std::fmt::Display for BundleConfig {
    /// Menu rendering: one line per offer, children indented, large item
    /// lists abbreviated.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn brief(b: &crate::bundle::Bundle) -> String {
            if b.len() <= 8 {
                b.to_string()
            } else {
                let head: Vec<String> = b.items().iter().take(6).map(u32::to_string).collect();
                format!("{{{},... +{} more}}", head.join(","), b.len() - 6)
            }
        }
        fn rec(
            f: &mut std::fmt::Formatter<'_>,
            node: &OfferNode,
            depth: usize,
        ) -> std::fmt::Result {
            writeln!(
                f,
                "{:indent$}{} @ {:.2}",
                "",
                brief(&node.bundle),
                node.price,
                indent = depth * 2
            )?;
            for c in &node.children {
                rec(f, c, depth + 1)?;
            }
            Ok(())
        }
        writeln!(
            f,
            "{} bundling, {} top-level offers:",
            match self.strategy {
                Strategy::Pure => "pure",
                Strategy::Mixed => "mixed",
            },
            self.roots.len()
        )?;
        for r in &self.roots {
            rec(f, r, 1)?;
        }
        Ok(())
    }
}

/// Per-root revenue memo of one configuration evaluation
/// ([`BundleConfig::revenue_breakdown`]): what the incremental re-scorer
/// keeps between churn batches.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueBreakdown {
    /// Expected revenue of each root subtree, in root order.
    pub per_root: Vec<f64>,
    /// Σ `per_root`, folded from 0.0 in root order — bit-identical to
    /// [`BundleConfig::expected_revenue`] on the same market.
    pub total: f64,
    /// Consumer count the memo was computed against (a grown market
    /// invalidates every root; see [`BundleConfig::rescore_touched`]).
    pub n_users: usize,
}

/// The result of running a configuration algorithm on a market.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Algorithm name (paper nomenclature, e.g. "Mixed Matching").
    pub algorithm: &'static str,
    /// The configuration produced.
    pub config: BundleConfig,
    /// Expected revenue of `config`.
    pub revenue: f64,
    /// Expected revenue of the `Components` baseline on the same market.
    pub components_revenue: f64,
    /// Revenue coverage (revenue / total WTP).
    pub coverage: f64,
    /// Revenue gain over components.
    pub gain: f64,
    /// Per-iteration trace (empty for single-shot algorithms).
    pub trace: IterationTrace,
}

impl Outcome {
    /// Total expected revenue.
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// Assemble an outcome, computing metrics from the market.
    pub fn assemble(
        algorithm: &'static str,
        config: BundleConfig,
        revenue: f64,
        components_revenue: f64,
        market: &Market,
        trace: IterationTrace,
    ) -> Self {
        Outcome {
            algorithm,
            config,
            revenue,
            components_revenue,
            coverage: crate::metrics::revenue_coverage(revenue, market.total_wtp()),
            gain: crate::metrics::revenue_gain(revenue, components_revenue),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    fn market() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    fn pure_components() -> BundleConfig {
        BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        }
    }

    #[test]
    fn validates_partition() {
        pure_components().validate(2);
    }

    #[test]
    #[should_panic(expected = "cover all items")]
    fn rejects_missing_item() {
        let c = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![OfferNode::leaf(Bundle::single(0), 8.0)],
        };
        c.validate(2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlap() {
        let c = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![
                OfferNode::leaf(Bundle::new(vec![0, 1]), 15.2),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        };
        c.validate(2);
    }

    #[test]
    #[should_panic(expected = "cannot subsume")]
    fn pure_rejects_children() {
        let c = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price: 15.2,
                children: vec![OfferNode::leaf(Bundle::single(0), 8.0)],
            }],
        };
        c.validate(2);
    }

    #[test]
    fn expected_revenue_components() {
        // Components: $16 from A + $11 from B = $27 (Table 1).
        let m = market();
        let r = pure_components().expected_revenue(&m);
        assert!((r - 27.0).abs() < 1e-9);
    }

    #[test]
    fn expected_revenue_pure_bundle() {
        // Pure bundling at $15.20 → $30.40 (Table 1).
        let m = market();
        let c = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![OfferNode::leaf(Bundle::new(vec![0, 1]), 15.2)],
        };
        c.validate(2);
        assert!((c.expected_revenue(&m) - 30.4).abs() < 1e-9);
    }

    #[test]
    fn sampled_equals_expected_in_step_regime() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let m = market();
        let c = pure_components();
        let mut rng = StdRng::seed_from_u64(5);
        let s = c.sampled_revenue(&m, &mut rng, 3);
        assert!((s - c.expected_revenue(&m)).abs() < 1e-9);
    }

    #[test]
    fn uninterested_market_evaluates_to_positive_zero() {
        // Regression: `Iterator::sum` for f64 folds from -0.0, so a menu
        // nobody is interested in evaluated to -0.0 (and so did every
        // uninterested consumer's single-user-view evaluation) — a sign
        // wart the serving layer's bitwise parity checks exposed.
        let m = Market::new(WtpMatrix::from_rows(vec![vec![0.0], vec![0.0]]), Params::default());
        for strategy in [Strategy::Pure, Strategy::Mixed] {
            let c = BundleConfig { strategy, roots: vec![OfferNode::leaf(Bundle::single(0), 9.0)] };
            let r = c.expected_revenue(&m);
            assert_eq!(r.to_bits(), 0.0f64.to_bits(), "{strategy:?} yielded {r:?} (-0.0 wart)");
        }
    }

    #[test]
    fn rescore_touched_is_bit_identical_to_full_breakdown() {
        use crate::marketlog::{Event, MarketLog};
        let m = market();
        let c = pure_components();
        let memo = c.revenue_breakdown(&m);
        assert_eq!(memo.total.to_bits(), c.expected_revenue(&m).to_bits());
        // Churn item 0 only: root {1} keeps its memo verbatim, and the
        // patched breakdown still matches a fresh one bit for bit.
        let mut log = MarketLog::new(m);
        log.apply(Event::UpsertWtp { user: 1, item: 0, wtp: 9.0 }).unwrap();
        let churned = log.snapshot();
        let inc = c.rescore_touched(&churned, &memo, &log.touched_items());
        let full = c.revenue_breakdown(&churned);
        assert_eq!(inc, full);
        assert_eq!(inc.per_root[1].to_bits(), memo.per_root[1].to_bits());

        // Growing the user base recomputes every root.
        log.apply(Event::AddUser).unwrap();
        let grown = log.snapshot();
        let inc = c.rescore_touched(&grown, &memo, &log.touched_items());
        assert_eq!(inc, c.revenue_breakdown(&grown));
    }

    #[test]
    fn objective_scored_revenue_pure() {
        // Components at pA=8, pB=11 on Table 1: per root, 3 interested
        // users. Root A: 2 buyers → CVaR(2/3) takes the lowest 2 of
        // {0, 8, 8} → 8/(2/3) = 12. Root B: 1 buyer → lowest 2 are zeros
        // → 0. Total 12.
        let m = market();
        let c = pure_components();
        let q = 2.0 / 3.0;
        let r = c.revenue(&m, Objective::Cvar(q));
        assert!((r - 8.0 / q).abs() < 1e-9, "cvar revenue {r}");
        // Quantile 0.5: root A's rank-2 payment (of {0,8,8}) is 8 → 3·8;
        // root B's rank-2 is 0.
        let r = c.revenue(&m, Objective::Quantile(0.5));
        assert!((r - 24.0).abs() < 1e-9, "quantile revenue {r}");
        // Mean delegates unchanged.
        assert_eq!(c.revenue(&m, Objective::Mean).to_bits(), c.expected_revenue(&m).to_bits());
    }

    #[test]
    fn objective_scored_revenue_mixed_uses_payment_distribution() {
        // Mixed tree from Table 1 at pA=8, pB=11, pAB=12: u1 and u3 both
        // upgrade to the bundle (add-on margins +ε and +4), u2 keeps A →
        // payments {12, 8, 12}; all 3 users interested.
        let m = market();
        let c = BundleConfig {
            strategy: Strategy::Mixed,
            roots: vec![OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price: 12.0,
                children: vec![
                    OfferNode::leaf(Bundle::single(0), 8.0),
                    OfferNode::leaf(Bundle::single(1), 11.0),
                ],
            }],
        };
        c.validate(2);
        assert!((c.expected_revenue(&m) - 32.0).abs() < 1e-9);
        // CVaR(1/3): lowest payment 8 → 8/(1/3) = 24.
        let r = c.revenue(&m, Objective::Cvar(1.0 / 3.0));
        assert!((r - 24.0).abs() < 1e-9, "cvar {r}");
        // Quantile(0.5): rank-2 of {8, 12, 12} is 12 → 3·12 = 36.
        let r = c.revenue(&m, Objective::Quantile(0.5));
        assert!((r - 36.0).abs() < 1e-9, "quantile {r}");
    }

    #[test]
    fn cvar_one_is_expected_revenue_bitwise() {
        let m = market();
        for c in [
            pure_components(),
            BundleConfig {
                strategy: Strategy::Mixed,
                roots: vec![OfferNode {
                    bundle: Bundle::new(vec![0, 1]),
                    price: 12.0,
                    children: vec![
                        OfferNode::leaf(Bundle::single(0), 8.0),
                        OfferNode::leaf(Bundle::single(1), 11.0),
                    ],
                }],
            },
        ] {
            assert_eq!(
                c.revenue(&m, Objective::Cvar(1.0)).to_bits(),
                c.expected_revenue(&m).to_bits()
            );
        }
    }

    #[test]
    fn offers_listing() {
        let c = pure_components();
        assert_eq!(c.offers().len(), 2);
        assert_eq!(c.n_bundles(), 2);
        assert_eq!(c.max_bundle_size(), 1);
    }

    #[test]
    fn display_renders_menu() {
        let c = BundleConfig {
            strategy: Strategy::Mixed,
            roots: vec![OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price: 15.2,
                children: vec![
                    OfferNode::leaf(Bundle::single(0), 8.0),
                    OfferNode::leaf(Bundle::single(1), 11.0),
                ],
            }],
        };
        let s = c.to_string();
        assert!(s.contains("mixed bundling, 1 top-level offers:"), "{s}");
        assert!(s.contains("{0,1} @ 15.20"), "{s}");
        assert!(s.contains("    {0} @ 8.00"), "{s}");
    }

    #[test]
    fn display_abbreviates_large_bundles() {
        let big = Bundle::new((0..30).collect());
        let c = BundleConfig { strategy: Strategy::Pure, roots: vec![OfferNode::leaf(big, 99.0)] };
        let s = c.to_string();
        assert!(s.contains("+24 more"), "{s}");
    }

    #[test]
    fn three_level_mixed_tree_evaluates_bottom_up() {
        // ((A,B),C): the case-study shape. A consumer holding only C can
        // upgrade straight to the triple.
        let w = WtpMatrix::from_rows(vec![
            vec![10.0, 10.0, 2.0], // buys {A,B} tier
            vec![1.0, 1.0, 9.0],   // holds C, upgrades if add-on cheap
        ]);
        let m = Market::new(w, Params::default());
        let tree = OfferNode {
            bundle: Bundle::new(vec![0, 1, 2]),
            price: 11.0,
            children: vec![
                OfferNode {
                    bundle: Bundle::new(vec![0, 1]),
                    price: 10.0,
                    children: vec![
                        OfferNode::leaf(Bundle::single(0), 8.0),
                        OfferNode::leaf(Bundle::single(1), 8.0),
                    ],
                },
                OfferNode::leaf(Bundle::single(2), 7.0),
            ],
        };
        let c = BundleConfig { strategy: Strategy::Mixed, roots: vec![tree] };
        c.validate(3);
        // u0: buys A(8)+B(8)=16 → consolidates to {A,B} at 10 (cheaper),
        //     then to the triple at 11? add-on C worth 2, implicit price
        //     11-10=1 ≤ 2 → upgrades → pays 11.
        // u1: buys C at 7; upgrade to triple: add-on {A,B} worth 2,
        //     implicit price 11-7=4 > 2 → stays at 7.
        let rev = c.expected_revenue(&m);
        assert!((rev - 18.0).abs() < 1e-9, "revenue {rev}");
    }
}
