//! Alternative consumer-choice policies for mixed bundling.
//!
//! The paper uses three different readings of "which offer does a consumer
//! buy from a mixed menu" in different places; this module implements all
//! three so they can be compared explicitly (the Table 1 bench does):
//!
//! * [`ChoicePolicy::IncrementalUpgrade`] — §4.2's rule and this crate's
//!   default everywhere: decisions follow the merge order; a holder of
//!   `H ⊂ b` upgrades iff the implicit price of the add-on does not exceed
//!   the add-on's WTP. Implemented in [`crate::mixed`].
//! * [`ChoicePolicy::NaiveAffordable`] — the intro/Table 1 reading: a
//!   consumer buys an offer whenever her WTP covers its price, preferring
//!   the largest (topmost) affordable offer. Over-sells relative to
//!   rational behaviour; kept for reproducing Table 1's $38.40.
//! * [`ChoicePolicy::SurplusMax`] — the Adams–Yellen textbook rule: each
//!   consumer picks the feasible combination of disjoint offers maximizing
//!   her total surplus `Σ (w − p)` (ties broken toward the bundle). On an
//!   offer tree this is a simple bottom-up dynamic program.
//!
//! All three coincide for pure bundling (a single offer per tree).

use crate::config::OfferNode;
use crate::market::{Market, Scratch};

/// Consumer-choice rule for evaluating a mixed offer tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoicePolicy {
    /// The paper's §4.2 incremental upgrade policy (default).
    #[default]
    IncrementalUpgrade,
    /// Buy the largest affordable offer (intro/Table-1 reading).
    NaiveAffordable,
    /// Adams–Yellen surplus-maximizing choice.
    SurplusMax,
}

/// Evaluate one offer tree under a policy (deterministic step adoption).
/// For [`ChoicePolicy::IncrementalUpgrade`] this delegates to
/// [`crate::mixed::evaluate_tree_deterministic`].
pub fn evaluate_tree(
    market: &Market,
    root: &OfferNode,
    scratch: &mut Scratch,
    policy: ChoicePolicy,
) -> f64 {
    match policy {
        ChoicePolicy::IncrementalUpgrade => {
            crate::mixed::evaluate_tree_deterministic(market, root, scratch)
        }
        ChoicePolicy::NaiveAffordable => naive_affordable(market, root, scratch),
        ChoicePolicy::SurplusMax => surplus_max(market, root, scratch),
    }
}

/// Flattened per-node WTP view of a tree: for every node, the θ-adjusted
/// bundle WTP of each interested user (sorted by user id).
struct NodeWtps {
    /// Preorder-flattened nodes: (price, children indices).
    prices: Vec<f64>,
    children: Vec<Vec<usize>>,
    /// Per node: (user, w_{u,b}) sorted by user.
    wtps: Vec<Vec<(u32, f64)>>,
}

fn flatten(market: &Market, root: &OfferNode, scratch: &mut Scratch) -> NodeWtps {
    let mut out = NodeWtps { prices: Vec::new(), children: Vec::new(), wtps: Vec::new() };
    fn rec(market: &Market, node: &OfferNode, scratch: &mut Scratch, out: &mut NodeWtps) -> usize {
        let idx = out.prices.len();
        out.prices.push(node.price);
        out.children.push(Vec::new());
        let size = node.bundle.len();
        let params = *market.params();
        let wtps: Vec<(u32, f64)> = market
            .bundle_user_sums(node.bundle.items(), scratch)
            .iter()
            .map(|&(u, s)| (u, params.set_wtp(s, size)))
            .collect();
        out.wtps.push(wtps);
        let mut kids = Vec::with_capacity(node.children.len());
        for c in &node.children {
            kids.push(rec(market, c, scratch, out));
        }
        out.children[idx] = kids;
        idx
    }
    rec(market, root, scratch, &mut out);
    out
}

/// WTP of `user` for node `idx` (0 when the user has no interest).
fn wtp_of(nw: &NodeWtps, idx: usize, user: u32) -> f64 {
    nw.wtps[idx].binary_search_by_key(&user, |e| e.0).map(|k| nw.wtps[idx][k].1).unwrap_or(0.0)
}

fn naive_affordable(market: &Market, root: &OfferNode, scratch: &mut Scratch) -> f64 {
    let adoption = market.pricing_ctx().adoption;
    let nw = flatten(market, root, scratch);
    let mut revenue = 0.0;
    for &(user, _) in &nw.wtps[0] {
        // Walk top-down; buy the first affordable offer on each branch.
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            let w = wtp_of(&nw, idx, user);
            if adoption.margin(w, nw.prices[idx]) >= 0.0 && nw.prices[idx] > 0.0 {
                revenue += nw.prices[idx];
            } else {
                stack.extend(nw.children[idx].iter());
            }
        }
    }
    revenue
}

fn surplus_max(market: &Market, root: &OfferNode, scratch: &mut Scratch) -> f64 {
    let nw = flatten(market, root, scratch);
    let mut revenue = 0.0;
    for &(user, _) in &nw.wtps[0] {
        revenue += best_choice(&nw, 0, user).1;
    }
    revenue
}

/// Bottom-up DP: best (surplus, seller revenue) for `user` within the
/// subtree of `idx`. Buying nothing is always available (0, 0); ties
/// between "buy here" and "compose from children" go to the bundle
/// (Adams–Yellen convention).
fn best_choice(nw: &NodeWtps, idx: usize, user: u32) -> (f64, f64) {
    let w = wtp_of(nw, idx, user);
    let here_surplus = w - nw.prices[idx];
    let here = if here_surplus >= 0.0 { (here_surplus, nw.prices[idx]) } else { (0.0, 0.0) };
    let mut compose = (0.0, 0.0);
    for &c in &nw.children[idx] {
        let (s, r) = best_choice(nw, c, user);
        compose.0 += s;
        compose.1 += r;
    }
    // Prefer the bundle on surplus ties iff it actually buys something.
    if here_surplus >= 0.0 && here.0 >= compose.0 {
        here
    } else if compose.1 > 0.0 {
        compose
    } else {
        (0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Bundle;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    /// Table 1's market (θ = −0.05).
    fn market() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    /// The paper's Table 1 mixed menu: pA=8, pB=11, pAB=15.20.
    fn paper_menu() -> OfferNode {
        OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.2,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        }
    }

    #[test]
    fn naive_reproduces_table1s_38_40() {
        let m = market();
        let mut s = m.scratch();
        let rev = evaluate_tree(&m, &paper_menu(), &mut s, ChoicePolicy::NaiveAffordable);
        // u1 affords the bundle (15.2), u2 only A (8), u3 the bundle (15.2).
        assert!((rev - 38.4).abs() < 1e-9, "revenue {rev}");
    }

    #[test]
    fn surplus_max_is_rational() {
        let m = market();
        let mut s = m.scratch();
        let rev = evaluate_tree(&m, &paper_menu(), &mut s, ChoicePolicy::SurplusMax);
        // u1: surplus(A)=4 beats bundle's 0 → 8; u2: A at 0 surplus → 8;
        // u3: B and bundle tie at surplus 0 → bundle (A-Y tie rule) → 15.2.
        assert!((rev - 31.2).abs() < 1e-9, "revenue {rev}");
    }

    #[test]
    fn incremental_agrees_with_mixed_module() {
        let m = market();
        let mut s = m.scratch();
        let a = evaluate_tree(&m, &paper_menu(), &mut s, ChoicePolicy::IncrementalUpgrade);
        let b = crate::mixed::evaluate_tree_deterministic(&m, &paper_menu(), &mut s);
        assert_eq!(a, b);
        // For this menu the incremental rule coincides with surplus-max.
        assert!((a - 31.2).abs() < 1e-9);
    }

    #[test]
    fn policies_coincide_on_pure_offers() {
        let m = market();
        let mut s = m.scratch();
        let node = OfferNode::leaf(Bundle::new(vec![0, 1]), 15.2);
        let vals: Vec<f64> = [
            ChoicePolicy::IncrementalUpgrade,
            ChoicePolicy::NaiveAffordable,
            ChoicePolicy::SurplusMax,
        ]
        .into_iter()
        .map(|p| evaluate_tree(&m, &node, &mut s, p))
        .collect();
        assert!((vals[0] - 30.4).abs() < 1e-9);
        assert!((vals[1] - vals[0]).abs() < 1e-9);
        assert!((vals[2] - vals[0]).abs() < 1e-9);
    }

    #[test]
    fn naive_never_undersells_surplus_max() {
        // Naive ignores rational substitution, so it can only oversell.
        let m = market();
        let mut s = m.scratch();
        for price in [12.0, 13.5, 15.2, 18.0] {
            let menu = OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price,
                children: vec![
                    OfferNode::leaf(Bundle::single(0), 8.0),
                    OfferNode::leaf(Bundle::single(1), 11.0),
                ],
            };
            let naive = evaluate_tree(&m, &menu, &mut s, ChoicePolicy::NaiveAffordable);
            let rational = evaluate_tree(&m, &menu, &mut s, ChoicePolicy::SurplusMax);
            assert!(naive >= rational - 1e-9, "price {price}: {naive} < {rational}");
        }
    }
}
