//! The market: a WTP matrix plus model parameters, with the scratch-buffer
//! machinery that makes repeated bundle-revenue queries cheap.

use crate::bundle::Bundle;
use crate::params::Params;
use crate::pricing::{self, PriceMode, PricedOutcome, PricingCtx};
use crate::wtp::WtpMatrix;

/// A market instance: `M` consumers, `N` items, WTP, and parameters.
#[derive(Debug, Clone)]
pub struct Market {
    wtp: WtpMatrix,
    params: Params,
    pricing: PricingCtx,
}

impl Market {
    /// Create a market; validates the parameters. Pricing defaults to
    /// [`PriceMode::Exact`] (see `DESIGN.md`: exact is the `T→∞` limit of
    /// the paper's discretization and is used for headline numbers).
    pub fn new(wtp: WtpMatrix, params: Params) -> Self {
        params.validate();
        let pricing = PricingCtx::from_params(&params);
        Market { wtp, params, pricing }
    }

    /// Switch to the paper's `T`-level grid discretization.
    pub fn with_grid_pricing(mut self) -> Self {
        self.pricing.mode = PriceMode::Grid;
        self
    }

    pub fn wtp(&self) -> &WtpMatrix {
        &self.wtp
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    pub fn pricing_ctx(&self) -> &PricingCtx {
        &self.pricing
    }

    /// Resolved worker-thread count (≥ 1) from [`Params::threads`], fixed
    /// at construction so one market never mixes resolutions (the env var
    /// is read once). Thread count never affects results (`DESIGN.md` §6).
    pub fn threads(&self) -> usize {
        self.pricing.threads
    }

    pub fn n_users(&self) -> usize {
        self.wtp.n_users()
    }

    pub fn n_items(&self) -> usize {
        self.wtp.n_items()
    }

    /// Σ of all WTP entries: the revenue upper bound (coverage denominator).
    pub fn total_wtp(&self) -> f64 {
        self.wtp.total_wtp()
    }

    /// Fresh scratch buffers sized for this market.
    pub fn scratch(&self) -> Scratch {
        Scratch::new(self.n_users())
    }

    /// Per-user raw WTP sums over `items` (only users with a positive sum),
    /// sorted by user id. Cost: O(Σ nnz of the item columns + sort).
    pub fn bundle_user_sums<'a>(
        &self,
        items: &[u32],
        scratch: &'a mut Scratch,
    ) -> &'a [(u32, f64)] {
        scratch.pairs.clear();
        for &i in items {
            for &(u, w) in self.wtp.col(i) {
                let slot = &mut scratch.acc[u as usize];
                if *slot == 0.0 {
                    scratch.touched.push(u);
                }
                *slot += w;
            }
        }
        scratch.touched.sort_unstable();
        for &u in &scratch.touched {
            scratch.pairs.push((u, scratch.acc[u as usize]));
            scratch.acc[u as usize] = 0.0;
        }
        scratch.touched.clear();
        &scratch.pairs
    }

    /// θ-adjusted bundle WTPs (`w_{u,b}`, Eq. 1) of the interested users.
    pub fn bundle_wtps<'a>(&self, items: &[u32], scratch: &'a mut Scratch) -> &'a [f64] {
        let size = items.len();
        let theta_params = self.params;
        // Split borrows: fill `values` from `pairs` computed first.
        self.bundle_user_sums(items, scratch);
        scratch.values.clear();
        for k in 0..scratch.pairs.len() {
            let sum = scratch.pairs[k].1;
            scratch.values.push(theta_params.set_wtp(sum, size));
        }
        &scratch.values
    }

    /// Revenue-optimal pure-bundling price of a bundle (Eq. 2 + Eq. 5).
    pub fn price_pure(&self, items: &[u32], scratch: &mut Scratch) -> PricedOutcome {
        self.bundle_wtps(items, scratch);
        pricing::optimize(&scratch.values, &self.pricing)
    }

    /// Convenience wrapper for a [`Bundle`].
    pub fn price_bundle(&self, bundle: &Bundle, scratch: &mut Scratch) -> PricedOutcome {
        self.price_pure(bundle.items(), scratch)
    }

    /// Outcome of selling `item` at its listed price (the "Amazon's
    /// pricing" baseline of Table 2). `None` when the matrix has no listed
    /// prices.
    pub fn price_listed(&self, item: u32) -> Option<PricedOutcome> {
        let price = self.wtp.listed_price(item)?;
        let values: Vec<f64> = self.wtp.col(item).iter().map(|&(_, w)| w).collect();
        Some(pricing::optimize_with_price_list(&values, &self.pricing, &[price]))
    }

    /// All unordered item pairs co-rated by at least one consumer — the
    /// first-iteration pruning of Algorithm 1 ("we only consider pairs of
    /// items for which at least one customer has non-zero willingness to
    /// pay for both").
    pub fn co_rated_pairs(&self) -> Vec<(u32, u32)> {
        let mut seen = std::collections::HashSet::new();
        for u in 0..self.n_users() as u32 {
            let row = self.wtp.row(u);
            for (a_idx, &(i, _)) in row.iter().enumerate() {
                for &(j, _) in &row[a_idx + 1..] {
                    seen.insert((i, j));
                }
            }
        }
        let mut out: Vec<(u32, u32)> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Rater bitmap of a single item (users with positive WTP).
    pub fn item_raters(&self, item: u32) -> revmax_fim::Bitmap {
        let mut bm = revmax_fim::Bitmap::zeros(self.n_users());
        for &(u, _) in self.wtp.col(item) {
            bm.set(u as usize);
        }
        bm
    }
}

/// Reusable buffers for bundle WTP aggregation; one per thread of work.
#[derive(Debug, Clone)]
pub struct Scratch {
    acc: Vec<f64>,
    touched: Vec<u32>,
    /// Last `bundle_user_sums` result.
    pub pairs: Vec<(u32, f64)>,
    /// Last `bundle_wtps` result.
    pub values: Vec<f64>,
}

impl Scratch {
    /// Buffers for a market of `n_users` consumers.
    pub fn new(n_users: usize) -> Self {
        Scratch {
            acc: vec![0.0; n_users],
            touched: Vec::new(),
            pairs: Vec::new(),
            values: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's market (θ = −0.05).
    pub(crate) fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    #[test]
    fn bundle_user_sums_aggregates() {
        let m = table1();
        let mut s = m.scratch();
        let sums = m.bundle_user_sums(&[0, 1], &mut s);
        assert_eq!(sums, &[(0, 16.0), (1, 10.0), (2, 16.0)]);
    }

    #[test]
    fn bundle_wtps_apply_theta_to_bundles_only() {
        let m = table1();
        let mut s = m.scratch();
        let single = m.bundle_wtps(&[0], &mut s).to_vec();
        assert_eq!(single, vec![12.0, 8.0, 5.0]);
        let pair = m.bundle_wtps(&[0, 1], &mut s).to_vec();
        // (16, 10, 16) × 0.95 = (15.2, 9.5, 15.2).
        assert!((pair[0] - 15.2).abs() < 1e-12);
        assert!((pair[1] - 9.5).abs() < 1e-12);
        assert!((pair[2] - 15.2).abs() < 1e-12);
    }

    #[test]
    fn table1_component_and_bundle_revenues() {
        let m = table1();
        let mut s = m.scratch();
        let a = m.price_pure(&[0], &mut s);
        assert!((a.revenue - 16.0).abs() < 1e-9);
        let b = m.price_pure(&[1], &mut s);
        assert!((b.revenue - 11.0).abs() < 1e-9);
        let ab = m.price_pure(&[0, 1], &mut s);
        assert!((ab.price - 15.2).abs() < 1e-9);
        assert!((ab.revenue - 30.4).abs() < 1e-9);
    }

    #[test]
    fn co_rated_pairs_found() {
        let m = table1();
        // Every user rated both items.
        assert_eq!(m.co_rated_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let m = table1();
        let mut s = m.scratch();
        let first = m.bundle_user_sums(&[0], &mut s).to_vec();
        let _ = m.bundle_user_sums(&[1], &mut s);
        let again = m.bundle_user_sums(&[0], &mut s).to_vec();
        assert_eq!(first, again, "scratch must reset between calls");
    }

    #[test]
    fn item_raters_bitmap() {
        let m = table1();
        let bm = m.item_raters(0);
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn listed_price_requires_price_data() {
        let m = table1();
        assert!(m.price_listed(0).is_none());
    }

    #[test]
    fn grid_pricing_mode_switch_changes_search() {
        // Exact pricing hits $8 for item A; a 100-level grid over (0, 12]
        // lands within one step of it but not exactly on 8.
        let exact = table1();
        let grid = table1().with_grid_pricing();
        let mut s = exact.scratch();
        let pe = exact.price_pure(&[0], &mut s);
        let pg = grid.price_pure(&[0], &mut s);
        assert!((pe.price - 8.0).abs() < 1e-12);
        assert!(pg.revenue <= pe.revenue + 1e-12);
        assert!(pg.revenue >= 0.95 * pe.revenue, "grid {} vs exact {}", pg.revenue, pe.revenue);
    }

    #[test]
    fn empty_bundle_items_yield_zero() {
        let m = table1();
        let mut s = m.scratch();
        let out = m.price_pure(&[], &mut s);
        assert_eq!(out.revenue, 0.0);
        assert_eq!(out.expected_buyers, 0.0);
    }
}
