//! The market: a WTP matrix plus model parameters, with the scratch-buffer
//! machinery that makes repeated bundle-revenue queries cheap, and the
//! zero-copy [`MarketView`] sub-market machinery (`DESIGN.md` §7).
//!
//! The WTP storage is a shared dual-CSR arena ([`crate::wtp`]), so a
//! market's hot query — [`Market::bundle_user_sums`], a scatter loop over
//! the contiguous column slices of the bundle's items — never chases
//! per-row heap pointers, and a [`MarketView`] (per-genre, per-cohort,
//! per-shard restriction) answers the very same queries over the very same
//! arena without rebuilding anything.

use crate::bundle::Bundle;
use crate::params::Params;
use crate::pricing::{self, PriceMode, PricedOutcome, PricingCtx};
use crate::wtp::WtpMatrix;

/// A market instance: `M` consumers, `N` items, WTP, and parameters.
#[derive(Debug, Clone)]
pub struct Market {
    wtp: WtpMatrix,
    params: Params,
    pricing: PricingCtx,
}

impl Market {
    /// User-id block width of the [`Market::bundle_user_sums`] merge
    /// scatter. The accumulator lives on the stack (one cache line ×
    /// `SUM_BLOCK / 8`), so the scatter never touches a market-sized
    /// buffer; 64 matches the serve-side tile width (`DESIGN.md` §12).
    pub const SUM_BLOCK: usize = 64;

    /// Create a market; validates the parameters. Pricing defaults to
    /// [`PriceMode::Exact`] (see `DESIGN.md`: exact is the `T→∞` limit of
    /// the paper's discretization and is used for headline numbers).
    pub fn new(wtp: WtpMatrix, params: Params) -> Self {
        params.validate();
        let pricing = PricingCtx::from_params(&params);
        Market { wtp, params, pricing }
    }

    /// Switch to the paper's `T`-level grid discretization.
    pub fn with_grid_pricing(mut self) -> Self {
        self.pricing.mode = PriceMode::Grid;
        self
    }

    /// The same market economics (params, resolved pricing context) over a
    /// different WTP matrix — how [`crate::marketlog::MarketLog`] turns a
    /// churned snapshot back into a solvable market without re-resolving
    /// threads or price mode.
    pub fn with_wtp(&self, wtp: WtpMatrix) -> Market {
        Market { wtp, params: self.params, pricing: self.pricing }
    }

    /// The same market re-targeted at a different pricing objective —
    /// shares the WTP arena; only the params/pricing knobs change (and
    /// with them the fingerprint, so objective-distinct solves never
    /// share a cache entry). How [`crate::algorithms::RegistryOptions`]'s
    /// objective knob is applied.
    pub fn with_objective(&self, objective: crate::objective::Objective) -> Market {
        objective.validate();
        let mut params = self.params;
        params.objective = objective;
        let mut pricing = self.pricing;
        pricing.objective = objective;
        Market { wtp: self.wtp.clone(), params, pricing }
    }

    pub fn wtp(&self) -> &WtpMatrix {
        &self.wtp
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    pub fn pricing_ctx(&self) -> &PricingCtx {
        &self.pricing
    }

    /// Resolved worker-thread count (≥ 1) from [`Params::threads`], fixed
    /// at construction so one market never mixes resolutions (the env var
    /// is read once). Thread count never affects results (`DESIGN.md` §6).
    pub fn threads(&self) -> usize {
        self.pricing.threads
    }

    pub fn n_users(&self) -> usize {
        self.wtp.n_users()
    }

    pub fn n_items(&self) -> usize {
        self.wtp.n_items()
    }

    /// Σ of all WTP entries: the revenue upper bound (coverage denominator).
    pub fn total_wtp(&self) -> f64 {
        self.wtp.total_wtp()
    }

    /// Fresh scratch buffers sized for this market.
    pub fn scratch(&self) -> Scratch {
        Scratch::new(self.n_users())
    }

    /// Stable 64-bit fingerprint of everything a solve on this market
    /// depends on: the WTP content (including any view restriction —
    /// [`crate::wtp::WtpMatrix::fingerprint`]), the solve-relevant
    /// [`Params`] ([`Params::fingerprint`]; the thread knob is excluded),
    /// and the price-search mode. Two markets with equal fingerprints
    /// produce bit-identical solves for any configurator, which is the
    /// invariant the sweep engine's solve cache relies on (`DESIGN.md`
    /// §8). Accessible on a [`MarketView`] through deref.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::Fingerprinter::new("market");
        fp.write_u64(self.wtp.fingerprint());
        fp.write_u64(self.params.fingerprint());
        fp.write_u32(match self.pricing.mode {
            PriceMode::Exact => 0,
            PriceMode::Grid => 1,
        });
        fp.finish()
    }

    /// Per-user raw WTP sums over `items` (only users with a positive sum),
    /// sorted by user id. Blocked merge-scatter over the contiguous CSR
    /// column slices (`DESIGN.md` §12): user ids are processed in fixed
    /// [`Market::SUM_BLOCK`]-sized blocks, each column's segment scattered
    /// into a stack-resident block accumulator, then the block is emitted
    /// in ascending order — O(Σ nnz + touched blocks × block), with no
    /// market-sized accumulator and no sort of the touched set. Per user
    /// the contributions still accumulate in item order from `+0.0`, and
    /// `acc != 0.0 ⟺ touched` because every stored WTP is strictly
    /// positive ([`crate::wtp::CsrBuilder`]'s ingestion invariant), so the
    /// emitted pairs are bit-identical to the historical touched-set
    /// scatter.
    pub fn bundle_user_sums<'a>(
        &self,
        items: &[u32],
        scratch: &'a mut Scratch,
    ) -> &'a [(u32, f64)] {
        scratch.pairs.clear();
        if let [item] = items {
            // Single-column bundle (leaf offers, the configurators' most
            // frequent call): the column is already ascending with
            // strictly positive values — it *is* the answer.
            let col = self.wtp.col(*item);
            scratch.pairs.extend(col.ids.iter().zip(col.values).map(|(&u, &w)| (u, w)));
            return &scratch.pairs;
        }
        let cols: Vec<crate::wtp::SparseSlice<'_>> =
            items.iter().map(|&i| self.wtp.col(i)).collect();
        scratch.cursors.clear();
        scratch.cursors.resize(cols.len(), 0);
        let mut acc = [0.0f64; Market::SUM_BLOCK];
        loop {
            // Skip ahead to the next block any column still has entries in.
            let mut next = usize::MAX;
            for (&c, col) in scratch.cursors.iter().zip(&cols) {
                if c < col.ids.len() {
                    next = next.min(col.ids[c] as usize / Market::SUM_BLOCK);
                }
            }
            if next == usize::MAX {
                break;
            }
            let base = next * Market::SUM_BLOCK;
            let end = (base + Market::SUM_BLOCK) as u32;
            // Scatter each column's block segment in item order, so every
            // user's sum accumulates in exactly the historical order.
            for (c, col) in scratch.cursors.iter_mut().zip(&cols) {
                while *c < col.ids.len() && col.ids[*c] < end {
                    acc[col.ids[*c] as usize - base] += col.values[*c];
                    *c += 1;
                }
            }
            for (j, slot) in acc.iter_mut().enumerate() {
                if *slot != 0.0 {
                    scratch.pairs.push(((base + j) as u32, *slot));
                    *slot = 0.0;
                }
            }
        }
        &scratch.pairs
    }

    /// θ-adjusted bundle WTPs (`w_{u,b}`, Eq. 1) of the interested users.
    pub fn bundle_wtps<'a>(&self, items: &[u32], scratch: &'a mut Scratch) -> &'a [f64] {
        let size = items.len();
        let theta_params = self.params;
        // Split borrows: fill `values` from `pairs` computed first.
        self.bundle_user_sums(items, scratch);
        scratch.values.clear();
        for k in 0..scratch.pairs.len() {
            let sum = scratch.pairs[k].1;
            scratch.values.push(theta_params.set_wtp(sum, size));
        }
        &scratch.values
    }

    /// Revenue-optimal pure-bundling price of a bundle (Eq. 2 + Eq. 5).
    pub fn price_pure(&self, items: &[u32], scratch: &mut Scratch) -> PricedOutcome {
        self.bundle_wtps(items, scratch);
        pricing::optimize(&scratch.values, &self.pricing)
    }

    /// Convenience wrapper for a [`Bundle`].
    pub fn price_bundle(&self, bundle: &Bundle, scratch: &mut Scratch) -> PricedOutcome {
        self.price_pure(bundle.items(), scratch)
    }

    /// Outcome of selling `item` at its listed price (the "Amazon's
    /// pricing" baseline of Table 2). `None` when the matrix has no listed
    /// prices.
    pub fn price_listed(&self, item: u32) -> Option<PricedOutcome> {
        let price = self.wtp.listed_price(item)?;
        let values: Vec<f64> = self.wtp.col(item).values.to_vec();
        Some(pricing::optimize_with_price_list(&values, &self.pricing, &[price]))
    }

    /// All unordered item pairs co-rated by at least one consumer — the
    /// first-iteration pruning of Algorithm 1 ("we only consider pairs of
    /// items for which at least one customer has non-zero willingness to
    /// pay for both").
    pub fn co_rated_pairs(&self) -> Vec<(u32, u32)> {
        // Dedup on the fly: heavy raters contribute O(degree²) pairs each,
        // so buffering duplicates before a sort would blow memory up from
        // O(unique pairs) to O(Σ degree²).
        let mut seen = std::collections::HashSet::new();
        for u in 0..self.n_users() as u32 {
            let row = self.wtp.row(u).ids;
            for (a_idx, &i) in row.iter().enumerate() {
                for &j in &row[a_idx + 1..] {
                    seen.insert((i, j));
                }
            }
        }
        // audit: allow(unordered-iter) hash order is erased by the sort_unstable below
        let mut out: Vec<(u32, u32)> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Rater bitmap of a single item (users with positive WTP), set
    /// directly from the item's CSR column.
    pub fn item_raters(&self, item: u32) -> revmax_fim::Bitmap {
        let mut bm = revmax_fim::Bitmap::zeros(self.n_users());
        for &u in self.wtp.col(item).ids {
            bm.set(u as usize);
        }
        bm
    }

    /// Zero-copy sub-market over an item subset and/or user subset (`None`
    /// keeps the axis whole). The view shares this market's WTP arena,
    /// parameters, and resolved pricing context; ids are remapped densely
    /// in ascending order of the originals, so any configurator run on the
    /// view is bit-identical to one run on a market rebuilt from the
    /// restricted triples.
    pub fn view(&self, items: Option<&[u32]>, users: Option<&[u32]>) -> MarketView {
        // Normalize each subset once (sorted, deduplicated, parent-local
        // ids); `restrict` receives the normalized slices, so its own
        // resolve pass has nothing left to reorder.
        let normalize = |subset: Option<&[u32]>, n: usize| -> Vec<u32> {
            match subset {
                Some(s) => {
                    let mut v = s.to_vec();
                    v.sort_unstable();
                    v.dedup();
                    v
                }
                None => (0..n as u32).collect(),
            }
        };
        let parent_items = normalize(items, self.n_items());
        let parent_users = normalize(users, self.n_users());
        let wtp =
            self.wtp.restrict(items.map(|_| &parent_items[..]), users.map(|_| &parent_users[..]));
        MarketView {
            market: Market { wtp, params: self.params, pricing: self.pricing },
            parent_items,
            parent_users,
            label: None,
        }
    }

    /// Partition the consumers into labeled segments: one [`MarketView`]
    /// per distinct label (ascending), each holding every item but only
    /// that label's users. `labels[u]` is user `u`'s segment. The gateway
    /// to per-genre / per-cohort / per-shard solves: every configurator
    /// runs unchanged on each returned view.
    pub fn partition_by(&self, labels: &[u32]) -> Vec<MarketView> {
        assert_eq!(labels.len(), self.n_users(), "one label per consumer");
        // One bucketing pass: users land in their segment's list in
        // ascending user order, so each view's id remap is already sorted.
        let mut distinct: Vec<u32> = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let slot: std::collections::HashMap<u32, usize> =
            distinct.iter().enumerate().map(|(k, &lab)| (lab, k)).collect();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); distinct.len()];
        for (u, &lab) in labels.iter().enumerate() {
            buckets[slot[&lab]].push(u as u32);
        }
        distinct
            .into_iter()
            .zip(buckets)
            .map(|(lab, users)| {
                let mut v = self.view(None, Some(&users));
                v.label = Some(lab);
                v
            })
            .collect()
    }
}

/// A zero-copy restriction of a [`Market`] to an item and/or user subset.
///
/// Dereferences to [`Market`], so every [`crate::algorithms::Configurator`]
/// — and any other consumer of the market query API (`bundle_user_sums`,
/// `bundle_wtps`, `price_pure`, …) — runs on a view unchanged. The view
/// keeps the maps back to the parent's ids for reassembling per-segment
/// results.
#[derive(Debug, Clone)]
pub struct MarketView {
    market: Market,
    parent_items: Vec<u32>,
    parent_users: Vec<u32>,
    label: Option<u32>,
}

impl MarketView {
    /// The restricted market itself (what `Deref` returns).
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// Local item id → parent item id, ascending.
    pub fn parent_items(&self) -> &[u32] {
        &self.parent_items
    }

    /// Local user id → parent user id, ascending.
    pub fn parent_users(&self) -> &[u32] {
        &self.parent_users
    }

    /// Segment label, when produced by [`Market::partition_by`].
    pub fn label(&self) -> Option<u32> {
        self.label
    }
}

impl std::ops::Deref for MarketView {
    type Target = Market;

    fn deref(&self) -> &Market {
        &self.market
    }
}

/// Reusable buffers for bundle WTP aggregation; one per thread of work.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Per-column merge cursors of the blocked `bundle_user_sums` scatter.
    cursors: Vec<usize>,
    /// Last `bundle_user_sums` result.
    pub pairs: Vec<(u32, f64)>,
    /// Last `bundle_wtps` result.
    pub values: Vec<f64>,
}

impl Scratch {
    /// Buffers for a market of `n_users` consumers. The blocked scatter
    /// keeps its accumulator on the stack, so the buffers no longer scale
    /// with the market; the consumer count only pre-sizes the result
    /// vectors.
    pub fn new(n_users: usize) -> Self {
        Scratch {
            cursors: Vec::new(),
            pairs: Vec::with_capacity(n_users.min(1 << 12)),
            values: Vec::with_capacity(n_users.min(1 << 12)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's market (θ = −0.05).
    pub(crate) fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    #[test]
    fn bundle_user_sums_aggregates() {
        let m = table1();
        let mut s = m.scratch();
        let sums = m.bundle_user_sums(&[0, 1], &mut s);
        assert_eq!(sums, &[(0, 16.0), (1, 10.0), (2, 16.0)]);
    }

    #[test]
    fn bundle_wtps_apply_theta_to_bundles_only() {
        let m = table1();
        let mut s = m.scratch();
        let single = m.bundle_wtps(&[0], &mut s).to_vec();
        assert_eq!(single, vec![12.0, 8.0, 5.0]);
        let pair = m.bundle_wtps(&[0, 1], &mut s).to_vec();
        // (16, 10, 16) × 0.95 = (15.2, 9.5, 15.2).
        assert!((pair[0] - 15.2).abs() < 1e-12);
        assert!((pair[1] - 9.5).abs() < 1e-12);
        assert!((pair[2] - 15.2).abs() < 1e-12);
    }

    #[test]
    fn table1_component_and_bundle_revenues() {
        let m = table1();
        let mut s = m.scratch();
        let a = m.price_pure(&[0], &mut s);
        assert!((a.revenue - 16.0).abs() < 1e-9);
        let b = m.price_pure(&[1], &mut s);
        assert!((b.revenue - 11.0).abs() < 1e-9);
        let ab = m.price_pure(&[0, 1], &mut s);
        assert!((ab.price - 15.2).abs() < 1e-9);
        assert!((ab.revenue - 30.4).abs() < 1e-9);
    }

    #[test]
    fn co_rated_pairs_found() {
        let m = table1();
        // Every user rated both items.
        assert_eq!(m.co_rated_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let m = table1();
        let mut s = m.scratch();
        let first = m.bundle_user_sums(&[0], &mut s).to_vec();
        let _ = m.bundle_user_sums(&[1], &mut s);
        let again = m.bundle_user_sums(&[0], &mut s).to_vec();
        assert_eq!(first, again, "scratch must reset between calls");
    }

    #[test]
    fn item_raters_bitmap() {
        let m = table1();
        let bm = m.item_raters(0);
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn listed_price_requires_price_data() {
        let m = table1();
        assert!(m.price_listed(0).is_none());
    }

    #[test]
    fn grid_pricing_mode_switch_changes_search() {
        // Exact pricing hits $8 for item A; a 100-level grid over (0, 12]
        // lands within one step of it but not exactly on 8.
        let exact = table1();
        let grid = table1().with_grid_pricing();
        let mut s = exact.scratch();
        let pe = exact.price_pure(&[0], &mut s);
        let pg = grid.price_pure(&[0], &mut s);
        assert!((pe.price - 8.0).abs() < 1e-12);
        assert!(pg.revenue <= pe.revenue + 1e-12);
        assert!(pg.revenue >= 0.95 * pe.revenue, "grid {} vs exact {}", pg.revenue, pe.revenue);
    }

    #[test]
    fn empty_bundle_items_yield_zero() {
        let m = table1();
        let mut s = m.scratch();
        let out = m.price_pure(&[], &mut s);
        assert_eq!(out.revenue, 0.0);
        assert_eq!(out.expected_buyers, 0.0);
    }

    #[test]
    fn user_view_answers_queries_locally() {
        let m = table1();
        // Users 0 and 2 only.
        let v = m.view(None, Some(&[0, 2]));
        assert_eq!(v.n_users(), 2);
        assert_eq!(v.n_items(), 2);
        let mut s = v.scratch();
        let sums = v.bundle_user_sums(&[0, 1], &mut s);
        assert_eq!(sums, &[(0, 16.0), (1, 16.0)]);
        // Optimal pure bundle price over {u1, u3}: both at 15.2 → 30.4.
        let priced = v.price_pure(&[0, 1], &mut s);
        assert!((priced.revenue - 30.4).abs() < 1e-9);
        assert_eq!(v.parent_users(), &[0, 2]);
    }

    #[test]
    fn view_equals_market_rebuilt_from_restricted_triples() {
        let m = table1();
        let v = m.view(Some(&[0]), Some(&[1, 2]));
        let rebuilt = Market::new(
            WtpMatrix::from_rows(vec![vec![8.0], vec![5.0]]),
            Params::default().with_theta(-0.05),
        );
        let mut sv = v.scratch();
        let mut sr = rebuilt.scratch();
        let pv = v.price_pure(&[0], &mut sv);
        let pr = rebuilt.price_pure(&[0], &mut sr);
        assert_eq!(pv.price.to_bits(), pr.price.to_bits());
        assert_eq!(pv.revenue.to_bits(), pr.revenue.to_bits());
        assert_eq!(v.total_wtp(), rebuilt.total_wtp());
    }

    #[test]
    fn partition_by_covers_all_users_once() {
        let m = table1();
        let views = m.partition_by(&[7, 3, 7]);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].label(), Some(3));
        assert_eq!(views[0].parent_users(), &[1]);
        assert_eq!(views[1].label(), Some(7));
        assert_eq!(views[1].parent_users(), &[0, 2]);
        let total: usize = views.iter().map(|v| v.n_users()).sum();
        assert_eq!(total, m.n_users());
        // Views share the parent's resolved thread count.
        for v in &views {
            assert_eq!(v.threads(), m.threads());
        }
    }

    #[test]
    fn market_fingerprint_tracks_wtp_params_and_mode() {
        let m = table1();
        assert_eq!(m.fingerprint(), table1().fingerprint());
        // Each ingredient moves the digest: WTP content, params, mode.
        let other_wtp = Market::new(
            WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.5]]),
            Params::default().with_theta(-0.05),
        );
        assert_ne!(m.fingerprint(), other_wtp.fingerprint());
        let other_theta = Market::new(
            WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]),
            Params::default().with_theta(-0.10),
        );
        assert_ne!(m.fingerprint(), other_theta.fingerprint());
        assert_ne!(m.fingerprint(), table1().with_grid_pricing().fingerprint());
        // Thread resolution stays outside the digest (DESIGN.md §6).
        let threaded = Market::new(
            WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]),
            Params::default().with_theta(-0.05).with_threads(crate::params::Threads::Fixed(7)),
        );
        assert_eq!(m.fingerprint(), threaded.fingerprint());
    }

    #[test]
    fn view_fingerprint_equals_rebuilt_market() {
        let m = table1();
        let v = m.view(Some(&[0]), Some(&[1, 2]));
        let rebuilt = Market::new(
            WtpMatrix::from_rows(vec![vec![8.0], vec![5.0]]),
            Params::default().with_theta(-0.05),
        );
        assert_eq!(v.fingerprint(), rebuilt.fingerprint());
        assert_ne!(v.fingerprint(), m.fingerprint());
    }

    #[test]
    fn configurator_runs_unchanged_on_a_view() {
        use crate::algorithms::{Components, Configurator};
        let m = table1();
        let v = m.view(None, Some(&[0, 2]));
        // Deref coercion: a &MarketView is a &Market to any configurator.
        let out = Components::optimal().run(&v);
        // u1 and u3 alone: item A sells at 12 or 5x2=10 → 12; B at 11 or 4
        // … optimal per-item prices over {12, 5} and {4, 11}.
        assert!((out.revenue - (12.0 + 11.0)).abs() < 1e-9);
    }
}
