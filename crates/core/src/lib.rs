//! # revmax-core — revenue-maximizing bundle configuration
//!
//! From-scratch Rust implementation of *Mining Revenue-Maximizing Bundling
//! Configuration* (Do, Lauw, Wang — PVLDB 8(5), 2015): given a matrix of
//! consumers' willingness to pay (WTP) mined from preference data, find the
//! partition (pure bundling) or subsumption family (mixed bundling) of the
//! item set that maximizes total revenue, where each bundle is priced
//! optimally against a (possibly stochastic) adoption model.
//!
//! ## Model (Sections 3–4 of the paper)
//!
//! * **WTP**: [`wtp::WtpMatrix`] holds `w[u][i] ≥ 0`, either given
//!   directly or mined from star ratings via the λ-linear map of §6.1.1
//!   ([`wtp::WtpMatrix::from_ratings`]). Storage is a flat dual-CSR arena
//!   shared across clones and zero-copy sub-market views
//!   ([`market::MarketView`], `DESIGN.md` §7).
//! * **Bundle WTP** (Eq. 1): `w_{u,b} = (1+θ)·Σ_{i∈b} w_{u,i}` for
//!   `|b| ≥ 2`; singletons are the raw item WTP.
//! * **Adoption** (Eq. 6): [`adoption::AdoptionModel`] — sigmoid
//!   `σ(γ(α·w − p + ε))`; `γ → ∞` recovers the classical step rule
//!   "buy iff `w ≥ p`".
//! * **Pricing** (§4.2): [`pricing`] searches `T` discretized price levels
//!   (default 100) against a bucketed consumer histogram, `O(M)` per bundle.
//! * **Mixed bundling** (§4.2): incremental policy — components are priced
//!   first, a bundle's price is confined to
//!   `(max component price, Σ component prices)` and consumers upgrade only
//!   when the implicit price of the add-on does not exceed its WTP.
//!
//! ## Algorithms (Section 5)
//!
//! | paper name | type |
//! |------------|------|
//! | Components | [`algorithms::Components`] |
//! | Pure/Mixed Matching (Alg. 1) | [`algorithms::MatchingConfigurator`] |
//! | Pure/Mixed Greedy (Alg. 2) | [`algorithms::GreedyConfigurator`] |
//! | Pure/Mixed FreqItemset (§6.1.3 baseline) | [`algorithms::FreqItemsetConfigurator`] |
//! | Optimal / Greedy WSP (§5.2) | [`wsp`] |
//!
//! All seven comparative methods are listed — once — by
//! [`algorithms::registry`], with by-name lookup via
//! [`algorithms::by_name`].
//!
//! All configurators revert to `Components` when bundling cannot help, so
//! their revenue never drops below the non-bundling baseline — the
//! guarantee the paper leans on throughout §6.
//!
//! ## Quickstart
//!
//! ```
//! use revmax_core::prelude::*;
//!
//! // Table 1 of the paper: 3 consumers, 2 items, theta = -0.05.
//! let w = WtpMatrix::from_rows(vec![
//!     vec![12.0, 4.0],
//!     vec![8.0, 2.0],
//!     vec![5.0, 11.0],
//! ]);
//! let market = Market::new(w, Params::default().with_theta(-0.05));
//!
//! let components = Components::optimal().run(&market);
//! let mixed = MixedMatching::default().run(&market);
//! assert!((components.revenue() - 27.0).abs() < 1e-6);
//! // Mixed bundling beats Components ($32.00 under the paper's §4.2
//! // upgrade semantics; see EXPERIMENTS.md for the Table 1 discussion).
//! assert!(mixed.revenue() > components.revenue());
//! ```

pub mod adoption;
pub mod algorithms;
pub mod bundle;
pub mod config;
pub mod fingerprint;
pub mod market;
pub mod marketlog;
pub mod metrics;
pub mod mixed;
pub mod objective;
pub mod params;
pub mod policy;
pub mod pricing;
pub mod trace;
pub mod wsp;
pub mod wtp;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::adoption::AdoptionModel;
    pub use crate::algorithms::{
        registry, registry_with, Components, Configurator, FreqItemsetConfigurator,
        GreedyConfigurator, MatchingConfigurator, MixedFreqItemset, MixedGreedy, MixedMatching,
        PureFreqItemset, PureGreedy, PureMatching, RegistryOptions,
    };
    pub use crate::bundle::Bundle;
    pub use crate::config::{BundleConfig, Outcome, Strategy};
    pub use crate::fingerprint::DeltaFingerprint;
    pub use crate::market::{Market, MarketView};
    pub use crate::marketlog::{Event, MarketLog};
    pub use crate::metrics::{revenue_coverage, revenue_gain};
    pub use crate::objective::Objective;
    pub use crate::params::{Params, SizeCap, Threads};
    pub use crate::wtp::WtpMatrix;
}
