//! Model parameters with the paper's defaults (Table 3).

use crate::objective::Objective;
pub use revmax_par::Threads;

/// Maximum bundle size constraint `k` (Problem 1/2's size parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeCap {
    /// No limit — the paper's default ("∞ (no size limit)").
    Unlimited,
    /// Bundles may contain at most this many items (`k ≥ 1`).
    AtMost(usize),
}

impl SizeCap {
    /// Can a bundle of `size` items exist under this cap?
    pub fn allows(&self, size: usize) -> bool {
        match *self {
            SizeCap::Unlimited => true,
            SizeCap::AtMost(k) => size <= k,
        }
    }

    /// The numeric cap, if any.
    pub fn limit(&self) -> Option<usize> {
        match *self {
            SizeCap::Unlimited => None,
            SizeCap::AtMost(k) => Some(k),
        }
    }
}

/// All tunables of the framework, defaulted per Table 3 of the paper.
///
/// | notation | field | default |
/// |----------|-------|---------|
/// | λ  | `lambda` | 1.25 |
/// | θ  | `theta` | 0 |
/// | k  | `size_cap` | unlimited |
/// | γ  | `gamma` | 10⁶ (step function) |
/// | α  | `adoption_bias` | 1 (unbiased) |
/// | ε  | `epsilon` | 10⁻⁶ |
/// | T  | `price_levels` | 100 |
///
/// Note: the prose under Figure 4 says "we set α = 0" but Table 3 and the
/// model (α multiplies WTP) make clear the default is α = 1; α = 0 would
/// zero every consumer's effective WTP.
///
/// Four extension knobs beyond the paper's table: `objective_alpha` is the
/// profit-vs-surplus weight of the §1 utility `α·profit + (1−α)·surplus`
/// (the paper fixes it to 1 "without loss of generality"), `unit_cost`
/// is the per-unit variable cost (the paper assumes 0 for information
/// goods), `objective` selects the revenue statistic a solve maximizes
/// (mean / lower quantile / CVaR — `DESIGN.md` §13), and `threads` is the
/// degree of parallelism used by the hot paths (pricing, subset
/// enumeration, gain-matrix scoring). Thread count never affects results —
/// see `DESIGN.md` §6 for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Rating→WTP conversion factor λ (≥ 1).
    pub lambda: f64,
    /// Bundling coefficient θ (> -1): substitutes < 0 < complements.
    pub theta: f64,
    /// Maximum bundle size k.
    pub size_cap: SizeCap,
    /// Stochastic price sensitivity γ (> 0); ≥ `Params::STEP_GAMMA` is
    /// treated as the deterministic step function.
    pub gamma: f64,
    /// Adoption bias α (> 0); multiplies WTP inside the sigmoid.
    pub adoption_bias: f64,
    /// Tie-break noise ε added to the sigmoid margin.
    pub epsilon: f64,
    /// Number of discretized price levels T.
    pub price_levels: usize,
    /// Weight of profit vs consumer surplus in the pricing objective.
    pub objective_alpha: f64,
    /// Per-unit variable cost subtracted from price in the profit term.
    pub unit_cost: f64,
    /// Revenue statistic the solve maximizes (default: the paper's mean).
    pub objective: Objective,
    /// Worker threads for the parallel hot paths (default: auto — the
    /// `REVMAX_THREADS` env var, else the machine's available parallelism).
    // audit: allow(fingerprint-coverage) results are thread-count invariant (§6), so threads must NOT split the cache
    pub threads: Threads,
}

impl Params {
    /// γ at or above this is treated as the exact step function.
    pub const STEP_GAMMA: f64 = 1e5;

    /// Paper defaults (Table 3).
    pub fn paper_defaults() -> Self {
        Params {
            lambda: 1.25,
            theta: 0.0,
            size_cap: SizeCap::Unlimited,
            gamma: 1e6,
            adoption_bias: 1.0,
            epsilon: 1e-6,
            price_levels: 100,
            objective_alpha: 1.0,
            unit_cost: 0.0,
            objective: Objective::Mean,
            threads: Threads::Auto,
        }
    }

    /// Validate invariants; called by [`crate::market::Market::new`].
    pub fn validate(&self) {
        assert!(self.lambda >= 1.0, "lambda must be >= 1, got {}", self.lambda);
        assert!(self.theta > -1.0, "theta must be > -1, got {}", self.theta);
        assert!(self.gamma > 0.0, "gamma must be positive, got {}", self.gamma);
        assert!(self.adoption_bias > 0.0, "adoption bias must be positive");
        assert!(self.epsilon >= 0.0, "epsilon must be non-negative");
        assert!(self.price_levels >= 1, "at least one price level required");
        assert!(
            (0.0..=1.0).contains(&self.objective_alpha),
            "objective alpha must be in [0,1], got {}",
            self.objective_alpha
        );
        assert!(self.unit_cost >= 0.0, "unit cost must be non-negative");
        self.objective.validate();
        self.threads.validate();
        if let SizeCap::AtMost(k) = self.size_cap {
            assert!(k >= 1, "size cap must be >= 1");
        }
    }

    /// Builder-style override for θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Builder-style override for γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Builder-style override for adoption bias α.
    pub fn with_adoption_bias(mut self, alpha: f64) -> Self {
        self.adoption_bias = alpha;
        self
    }

    /// Builder-style override for the size cap k.
    pub fn with_size_cap(mut self, cap: SizeCap) -> Self {
        self.size_cap = cap;
        self
    }

    /// Builder-style override for λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override for the number of price levels T.
    pub fn with_price_levels(mut self, t: usize) -> Self {
        self.price_levels = t;
        self
    }

    /// Builder-style override for the profit/surplus weight.
    pub fn with_objective_alpha(mut self, a: f64) -> Self {
        self.objective_alpha = a;
        self
    }

    /// Builder-style override for the pricing objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style override for the worker-thread knob.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// True when γ is in the deterministic step regime.
    pub fn is_step(&self) -> bool {
        self.gamma >= Self::STEP_GAMMA
    }

    /// Stable 64-bit fingerprint of every **solve-relevant** parameter —
    /// the raw bits of λ, θ, γ, α, ε, the size cap, `T`, the objective
    /// weight, the unit cost, and the pricing objective (tagged per
    /// variant so a CVaR solve can never collide with a mean solve —
    /// the solve cache keys on this digest).
    ///
    /// `threads` is deliberately **excluded**: the determinism contract
    /// (`DESIGN.md` §6) guarantees bit-identical results at any thread
    /// count, so the thread knob must not split solve-cache keys — a sweep
    /// run under `REVMAX_THREADS=1` and one under `=8` see the very same
    /// fingerprints (pinned by `tests/engine_determinism.rs`).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::Fingerprinter::new("params");
        fp.write_f64(self.lambda);
        fp.write_f64(self.theta);
        match self.size_cap {
            SizeCap::Unlimited => fp.write_u64(u64::MAX),
            SizeCap::AtMost(k) => fp.write_usize(k),
        }
        fp.write_f64(self.gamma);
        fp.write_f64(self.adoption_bias);
        fp.write_f64(self.epsilon);
        fp.write_usize(self.price_levels);
        fp.write_f64(self.objective_alpha);
        fp.write_f64(self.unit_cost);
        self.objective.write_fingerprint(&mut fp);
        fp.finish()
    }

    /// WTP of a set of items given the raw per-item sum and the set size:
    /// Eq. 1 applies θ only to genuine bundles, not singletons.
    #[inline]
    pub fn set_wtp(&self, raw_sum: f64, size: usize) -> f64 {
        if size >= 2 {
            (1.0 + self.theta) * raw_sum
        } else {
            raw_sum
        }
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let p = Params::default();
        assert_eq!(p.lambda, 1.25);
        assert_eq!(p.theta, 0.0);
        assert_eq!(p.size_cap, SizeCap::Unlimited);
        assert_eq!(p.gamma, 1e6);
        assert!(p.is_step());
        assert_eq!(p.adoption_bias, 1.0);
        assert_eq!(p.epsilon, 1e-6);
        assert_eq!(p.price_levels, 100);
        assert_eq!(p.objective_alpha, 1.0);
        assert_eq!(p.threads, Threads::Auto);
        p.validate();
    }

    #[test]
    fn size_cap_semantics() {
        assert!(SizeCap::Unlimited.allows(1_000_000));
        assert!(SizeCap::AtMost(3).allows(3));
        assert!(!SizeCap::AtMost(3).allows(4));
        assert_eq!(SizeCap::AtMost(2).limit(), Some(2));
        assert_eq!(SizeCap::Unlimited.limit(), None);
    }

    #[test]
    fn theta_only_hits_real_bundles() {
        let p = Params::default().with_theta(-0.05);
        assert_eq!(p.set_wtp(10.0, 1), 10.0);
        assert!((p.set_wtp(16.0, 2) - 15.2).abs() < 1e-12); // Table 1's u1
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_at_minus_one() {
        Params::default().with_theta(-1.0).validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_zero_gamma() {
        Params::default().with_gamma(0.0).validate();
    }

    #[test]
    fn fingerprint_tracks_solve_relevant_fields_only() {
        let base = Params::default();
        assert_eq!(base.fingerprint(), Params::default().fingerprint());
        assert_ne!(base.fingerprint(), base.with_theta(0.05).fingerprint());
        assert_ne!(base.fingerprint(), base.with_lambda(1.5).fingerprint());
        assert_ne!(base.fingerprint(), base.with_price_levels(50).fingerprint());
        assert_ne!(base.fingerprint(), base.with_size_cap(SizeCap::AtMost(3)).fingerprint());
        // The thread knob is outside the fingerprint (DESIGN.md §6: thread
        // count never affects results, so it must not split cache keys).
        assert_eq!(base.fingerprint(), base.with_threads(Threads::Fixed(8)).fingerprint());
        // The pricing objective is inside it (a CVaR solve must never hit
        // a cached mean solve), including the Cvar(1.0)-vs-Mean pair whose
        // *solves* coincide — distinct keys only cost a cache miss.
        assert_ne!(base.fingerprint(), base.with_objective(Objective::Cvar(0.9)).fingerprint());
        assert_ne!(base.fingerprint(), base.with_objective(Objective::Cvar(1.0)).fingerprint());
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn rejects_out_of_range_quantile_objective() {
        Params::default().with_objective(Objective::Quantile(0.0)).validate();
    }

    #[test]
    fn threads_knob_round_trips() {
        let p = Params::default().with_threads(Threads::Fixed(4));
        p.validate();
        assert_eq!(p.threads.get(), 4);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn rejects_zero_threads() {
        Params::default().with_threads(Threads::Fixed(0)).validate();
    }
}
