//! Pricing objectives: what statistic of the per-user revenue
//! distribution a solve maximizes.
//!
//! Classical bundle pricing (and the source paper) maximizes **expected**
//! revenue. Heavy-tailed markets (van Eck–Kleer–van Leeuwaarden 2025) make
//! that fragile: with infinite-variance valuations the mean is dominated
//! by a handful of extreme consumers, so a robust seller may prefer a
//! lower **quantile** or **CVaR** of revenue instead. [`Objective`] makes
//! that choice a first-class parameter threaded through pricing
//! ([`crate::pricing::optimize_with`]), config evaluation
//! ([`crate::config::BundleConfig::revenue`]), the configurator registry
//! ([`crate::algorithms::RegistryOptions`]), and — via
//! [`crate::params::Params::fingerprint`] — every solve-cache key.
//!
//! # Scoring model
//!
//! Fix a bundle at price `p` with `m` interested users (finite positive
//! WTP) of whom `buyers` adopt (expected adopters under the adoption
//! model). Pool the per-user payment into the two-point empirical
//! distribution `X ∈ {p w.p. buyers/m, 0 otherwise}` and score the bundle
//! by `m · stat(X)` so every objective lives on the same revenue scale:
//!
//! * `Mean` — `m·E[X] = p·buyers`, exactly the paper's Eq. 2.
//! * `Cvar(q)` — `m` times the average of the **lowest** `q`-fraction of
//!   payments: `p · max(0, buyers − (1−q)·m) / q`. A pessimist's revenue:
//!   the zeros of the non-adopters are charged against the bundle first.
//! * `Quantile(q)` — `m` times the lower `q`-quantile of `X`: `p·m` when
//!   strictly more than a `(1−q)` fraction adopt (`m − buyers < q·m`),
//!   else `0`. Maximizing it maximizes price subject to serving at least
//!   a `(1−q)` share of the interested users.
//!
//! `Cvar(1.0)` reduces to `Mean` **bit-for-bit** (`(buyers − 0.0)/1.0` is
//! an f64 identity), pinned by proptest; the mean-revenue arm of every
//! scorer is textually today's expression, so `Objective::Mean` solves
//! are bit-identical to the pre-objective API.

/// The revenue statistic a pricing solve maximizes. See the module docs
/// for exact semantics; the default is [`Objective::Mean`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Expected revenue (the paper's objective). The default.
    #[default]
    Mean,
    /// Lower `q`-quantile of the per-user revenue distribution, scaled by
    /// the interested-user count; `q ∈ (0, 1)`.
    Quantile(f64),
    /// Conditional value-at-risk: the mean of the **worst** `q`-fraction
    /// of per-user payments, scaled by the interested-user count;
    /// `q ∈ (0, 1]`. `Cvar(1.0)` is bit-identical to `Mean`.
    Cvar(f64),
}

impl Objective {
    /// Validate the quantile level; called from
    /// [`crate::params::Params::validate`].
    pub fn validate(&self) {
        match *self {
            Objective::Mean => {}
            Objective::Quantile(q) => {
                assert!(
                    q.is_finite() && q > 0.0 && q < 1.0,
                    "quantile level must be in (0,1), got {q}"
                );
            }
            Objective::Cvar(q) => {
                assert!(
                    q.is_finite() && q > 0.0 && q <= 1.0,
                    "CVaR level must be in (0,1], got {q}"
                );
            }
        }
    }

    /// Canonical spelling, parseable by [`Objective::parse`]:
    /// `mean`, `quantile:0.25`, `cvar:0.9`.
    pub fn name(&self) -> String {
        match *self {
            Objective::Mean => "mean".to_string(),
            Objective::Quantile(q) => format!("quantile:{q}"),
            Objective::Cvar(q) => format!("cvar:{q}"),
        }
    }

    /// Filesystem/bench-id safe fragment (no colon): `mean`, `cvar0.9`,
    /// `quantile0.25`.
    pub fn id_fragment(&self) -> String {
        match *self {
            Objective::Mean => "mean".to_string(),
            Objective::Quantile(q) => format!("quantile{q}"),
            Objective::Cvar(q) => format!("cvar{q}"),
        }
    }

    /// Parse `mean` / `cvar:Q` / `quantile:Q` (also accepts the
    /// colon-free [`Objective::id_fragment`] spellings).
    pub fn parse(text: &str) -> Result<Objective, String> {
        let t = text.trim();
        if t.eq_ignore_ascii_case("mean") {
            return Ok(Objective::Mean);
        }
        let (kind, rest) = match t.split_once(':') {
            Some((k, r)) => (k, r),
            None if t.len() > 4 && t[..4].eq_ignore_ascii_case("cvar") => ("cvar", &t[4..]),
            None if t.len() > 8 && t[..8].eq_ignore_ascii_case("quantile") => ("quantile", &t[8..]),
            None => {
                return Err(format!("unknown objective '{t}' (try mean, cvar:0.9, quantile:0.25)"))
            }
        };
        let q: f64 =
            rest.trim().parse().map_err(|_| format!("bad objective level '{rest}' in '{t}'"))?;
        let obj = match kind.to_ascii_lowercase().as_str() {
            "cvar" => Objective::Cvar(q),
            "quantile" => Objective::Quantile(q),
            other => {
                return Err(format!(
                    "unknown objective '{other}' (try mean, cvar:0.9, quantile:0.25)"
                ))
            }
        };
        obj.check()?;
        Ok(obj)
    }

    /// Non-panicking validation (parse paths, spec validation).
    pub fn check(&self) -> Result<(), String> {
        match *self {
            Objective::Mean => Ok(()),
            Objective::Quantile(q) if q.is_finite() && q > 0.0 && q < 1.0 => Ok(()),
            Objective::Quantile(q) => Err(format!("quantile level must be in (0,1), got {q}")),
            Objective::Cvar(q) if q.is_finite() && q > 0.0 && q <= 1.0 => Ok(()),
            Objective::Cvar(q) => Err(format!("CVaR level must be in (0,1], got {q}")),
        }
    }

    /// Fold this objective into a fingerprint. A distinct tag per variant
    /// plus the raw level bits: distinct objectives can never collide, so
    /// a CVaR solve can never hit a cached mean solve
    /// (`crate::params::Params::fingerprint` calls this).
    pub fn write_fingerprint(&self, fp: &mut crate::fingerprint::Fingerprinter) {
        match *self {
            Objective::Mean => fp.write_u32(0),
            Objective::Quantile(q) => {
                fp.write_u32(1);
                fp.write_f64(q);
            }
            Objective::Cvar(q) => {
                fp.write_u32(2);
                fp.write_f64(q);
            }
        }
    }

    /// The effective buyer multiplier: scoring charges `price × base`
    /// where `base` pools the two-point per-user payment distribution
    /// (`m` interested users, `buyers` adopters) through this objective.
    /// For `Mean` this returns `buyers` unchanged — callers that multiply
    /// `price * base` reproduce today's mean-revenue arithmetic bit for
    /// bit — and `Cvar(1.0)` reduces to `buyers` by f64 identities.
    #[inline]
    pub fn base_buyers(&self, buyers: f64, m: f64) -> f64 {
        match *self {
            Objective::Mean => buyers,
            Objective::Cvar(q) => (buyers - (1.0 - q) * m).max(0.0) / q,
            Objective::Quantile(q) => {
                if m - buyers < q * m {
                    m
                } else {
                    0.0
                }
            }
        }
    }

    /// Score a list of realized per-user payments (the `paid` column of a
    /// mixed-config evaluation). `nonzero` holds the payments of users who
    /// bought something; the remaining `m − nonzero.len()` interested
    /// users paid 0. Uses the same fractional-mass definitions as
    /// [`Objective::base_buyers`], so on a two-point payment list the two
    /// scorers agree exactly.
    pub fn score_payments(&self, nonzero: &[f64], m: usize) -> f64 {
        if m == 0 {
            return 0.0;
        }
        match *self {
            // Plain sum; callers on hot mean paths should keep their own
            // fold (this entry exists so the robust arms have a home).
            Objective::Mean => nonzero.iter().fold(0.0, |acc, &p| acc + p),
            Objective::Cvar(q) => {
                // Average of the lowest q·m units of payment mass, scaled
                // back to revenue by m: total_of_lowest(q·m) / q.
                let mut sorted = nonzero.to_vec();
                sorted.sort_unstable_by(|a, b| a.total_cmp(b));
                let zeros = (m - nonzero.len()) as f64;
                let mut mass = q * m as f64 - zeros; // units left after zeros
                let mut total = 0.0;
                for &p in &sorted {
                    if mass <= 0.0 {
                        break;
                    }
                    total += p * mass.min(1.0);
                    mass -= 1.0;
                }
                total / q
            }
            Objective::Quantile(q) => {
                // Lower q-quantile of the m-user payment distribution,
                // scaled by m. Rank ceil(q·m) (1-based, ascending).
                let rank = (q * m as f64).ceil().max(1.0) as usize;
                let zeros = m - nonzero.len();
                if rank <= zeros {
                    return 0.0;
                }
                let mut sorted = nonzero.to_vec();
                sorted.sort_unstable_by(|a, b| a.total_cmp(b));
                let idx = (rank - zeros - 1).min(sorted.len().saturating_sub(1));
                m as f64 * sorted[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for obj in [Objective::Mean, Objective::Cvar(0.9), Objective::Quantile(0.25)] {
            assert_eq!(Objective::parse(&obj.name()).unwrap(), obj);
            assert_eq!(Objective::parse(&obj.id_fragment()).unwrap(), obj);
        }
        assert_eq!(Objective::parse("MEAN").unwrap(), Objective::Mean);
        assert_eq!(Objective::parse(" cvar:1 ").unwrap(), Objective::Cvar(1.0));
        assert!(Objective::parse("cvar:0").is_err());
        assert!(Objective::parse("quantile:1").is_err());
        assert!(Objective::parse("median").is_err());
        assert!(Objective::parse("cvar:abc").is_err());
    }

    #[test]
    fn cvar_at_one_is_mean_bitwise() {
        for buyers in [0.0, 1.0, 2.5, 317.0] {
            for m in [1.0, 10.0, 1e6] {
                let mean = Objective::Mean.base_buyers(buyers, m);
                let cvar = Objective::Cvar(1.0).base_buyers(buyers, m);
                assert_eq!(mean.to_bits(), cvar.to_bits());
            }
        }
    }

    #[test]
    fn base_buyers_two_point_semantics() {
        // 10 interested, 4 buy. CVaR 0.8: lowest 8 units hold 6 zeros +
        // 2 payments → 2p/0.8 = 2.5p worth of base.
        let b = Objective::Cvar(0.8).base_buyers(4.0, 10.0);
        assert!((b - 2.5).abs() < 1e-12);
        // CVaR 0.5: lowest 5 units are all zeros (6 non-buyers) → 0.
        assert_eq!(Objective::Cvar(0.5).base_buyers(4.0, 10.0), 0.0);
        // Quantile 0.7: 6 zeros, rank 7 is a payment → base m = 10.
        assert_eq!(Objective::Quantile(0.7).base_buyers(4.0, 10.0), 10.0);
        // Quantile 0.6: rank 6 is still a zero → 0.
        assert_eq!(Objective::Quantile(0.6).base_buyers(4.0, 10.0), 0.0);
    }

    #[test]
    fn score_payments_matches_base_on_two_point_lists() {
        // 7 interested users, 3 paid 5.0 — compare the empirical scorer
        // against the closed form across objectives and levels.
        let paid = [5.0, 5.0, 5.0];
        for obj in [
            Objective::Mean,
            Objective::Cvar(0.3),
            Objective::Cvar(0.6),
            Objective::Cvar(0.95),
            Objective::Cvar(1.0),
            Objective::Quantile(0.5),
            Objective::Quantile(0.6),
            Objective::Quantile(0.99),
        ] {
            let closed = 5.0 * obj.base_buyers(3.0, 7.0);
            let empirical = obj.score_payments(&paid, 7);
            assert!(
                (closed - empirical).abs() < 1e-9,
                "{obj:?}: closed {closed} vs empirical {empirical}"
            );
        }
    }

    #[test]
    fn score_payments_heterogeneous() {
        // 4 interested: payments {0, 1, 2, 4}. CVaR 0.5 → lowest 2 units
        // = {0, 1} → (0+1)/0.5 = 2. Quantile 0.75 → rank 3 value 2 → 8.
        let paid = [4.0, 1.0, 2.0];
        assert!((Objective::Cvar(0.5).score_payments(&paid, 4) - 2.0).abs() < 1e-12);
        assert!((Objective::Quantile(0.75).score_payments(&paid, 4) - 8.0).abs() < 1e-12);
        // Mean is the plain sum.
        assert_eq!(Objective::Mean.score_payments(&paid, 4), 7.0);
        // CVaR 1.0 covers all mass → the sum, like mean.
        assert!((Objective::Cvar(1.0).score_payments(&paid, 4) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_separate_variants() {
        let fps: Vec<u64> = [
            Objective::Mean,
            Objective::Cvar(1.0),
            Objective::Cvar(0.9),
            Objective::Quantile(0.9),
            Objective::Quantile(0.5),
        ]
        .iter()
        .map(|o| {
            let mut fp = crate::fingerprint::Fingerprinter::new("obj-test");
            o.write_fingerprint(&mut fp);
            fp.finish()
        })
        .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "objectives {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "CVaR level")]
    fn validate_rejects_zero_cvar() {
        Objective::Cvar(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn validate_rejects_unit_quantile() {
        Objective::Quantile(1.0).validate();
    }
}
