//! The stochastic adoption model (Section 4.1, Eq. 6).
//!
//! `P(ν_{u,b} = 1 | p_b, w_{u,b}) = 1 / (1 + exp{−γ(α·w − p + ε)})`
//!
//! γ controls price sensitivity (γ→∞ degenerates to the deterministic step
//! rule "adopt iff w ≥ p" used by classical bundling work), α shifts the
//! curve to model bias toward (α>1) or against (α<1) adoption, and the tiny
//! ε breaks the tie at `w = p` in favour of adoption.

use crate::params::Params;
use rand::Rng;

/// Adoption probability model; cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdoptionModel {
    /// Price sensitivity γ.
    pub gamma: f64,
    /// Adoption bias α.
    pub alpha: f64,
    /// Tie-break noise ε.
    pub epsilon: f64,
}

impl AdoptionModel {
    /// Extract the adoption parameters from [`Params`].
    pub fn from_params(p: &Params) -> Self {
        AdoptionModel { gamma: p.gamma, alpha: p.adoption_bias, epsilon: p.epsilon }
    }

    /// True when γ is large enough to behave as the step function.
    pub fn is_step(&self) -> bool {
        self.gamma >= Params::STEP_GAMMA
    }

    /// The sigmoid margin `α·w − p + ε`.
    #[inline]
    pub fn margin(&self, wtp: f64, price: f64) -> f64 {
        self.alpha * wtp - price + self.epsilon
    }

    /// Adoption probability at `price` for a consumer with WTP `wtp`.
    #[inline]
    pub fn probability(&self, wtp: f64, price: f64) -> f64 {
        self.probability_of_margin(self.margin(wtp, price))
    }

    /// Adoption probability given a precomputed margin (used by the mixed
    /// evaluation, whose margin is the add-on margin, not `α·w − p`).
    #[inline]
    pub fn probability_of_margin(&self, margin: f64) -> f64 {
        if self.is_step() {
            // Exact step semantics: adopt iff the margin is non-negative
            // (w ≥ p adopts, matching "willingness to pay exceeds or equals
            // the price").
            return if margin >= 0.0 { 1.0 } else { 0.0 };
        }
        let x = self.gamma * margin;
        // exp saturates gracefully: 1/(1+inf) = 0, 1/(1+0) = 1.
        1.0 / (1.0 + (-x).exp())
    }

    /// Draw an adoption outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, wtp: f64, price: f64) -> bool {
        self.sample_margin(rng, self.margin(wtp, price))
    }

    /// Draw an adoption outcome from a precomputed margin.
    pub fn sample_margin<R: Rng + ?Sized>(&self, rng: &mut R, margin: f64) -> bool {
        let p = self.probability_of_margin(margin);
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            rng.random::<f64>() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sigmoid(gamma: f64) -> AdoptionModel {
        AdoptionModel { gamma, alpha: 1.0, epsilon: 0.0 }
    }

    #[test]
    fn half_probability_at_wtp_equals_price() {
        // Figure 1(a): at p = w = 10 the original sigmoid gives 0.5.
        let m = sigmoid(1.0);
        assert!((m.probability(10.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_price_and_wtp() {
        let m = sigmoid(1.0);
        assert!(m.probability(10.0, 5.0) > m.probability(10.0, 15.0));
        assert!(m.probability(12.0, 10.0) > m.probability(8.0, 10.0));
    }

    #[test]
    fn gamma_sharpens_the_curve() {
        // Figure 1(a): higher γ → steeper; at a fixed price below WTP the
        // sharp curve is closer to 1.
        let soft = sigmoid(0.1);
        let sharp = sigmoid(10.0);
        assert!(sharp.probability(10.0, 8.0) > soft.probability(10.0, 8.0));
        assert!(sharp.probability(10.0, 12.0) < soft.probability(10.0, 12.0));
    }

    #[test]
    fn alpha_biases_adoption() {
        // Figure 1(b): α>1 raises the probability at every price point.
        let base = AdoptionModel { gamma: 1.0, alpha: 1.0, epsilon: 0.0 };
        let pro = AdoptionModel { gamma: 1.0, alpha: 1.25, epsilon: 0.0 };
        let anti = AdoptionModel { gamma: 1.0, alpha: 0.75, epsilon: 0.0 };
        for price in [2.0, 6.0, 10.0, 14.0] {
            assert!(pro.probability(10.0, price) > base.probability(10.0, price));
            assert!(anti.probability(10.0, price) < base.probability(10.0, price));
        }
    }

    #[test]
    fn step_regime_is_exact() {
        let m = AdoptionModel { gamma: 1e6, alpha: 1.0, epsilon: 1e-6 };
        assert!(m.is_step());
        assert_eq!(m.probability(10.0, 10.0), 1.0); // ties adopt
        assert_eq!(m.probability(10.0, 10.0 + 1e-5), 0.0);
        assert_eq!(m.probability(0.0, 5.0), 0.0);
    }

    #[test]
    fn extreme_sigmoid_saturates_without_nan() {
        let m = sigmoid(50.0);
        assert_eq!(m.probability(1000.0, 0.0), 1.0);
        assert!(m.probability(0.0, 1000.0) < 1e-300);
        assert!(m.probability(0.0, 1000.0) >= 0.0);
    }

    #[test]
    fn sampling_tracks_probability() {
        let m = sigmoid(1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let hits = (0..n).filter(|_| m.sample(&mut rng, 10.0, 10.0)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn step_sampling_is_deterministic() {
        let m = AdoptionModel { gamma: 1e7, alpha: 1.0, epsilon: 1e-6 };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.sample(&mut rng, 10.0, 9.0));
        assert!(!m.sample(&mut rng, 10.0, 11.0));
    }
}
