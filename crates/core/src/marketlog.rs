//! `MarketLog` — event-sourced churn over an immutable market
//! (`DESIGN.md` §10).
//!
//! A live market is not rebuilt, it *drifts*: users arrive, ratings
//! change, items launch and retire. [`MarketLog`] captures that drift as
//! an append-only log of typed [`Event`]s over a **base** market whose
//! WTP matrix is a pristine dual-CSR arena, and reduces the log to a
//! **canonical net overlay** — a `BTreeMap` of per-cell overrides plus
//! grown dimensions and retirement tombstones. Two consequences fall out
//! of keeping the overlay canonical rather than replaying raw events:
//!
//! * [`MarketLog::snapshot`] materializes a [`Market`] whose matrix
//!   layers the overlay over the shared arena without copying it
//!   (touched rows/columns are merged, untouched slices read the arena
//!   zero-copy), and every read, total, and content fingerprint of the
//!   snapshot is **bit-identical** to a market cold-rebuilt from the
//!   post-churn triples;
//! * [`MarketLog::fingerprint`] yields a
//!   [`DeltaFingerprint`] `(base, delta)` pair under which equivalent
//!   histories collide (an upsert later deleted cancels; re-upserting
//!   the base value cancels) and every effective event separates.
//!
//! Compaction ([`MarketLog::compact`], [`MarketLog::maybe_compact`])
//! folds the overlay into a fresh arena once churn crosses a size
//! threshold; reads are unchanged, only the `(base, delta)` split moves.
//! The engine's solve cache keys on the *content* fingerprint of each
//! (sub-)market, so a snapshot after churn invalidates exactly the sweep
//! cells whose cohorts contain touched users/items — the
//! cache-invalidation invariant the churn CI leg pins.

use std::collections::{BTreeMap, BTreeSet};

use crate::fingerprint::{DeltaFingerprint, Fingerprinter};
use crate::market::Market;
use crate::wtp::SparseSlice;

/// One typed churn event. Ids are stable across the log's lifetime: axes
/// only grow ([`Event::AddUser`] / [`Event::AddItem`] append ids),
/// retirement tombstones a row/column empty but never renumbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Set `w[user][item]` (insert or overwrite). WTP must be finite and
    /// positive — the same ingestion invariant as the CSR builder.
    UpsertWtp { user: u32, item: u32, wtp: f64 },
    /// Remove the `(user, item)` entry; deleting an absent cell is a no-op.
    DeleteWtp { user: u32, item: u32 },
    /// Append a new consumer (id = current user count).
    AddUser,
    /// Append a new item (id = current item count). `listed_price` must be
    /// present iff the base market carries listed prices.
    AddItem { listed_price: Option<f64> },
    /// Drop every entry of the user's row and refuse further ratings for
    /// the id. Idempotent.
    RetireUser { user: u32 },
    /// Drop every entry of the item's column and refuse further ratings
    /// for the id. Idempotent.
    RetireItem { item: u32 },
}

/// Append-only churn log over a base [`Market`] (module docs). Cheap to
/// clone (the base arena is shared).
#[derive(Debug, Clone)]
pub struct MarketLog {
    /// Base market; its matrix is always a pristine arena (no view, no
    /// overlay) — [`MarketLog::new`] compacts anything else.
    base: Market,
    /// Full event history since construction (kept across compaction).
    // audit: allow(fingerprint-coverage) history is not state: equivalent histories must share one fingerprint (module docs)
    events: Vec<Event>,
    /// Canonical net per-cell overrides vs the base arena:
    /// `Some(w)` = upsert, `None` = delete. An override equal to the base
    /// content is removed, so equivalent histories share one overlay.
    overrides: BTreeMap<(u32, u32), Option<f64>>,
    /// Post-churn dimensions (≥ the base's).
    n_users: usize,
    n_items: usize,
    /// Listed prices of grown items (present entries iff the base is
    /// priced); `new_listed[k]` prices item `base_n_items + k`.
    new_listed: Vec<f64>,
    retired_users: BTreeSet<u32>,
    retired_items: BTreeSet<u32>,
}

/// Merge one base slice with its ascending `(minor, override)` list:
/// overrides win (`Some` replaces, `None` drops), untouched base entries
/// pass through, output minor ids ascending.
fn merge_axis(base: SparseSlice<'_>, ovr: &[(u32, Option<f64>)]) -> (Vec<u32>, Vec<f64>) {
    let mut ids = Vec::with_capacity(base.len() + ovr.len());
    let mut vals = Vec::with_capacity(base.len() + ovr.len());
    let mut b = 0usize;
    for &(id, v) in ovr {
        while b < base.ids.len() && base.ids[b] < id {
            ids.push(base.ids[b]);
            vals.push(base.values[b]);
            b += 1;
        }
        if b < base.ids.len() && base.ids[b] == id {
            b += 1; // overridden
        }
        if let Some(w) = v {
            ids.push(id);
            vals.push(w);
        }
    }
    while b < base.ids.len() {
        ids.push(base.ids[b]);
        vals.push(base.values[b]);
        b += 1;
    }
    (ids, vals)
}

impl MarketLog {
    /// Start a log over `base`. If the base matrix is a view or already
    /// carries an overlay it is compacted into a fresh arena first, so
    /// the log's overlay always layers over pristine storage.
    pub fn new(base: Market) -> Self {
        let base = if base.wtp().is_view() || base.wtp().has_delta() {
            let compacted = base.wtp().compact();
            base.with_wtp(compacted)
        } else {
            base
        };
        let n_users = base.n_users();
        let n_items = base.n_items();
        MarketLog {
            base,
            events: Vec::new(),
            overrides: BTreeMap::new(),
            n_users,
            n_items,
            new_listed: Vec::new(),
            retired_users: BTreeSet::new(),
            retired_items: BTreeSet::new(),
        }
    }

    /// Rebuild a log by applying `events` in order over `base` — the
    /// from-scratch path the replay proptests compare against.
    pub fn replay(base: Market, events: &[Event]) -> Result<Self, String> {
        let mut log = MarketLog::new(base);
        log.apply_batch(events.iter().copied())?;
        Ok(log)
    }

    /// The (compacted) base market the overlay layers over.
    pub fn base(&self) -> &Market {
        &self.base
    }

    /// Full event history since construction.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Post-churn consumer count.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Post-churn item count.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Net overrides currently pending vs the base arena (0 right after
    /// construction or compaction).
    pub fn pending_overrides(&self) -> usize {
        self.overrides.len()
    }

    /// True when the id is retired (tombstoned).
    pub fn is_user_retired(&self, user: u32) -> bool {
        self.retired_users.contains(&user)
    }

    /// True when the id is retired (tombstoned).
    pub fn is_item_retired(&self, item: u32) -> bool {
        self.retired_items.contains(&item)
    }

    /// Base-arena content of one cell (0.0 when absent or beyond the
    /// base's dimensions).
    fn base_get(&self, user: u32, item: u32) -> f64 {
        let bw = self.base.wtp();
        if (user as usize) < bw.n_users() && (item as usize) < bw.n_items() {
            bw.get(user, item)
        } else {
            0.0
        }
    }

    /// Canonical delete of one cell: override with `None` when the base
    /// stores the cell, drop any pending override otherwise.
    fn delete_cell(&mut self, user: u32, item: u32) {
        if self.base_get(user, item) > 0.0 {
            self.overrides.insert((user, item), None);
        } else {
            self.overrides.remove(&(user, item));
        }
    }

    /// Current (post-churn) row of a user as `(item, wtp)` pairs, items
    /// ascending.
    fn current_row(&self, user: u32) -> (Vec<u32>, Vec<f64>) {
        let bw = self.base.wtp();
        let base = if (user as usize) < bw.n_users() {
            bw.row(user)
        } else {
            SparseSlice { ids: &[], values: &[] }
        };
        let ovr: Vec<(u32, Option<f64>)> = self
            .overrides
            .range((user, 0)..=(user, u32::MAX))
            .map(|(&(_, i), &v)| (i, v))
            .collect();
        merge_axis(base, &ovr)
    }

    /// Current (post-churn) column of an item as `(user, wtp)` pairs,
    /// users ascending. O(overrides) — fine for log maintenance; bulk
    /// reads go through [`Self::snapshot`].
    fn current_col(&self, item: u32) -> (Vec<u32>, Vec<f64>) {
        let bw = self.base.wtp();
        let base = if (item as usize) < bw.n_items() {
            bw.col(item)
        } else {
            SparseSlice { ids: &[], values: &[] }
        };
        let ovr: Vec<(u32, Option<f64>)> = self
            .overrides
            .iter()
            .filter(|(&(_, i), _)| i == item)
            .map(|(&(u, _), &v)| (u, v))
            .collect();
        merge_axis(base, &ovr)
    }

    /// Apply one event; on success it is appended to the history. Errors
    /// (out-of-range or retired ids, invalid WTP/price) leave the log
    /// untouched.
    pub fn apply(&mut self, event: Event) -> Result<(), String> {
        match event {
            Event::UpsertWtp { user, item, wtp } => {
                if !(wtp.is_finite() && wtp > 0.0) {
                    return Err(format!(
                        "WTP for (user {user}, item {item}) must be finite and positive, got {wtp}"
                    ));
                }
                self.check_user(user)?;
                self.check_item(item)?;
                if self.retired_users.contains(&user) {
                    return Err(format!("user {user} is retired"));
                }
                if self.retired_items.contains(&item) {
                    return Err(format!("item {item} is retired"));
                }
                // Canonical form: re-upserting the base content (bit-equal)
                // cancels any pending override for the cell.
                if self.base_get(user, item).to_bits() == wtp.to_bits() {
                    self.overrides.remove(&(user, item));
                } else {
                    self.overrides.insert((user, item), Some(wtp));
                }
            }
            Event::DeleteWtp { user, item } => {
                self.check_user(user)?;
                self.check_item(item)?;
                self.delete_cell(user, item);
            }
            Event::AddUser => {
                self.n_users += 1;
            }
            Event::AddItem { listed_price } => {
                match (self.base.wtp().has_listed_prices(), listed_price) {
                    (true, Some(p)) => {
                        if !(p.is_finite() && p > 0.0) {
                            return Err(format!(
                                "listed price must be finite and positive, got {p}"
                            ));
                        }
                        self.new_listed.push(p);
                    }
                    (false, None) => {}
                    (true, None) => {
                        return Err("base market is priced: AddItem needs a listed price".into())
                    }
                    (false, Some(_)) => {
                        return Err("base market is unpriced: AddItem must not carry a price".into())
                    }
                }
                self.n_items += 1;
            }
            Event::RetireUser { user } => {
                self.check_user(user)?;
                if self.retired_users.insert(user) {
                    let (items, _) = self.current_row(user);
                    for i in items {
                        self.delete_cell(user, i);
                    }
                }
            }
            Event::RetireItem { item } => {
                self.check_item(item)?;
                if self.retired_items.insert(item) {
                    let (users, _) = self.current_col(item);
                    for u in users {
                        self.delete_cell(u, item);
                    }
                }
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Apply a batch in order; stops at (and reports) the first error,
    /// keeping every event applied before it.
    pub fn apply_batch(&mut self, events: impl IntoIterator<Item = Event>) -> Result<(), String> {
        for e in events {
            self.apply(e)?;
        }
        Ok(())
    }

    /// Append a consumer and return its id.
    pub fn add_user(&mut self) -> u32 {
        self.apply(Event::AddUser).expect("AddUser cannot fail");
        (self.n_users - 1) as u32
    }

    /// Append an item and return its id.
    pub fn add_item(&mut self, listed_price: Option<f64>) -> Result<u32, String> {
        self.apply(Event::AddItem { listed_price })?;
        Ok((self.n_items - 1) as u32)
    }

    fn check_user(&self, user: u32) -> Result<(), String> {
        if (user as usize) < self.n_users {
            Ok(())
        } else {
            Err(format!("user {user} out of range ({} users)", self.n_users))
        }
    }

    fn check_item(&self, item: u32) -> Result<(), String> {
        if (item as usize) < self.n_items {
            Ok(())
        } else {
            Err(format!("item {item} out of range ({} items)", self.n_items))
        }
    }

    /// Users whose post-churn row differs from the base arena (plus every
    /// grown id), ascending — the invalidation set engine-side incremental
    /// re-solves key on.
    pub fn touched_users(&self) -> Vec<u32> {
        let mut set: BTreeSet<u32> = self.overrides.keys().map(|&(u, _)| u).collect();
        set.extend(self.base.n_users() as u32..self.n_users as u32);
        set.into_iter().collect()
    }

    /// Items whose post-churn column differs from the base arena (plus
    /// every grown id), ascending — the set configurator passes re-score
    /// against.
    pub fn touched_items(&self) -> Vec<u32> {
        let mut set: BTreeSet<u32> = self.overrides.keys().map(|&(_, i)| i).collect();
        set.extend(self.base.n_items() as u32..self.n_items as u32);
        set.into_iter().collect()
    }

    /// Materialize the post-churn market: the base arena plus a merged
    /// delta overlay, zero-copy on every untouched row/column. Reads,
    /// totals, and content fingerprints are bit-identical to a market
    /// rebuilt cold from the post-churn triples.
    pub fn snapshot(&self) -> Market {
        // No pending churn (fresh or just-compacted log): the base IS the
        // snapshot — no overlay to layer.
        if self.overrides.is_empty()
            && self.n_users == self.base.n_users()
            && self.n_items == self.base.n_items()
        {
            return self.base.clone();
        }
        let bw = self.base.wtp();
        let (bnu, bni) = (bw.n_users(), bw.n_items());

        let mut row_ovr: BTreeMap<u32, Vec<(u32, Option<f64>)>> = BTreeMap::new();
        let mut col_ovr: BTreeMap<u32, Vec<(u32, Option<f64>)>> = BTreeMap::new();
        // BTreeMap iterates (user, item) ascending, so each row list is
        // ascending in item and each column list ascending in user.
        for (&(u, i), &v) in &self.overrides {
            row_ovr.entry(u).or_default().push((i, v));
            col_ovr.entry(i).or_default().push((u, v));
        }

        let mut touched_u: BTreeSet<u32> = row_ovr.keys().copied().collect();
        touched_u.extend(bnu as u32..self.n_users as u32);
        let touched_rows: Vec<(u32, Vec<u32>, Vec<f64>)> = touched_u
            .iter()
            .map(|&u| {
                let base = if (u as usize) < bnu {
                    bw.row(u)
                } else {
                    SparseSlice { ids: &[], values: &[] }
                };
                let ovr = row_ovr.get(&u).map_or(&[][..], Vec::as_slice);
                let (ids, vals) = merge_axis(base, ovr);
                (u, ids, vals)
            })
            .collect();

        let mut touched_i: BTreeSet<u32> = col_ovr.keys().copied().collect();
        touched_i.extend(bni as u32..self.n_items as u32);
        let touched_cols: Vec<(u32, Vec<u32>, Vec<f64>)> = touched_i
            .iter()
            .map(|&i| {
                let base = if (i as usize) < bni {
                    bw.col(i)
                } else {
                    SparseSlice { ids: &[], values: &[] }
                };
                let ovr = col_ovr.get(&i).map_or(&[][..], Vec::as_slice);
                let (ids, vals) = merge_axis(base, ovr);
                (i, ids, vals)
            })
            .collect();

        let listed = if bw.has_listed_prices() {
            Some(
                (0..self.n_items)
                    .map(|i| {
                        if i < bni {
                            bw.listed_price(i as u32).expect("base is priced")
                        } else {
                            self.new_listed[i - bni]
                        }
                    })
                    .collect(),
            )
        } else {
            None
        };

        let wtp = bw.with_overlay(self.n_users, self.n_items, touched_rows, touched_cols, listed);
        self.base.with_wtp(wtp)
    }

    /// Fold the pending overlay into a fresh arena. Reads are unchanged
    /// (bit-identical before and after); the `(base, delta)` fingerprint
    /// moves churn from the delta half into the base half. The event
    /// history and retirement tombstones are kept.
    pub fn compact(&mut self) {
        let snap = self.snapshot();
        let compacted = snap.wtp().compact();
        self.base = self.base.with_wtp(compacted);
        self.overrides.clear();
        self.new_listed.clear();
    }

    /// Compact when pending churn (overrides + grown ids) reaches
    /// `max_delta_frac` of the base arena's stored entries (at least 1).
    /// Returns whether compaction ran.
    pub fn maybe_compact(&mut self, max_delta_frac: f64) -> bool {
        let grown = (self.n_users - self.base.n_users()) + (self.n_items - self.base.n_items());
        let pending = self.overrides.len() + grown;
        let threshold = (self.base.wtp().nnz() as f64 * max_delta_frac).max(1.0);
        if (pending as f64) >= threshold {
            self.compact();
            true
        } else {
            false
        }
    }

    /// The `(base, delta)` content identity of this log (`DESIGN.md`
    /// §10): the base half is the base market's content fingerprint, the
    /// delta half digests the canonical overlay (dimensions, overrides in
    /// cell order, grown-item prices, tombstones). Equivalent histories
    /// collide; every effective event separates.
    pub fn fingerprint(&self) -> DeltaFingerprint {
        let mut fp = Fingerprinter::new("marketlog-delta");
        fp.write_usize(self.n_users);
        fp.write_usize(self.n_items);
        fp.write_usize(self.overrides.len());
        for (&(u, i), v) in &self.overrides {
            fp.write_u32(u);
            fp.write_u32(i);
            match v {
                Some(w) => {
                    fp.write_u32(1);
                    fp.write_f64(*w);
                }
                None => fp.write_u32(0),
            }
        }
        fp.write_usize(self.new_listed.len());
        for &p in &self.new_listed {
            fp.write_f64(p);
        }
        fp.write_usize(self.retired_users.len());
        for &u in &self.retired_users {
            fp.write_u32(u);
        }
        fp.write_usize(self.retired_items.len());
        for &i in &self.retired_items {
            fp.write_u32(i);
        }
        DeltaFingerprint { base: self.base.fingerprint(), delta: fp.finish() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    /// Cold rebuild of the log's current content from dense rows.
    fn cold(log: &MarketLog) -> Market {
        let snap = log.snapshot();
        let mut dense = vec![vec![0.0; log.n_items()]; log.n_users()];
        for u in 0..log.n_users() as u32 {
            for (i, w) in snap.wtp().row(u).iter() {
                dense[u as usize][i as usize] = w;
            }
        }
        log.base().with_wtp(WtpMatrix::from_rows(dense))
    }

    #[test]
    fn snapshot_matches_cold_rebuild_bit_for_bit() {
        let mut log = MarketLog::new(table1());
        log.apply_batch([
            Event::UpsertWtp { user: 1, item: 0, wtp: 9.5 },
            Event::DeleteWtp { user: 0, item: 1 },
            Event::AddUser,
            Event::UpsertWtp { user: 3, item: 1, wtp: 6.0 },
        ])
        .unwrap();
        let snap = log.snapshot();
        let rebuilt = cold(&log);
        assert_eq!(snap.wtp(), rebuilt.wtp());
        assert_eq!(snap.fingerprint(), rebuilt.fingerprint());
        assert_eq!(snap.total_wtp().to_bits(), rebuilt.total_wtp().to_bits());
        assert_eq!(snap.n_users(), 4);
        assert!(snap.wtp().has_delta());
    }

    #[test]
    fn compaction_is_identity_on_reads_and_fingerprints() {
        let mut log = MarketLog::new(table1());
        log.apply(Event::UpsertWtp { user: 2, item: 0, wtp: 7.25 }).unwrap();
        log.apply(Event::RetireUser { user: 0 }).unwrap();
        let before = log.snapshot();
        let fp_before = log.fingerprint();
        log.compact();
        let after = log.snapshot();
        assert_eq!(log.pending_overrides(), 0);
        assert!(!after.wtp().has_delta(), "compacted snapshot has no overlay");
        assert_eq!(before.wtp(), after.wtp());
        assert_eq!(before.fingerprint(), after.fingerprint());
        // The (base, delta) split moved, the combined content did not.
        let fp_after = log.fingerprint();
        assert_ne!(fp_before.base, fp_after.base);
        assert_ne!(fp_before, fp_after);
    }

    #[test]
    fn equivalent_histories_collide_and_effective_events_separate() {
        let base = table1();
        let empty = MarketLog::new(base.clone()).fingerprint();

        // Upsert then delete cancels (cell absent in base).
        let mut log = MarketLog::new(base.clone());
        log.apply(Event::UpsertWtp { user: 1, item: 0, wtp: 3.0 }).unwrap();
        assert_ne!(log.fingerprint(), empty);
        log.apply(Event::UpsertWtp { user: 1, item: 0, wtp: 8.0 }).unwrap(); // base value
        assert_eq!(log.fingerprint(), empty);

        // Delete then re-upsert of the base value cancels too.
        let mut log = MarketLog::new(base.clone());
        log.apply(Event::DeleteWtp { user: 0, item: 1 }).unwrap();
        assert_ne!(log.fingerprint(), empty);
        log.apply(Event::UpsertWtp { user: 0, item: 1, wtp: 4.0 }).unwrap();
        assert_eq!(log.fingerprint(), empty);

        // Every event type separates from the empty log.
        for e in [
            Event::UpsertWtp { user: 0, item: 0, wtp: 1.0 },
            Event::DeleteWtp { user: 0, item: 0 },
            Event::AddUser,
            Event::AddItem { listed_price: None },
            Event::RetireUser { user: 1 },
            Event::RetireItem { item: 1 },
        ] {
            let mut log = MarketLog::new(base.clone());
            log.apply(e).unwrap();
            assert_ne!(log.fingerprint(), empty, "{e:?} must separate");
        }
    }

    #[test]
    fn retirement_tombstones_and_refuses_new_ratings() {
        let mut log = MarketLog::new(table1());
        log.apply(Event::RetireUser { user: 1 }).unwrap();
        let snap = log.snapshot();
        assert!(snap.wtp().row(1).is_empty());
        assert_eq!(snap.n_users(), 3, "retirement never renumbers");
        let err = log.apply(Event::UpsertWtp { user: 1, item: 0, wtp: 2.0 }).unwrap_err();
        assert!(err.contains("retired"), "{err}");
        // Idempotent.
        let fp = log.fingerprint();
        log.apply(Event::RetireUser { user: 1 }).unwrap();
        assert_eq!(log.fingerprint(), fp);

        log.apply(Event::RetireItem { item: 0 }).unwrap();
        let snap = log.snapshot();
        assert!(snap.wtp().col(0).is_empty());
        assert_eq!(snap.wtp().nnz(), 2); // (0,1) and (2,1) survive
    }

    #[test]
    fn touched_sets_cover_overrides_and_growth() {
        let mut log = MarketLog::new(table1());
        log.apply(Event::UpsertWtp { user: 2, item: 1, wtp: 1.5 }).unwrap();
        log.add_user();
        log.add_item(None).unwrap();
        assert_eq!(log.touched_users(), vec![2, 3]);
        assert_eq!(log.touched_items(), vec![1, 2]);
    }

    #[test]
    fn replay_equals_incremental_application() {
        let events = [
            Event::AddUser,
            Event::UpsertWtp { user: 3, item: 0, wtp: 2.5 },
            Event::UpsertWtp { user: 0, item: 0, wtp: 11.0 },
            Event::RetireItem { item: 1 },
        ];
        let mut a = MarketLog::new(table1());
        a.apply_batch(events).unwrap();
        let b = MarketLog::replay(table1(), &events).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.snapshot().wtp(), b.snapshot().wtp());
    }

    #[test]
    fn priced_base_requires_priced_additions() {
        let w = WtpMatrix::from_ratings(2, 1, vec![(0u32, 0u32, 5u8), (1, 0, 3)], &[10.0], 1.25);
        let mut log = MarketLog::new(Market::new(w, Params::default()));
        assert!(log.add_item(None).is_err());
        let id = log.add_item(Some(19.99)).unwrap();
        assert_eq!(id, 1);
        let snap = log.snapshot();
        assert_eq!(snap.wtp().listed_price(1), Some(19.99));

        let mut unpriced = MarketLog::new(table1());
        assert!(unpriced.add_item(Some(1.0)).is_err());
    }

    #[test]
    fn errors_leave_the_log_untouched() {
        let mut log = MarketLog::new(table1());
        let fp = log.fingerprint();
        assert!(log.apply(Event::UpsertWtp { user: 9, item: 0, wtp: 1.0 }).is_err());
        assert!(log.apply(Event::UpsertWtp { user: 0, item: 9, wtp: 1.0 }).is_err());
        assert!(log.apply(Event::UpsertWtp { user: 0, item: 0, wtp: f64::NAN }).is_err());
        assert!(log.apply(Event::UpsertWtp { user: 0, item: 0, wtp: -1.0 }).is_err());
        assert!(log.apply(Event::DeleteWtp { user: 9, item: 0 }).is_err());
        assert!(log.apply(Event::RetireUser { user: 9 }).is_err());
        assert!(log.apply(Event::RetireItem { item: 9 }).is_err());
        assert_eq!(log.fingerprint(), fp);
        assert!(log.events().is_empty());
    }

    #[test]
    fn maybe_compact_uses_the_delta_fraction() {
        let mut log = MarketLog::new(table1()); // 6 stored entries
        log.apply(Event::UpsertWtp { user: 0, item: 0, wtp: 1.0 }).unwrap();
        assert!(!log.maybe_compact(0.5), "1 of 6 entries churned, below 50%");
        log.apply(Event::UpsertWtp { user: 1, item: 1, wtp: 1.0 }).unwrap();
        log.apply(Event::UpsertWtp { user: 2, item: 0, wtp: 1.0 }).unwrap();
        assert!(log.maybe_compact(0.5), "3 of 6 reaches 50%");
        assert_eq!(log.pending_overrides(), 0);
    }
}
