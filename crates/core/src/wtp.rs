//! The willingness-to-pay matrix `W` and the ratings→WTP conversion.
//!
//! Storage is a **flat dual-CSR arena** (`DESIGN.md` §7): one contiguous
//! `indptr`/`indices`/`values` triple per orientation (item-major columns
//! and user-major rows), built once from `(user, item, wtp)` triples and
//! shared behind an [`std::sync::Arc`]. A [`WtpMatrix`] stacks up to three
//! layers over that arena (`DESIGN.md` §10):
//!
//! 1. the immutable **arena** itself;
//! 2. an optional **delta overlay** ([`crate::marketlog::MarketLog`]'s
//!    snapshot of net churn): touched rows/columns carry merged slices,
//!    untouched slices read the arena zero-copy;
//! 3. an optional **zero-copy view** restricting the (possibly churned)
//!    base to an item and/or user subset with dense remapped ids;
//!    restricted slices are materialized lazily, once, on first access.
//!
//! Iteration order over a column (ascending user) and a row (ascending
//! item) is identical for the arena, every overlay, and every view, which
//! is what preserves the bit-identical determinism contract of `DESIGN.md`
//! §6 across sub-market solves — and what makes a churned snapshot solve
//! bit-identically to a cold rebuild ([`WtpMatrix::compact`]).

use std::sync::{Arc, OnceLock};

/// The shared empty slice (a column/row of an added-but-unrated id).
const EMPTY_SLICE: SparseSlice<'static> = SparseSlice { ids: &[], values: &[] };

/// One CSR orientation: entries of major index `k` live in
/// `indices[indptr[k]..indptr[k+1]]` / `values[..]`, minor ids ascending.
#[derive(Debug, Clone, PartialEq)]
struct CsrHalf {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrHalf {
    fn slice(&self, major: usize) -> SparseSlice<'_> {
        let (lo, hi) = (self.indptr[major], self.indptr[major + 1]);
        SparseSlice { ids: &self.indices[lo..hi], values: &self.values[lo..hi] }
    }
}

/// The immutable dual-CSR arena: both orientations over one entry set.
#[derive(Debug)]
struct WtpStore {
    n_users: usize,
    n_items: usize,
    /// Item-major: per item, the (user, wtp) entries sorted by user.
    cols: CsrHalf,
    /// User-major: per user, the (item, wtp) entries sorted by item.
    rows: CsrHalf,
    /// Σ of all entries — the upper bound of revenue and the denominator of
    /// the revenue-coverage metric (§6.1.2).
    total_wtp: f64,
    /// Listed per-item prices when constructed from ratings data (used by
    /// the "Amazon's pricing" baseline of Table 2).
    listed_prices: Option<Vec<f64>>,
    /// Lazily computed content fingerprint of the whole arena
    /// ([`WtpMatrix::fingerprint`]).
    fingerprint: OnceLock<u64>,
}

/// A borrowed sparse vector: parallel id/value slices, ids strictly
/// ascending. The lending type of [`WtpMatrix::col`] / [`WtpMatrix::row`].
#[derive(Debug, Clone, Copy)]
pub struct SparseSlice<'a> {
    /// Minor ids (users of a column, items of a row), ascending.
    pub ids: &'a [u32],
    /// WTP entries, parallel to `ids`.
    pub values: &'a [f64],
}

impl<'a> SparseSlice<'a> {
    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterate `(id, wtp)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.ids.iter().copied().zip(self.values.iter().copied())
    }

    /// Stored value at `id`, `0.0` if absent (binary search).
    pub fn get(&self, id: u32) -> f64 {
        self.ids.binary_search(&id).map(|k| self.values[k]).unwrap_or(0.0)
    }
}

impl<'a> IntoIterator for SparseSlice<'a> {
    type Item = (u32, f64);
    type IntoIter = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, u32>>,
        std::iter::Copied<std::slice::Iter<'a, f64>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied().zip(self.values.iter().copied())
    }
}

/// Net churn layered over one arena (`DESIGN.md` §10): dimensions may have
/// grown, touched rows/columns carry fully merged `(ids, values)` slices,
/// and every untouched slice still reads the arena zero-copy. Built by
/// [`crate::marketlog::MarketLog::snapshot`]; immutable once built (the
/// log accumulates further churn and snapshots again).
#[derive(Debug)]
struct DeltaOverlay {
    /// Post-churn dimensions, ≥ the arena's (ids are stable; axes only
    /// grow — retirement tombstones, it never renumbers).
    n_users: usize,
    n_items: usize,
    /// User id → index into `rows` (`u32::MAX` = untouched, read arena).
    /// Every id ≥ the arena's user count is touched by construction.
    row_rank: Vec<u32>,
    /// Merged `(items, wtps)` of each touched row, items ascending.
    rows: Vec<(Vec<u32>, Vec<f64>)>,
    /// Item id → index into `cols` (`u32::MAX` = untouched).
    col_rank: Vec<u32>,
    /// Merged `(users, wtps)` of each touched column, users ascending.
    cols: Vec<(Vec<u32>, Vec<f64>)>,
    /// Σ over all post-churn entries, accumulated in (user, item) order —
    /// bit-identical to [`CsrBuilder::finish`] on the rebuilt triples.
    total_wtp: f64,
    /// Stored entries after churn.
    nnz: usize,
    /// Listed prices of the churned matrix (present iff the base has
    /// them; covers grown items too).
    listed_prices: Option<Vec<f64>>,
    /// Lazily computed content fingerprint ([`WtpMatrix::fingerprint`]).
    fingerprint: OnceLock<u64>,
}

/// A restriction of the arena to an item and/or user subset.
///
/// Slices that survive unfiltered stay zero-copy (a column of a
/// user-unrestricted view is the arena's column slice verbatim); slices
/// that need filtering or id remapping are materialized lazily, once, on
/// first access and cached here.
#[derive(Debug)]
struct ViewState {
    /// Local item id → arena item id, strictly ascending.
    item_map: Vec<u32>,
    /// Local user id → arena user id, strictly ascending. Empty sentinel
    /// never occurs: a user restriction always carries the kept ids.
    user_map: Option<Vec<u32>>,
    /// Arena user id → local user id (`u32::MAX` = excluded). Present iff
    /// `user_map` is.
    user_rank: Vec<u32>,
    /// Arena item id → local item id (`u32::MAX` = excluded). Present iff
    /// the item set is restricted.
    item_rank: Vec<u32>,
    /// True when `item_map` is a proper subset / remap of the arena items.
    items_restricted: bool,
    /// Lazily materialized filtered columns (only when users restricted).
    lazy_cols: Vec<OnceLock<(Vec<u32>, Vec<f64>)>>,
    /// Lazily materialized filtered rows (only when items restricted).
    lazy_rows: Vec<OnceLock<(Vec<u32>, Vec<f64>)>>,
    /// Σ of the entries inside the restriction.
    total_wtp: f64,
    /// Lazily computed content fingerprint of the restriction
    /// ([`WtpMatrix::fingerprint`]).
    fingerprint: OnceLock<u64>,
}

/// Sparse `M × N` willingness-to-pay matrix over a shared dual-CSR arena.
/// Zero entries (consumer has no interest in the item) are not stored; both
/// the item-major and the user-major orientation are kept because the
/// algorithms need both. Cloning is cheap (the arena is shared),
/// [`WtpMatrix::restrict`] produces zero-copy sub-matrix views, and a
/// [`crate::marketlog::MarketLog`] snapshot layers a `DeltaOverlay` of
/// net churn between the arena and any view (`DESIGN.md` §10).
#[derive(Debug, Clone)]
pub struct WtpMatrix {
    store: Arc<WtpStore>,
    /// Net churn over the arena; `None` for a pristine arena. Always
    /// applied *before* `view` (a view restricts the churned base).
    delta: Option<Arc<DeltaOverlay>>,
    view: Option<Arc<ViewState>>,
}

/// Logical equality: same dimensions, same stored entries (compared
/// through the column views, so an arena and a view with identical
/// content compare equal), and same listed prices per item.
impl PartialEq for WtpMatrix {
    fn eq(&self, other: &Self) -> bool {
        if self.n_users() != other.n_users() || self.n_items() != other.n_items() {
            return false;
        }
        (0..self.n_items() as u32).all(|i| {
            let (a, b) = (self.col(i), other.col(i));
            a.ids == b.ids && a.values == b.values && self.listed_price(i) == other.listed_price(i)
        })
    }
}

/// Streaming builder for the dual-CSR arena: push `(user, item, wtp)`
/// triples (any order), then [`CsrBuilder::finish`]. Duplicate
/// `(user, item)` pairs are rejected in exactly one place — here — with a
/// clear panic naming the offending pair.
#[derive(Debug)]
pub struct CsrBuilder {
    n_users: usize,
    n_items: usize,
    triples: Vec<(u32, u32, f64)>,
    listed_prices: Option<Vec<f64>>,
}

impl CsrBuilder {
    /// Builder for an `n_users × n_items` matrix.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        CsrBuilder { n_users, n_items, triples: Vec::new(), listed_prices: None }
    }

    /// Pre-size the entry buffer.
    pub fn reserve(&mut self, nnz: usize) {
        self.triples.reserve(nnz);
    }

    /// Attach listed per-item prices (one per item).
    pub fn with_listed_prices(mut self, prices: Vec<f64>) -> Self {
        assert_eq!(prices.len(), self.n_items, "one listed price per item");
        self.listed_prices = Some(prices);
        self
    }

    /// Add one entry. Panics on out-of-range ids or a non-finite /
    /// non-positive WTP — this is the single ingestion point of the whole
    /// store, so a NaN can never reach the pricing hot paths, and the
    /// error names the offending `(user, item)` pair.
    pub fn push(&mut self, user: u32, item: u32, wtp: f64) {
        assert!((user as usize) < self.n_users, "user {user} out of range");
        assert!((item as usize) < self.n_items, "item {item} out of range");
        assert!(
            wtp.is_finite() && wtp > 0.0,
            "WTP for (user {user}, item {item}) must be finite and positive, got {wtp}"
        );
        self.triples.push((user, item, wtp));
    }

    /// Sort, check for duplicates, and assemble both CSR orientations.
    pub fn finish(self) -> WtpMatrix {
        let CsrBuilder { n_users, n_items, mut triples, listed_prices } = self;
        // One global (user, item) sort gives both orientations their order:
        // rows fill sequentially already sorted by item, and the item-major
        // scatter below preserves the ascending-user order inside columns.
        triples.sort_unstable_by_key(|&(u, i, _)| (u, i));
        for w in triples.windows(2) {
            assert!(
                (w[0].0, w[0].1) != (w[1].0, w[1].1),
                "duplicate (user, item) entry: user {}, item {}",
                w[1].0,
                w[1].1
            );
        }
        let nnz = triples.len();
        let mut total = 0.0;

        // Rows: sequential fill from the sorted triples.
        let mut row_indptr = vec![0usize; n_users + 1];
        let mut row_indices = Vec::with_capacity(nnz);
        let mut row_values = Vec::with_capacity(nnz);
        for &(u, i, w) in &triples {
            row_indptr[u as usize + 1] += 1;
            row_indices.push(i);
            row_values.push(w);
            total += w;
        }
        for k in 0..n_users {
            row_indptr[k + 1] += row_indptr[k];
        }

        // Columns: counting scatter. Triples are visited in (user, item)
        // order, so each column receives its users in ascending order.
        let mut col_indptr = vec![0usize; n_items + 1];
        for &(_, i, _) in &triples {
            col_indptr[i as usize + 1] += 1;
        }
        for k in 0..n_items {
            col_indptr[k + 1] += col_indptr[k];
        }
        let mut cursor = col_indptr[..n_items].to_vec();
        let mut col_indices = vec![0u32; nnz];
        let mut col_values = vec![0f64; nnz];
        for &(u, i, w) in &triples {
            let slot = &mut cursor[i as usize];
            col_indices[*slot] = u;
            col_values[*slot] = w;
            *slot += 1;
        }

        WtpMatrix {
            store: Arc::new(WtpStore {
                n_users,
                n_items,
                cols: CsrHalf { indptr: col_indptr, indices: col_indices, values: col_values },
                rows: CsrHalf { indptr: row_indptr, indices: row_indices, values: row_values },
                total_wtp: total,
                listed_prices,
                fingerprint: OnceLock::new(),
            }),
            delta: None,
            view: None,
        }
    }
}

impl WtpMatrix {
    /// Streaming entry point: push triples, then finish.
    pub fn builder(n_users: usize, n_items: usize) -> CsrBuilder {
        CsrBuilder::new(n_users, n_items)
    }

    /// Build from dense rows (`rows[u][i] = w_{u,i}`); all rows must share
    /// one length. Entries must be finite and ≥ 0; zeros are dropped.
    pub fn from_rows(dense: Vec<Vec<f64>>) -> Self {
        let n_users = dense.len();
        let n_items = dense.first().map_or(0, Vec::len);
        let mut b = Self::builder(n_users, n_items);
        for (u, row) in dense.iter().enumerate() {
            assert_eq!(row.len(), n_items, "ragged WTP rows");
            for (i, &w) in row.iter().enumerate() {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "WTP for (user {u}, item {i}) must be finite and >= 0, got {w}"
                );
                if w > 0.0 {
                    b.push(u as u32, i as u32, w);
                }
            }
        }
        b.finish()
    }

    /// Build from sparse `(user, item, wtp)` triples.
    pub fn from_triples(
        n_users: usize,
        n_items: usize,
        triples: Vec<(u32, u32, f64)>,
        listed_prices: Option<Vec<f64>>,
    ) -> Self {
        let mut b = Self::builder(n_users, n_items);
        if let Some(p) = listed_prices {
            b = b.with_listed_prices(p);
        }
        b.reserve(triples.len());
        for (u, i, w) in triples {
            b.push(u, i, w);
        }
        b.finish()
    }

    /// The paper's ratings→WTP map (§6.1.1): a consumer who rated `r` stars
    /// (of `r_max = 5`) an item listed at price `p` is willing to pay
    /// `(r / r_max) · λ · p`. Ratings stream straight into the CSR builder.
    ///
    /// `ratings` yields `(user, item, stars 1..=5)`.
    pub fn from_ratings(
        n_users: usize,
        n_items: usize,
        ratings: impl IntoIterator<Item = (u32, u32, u8)>,
        prices: &[f64],
        lambda: f64,
    ) -> Self {
        assert_eq!(prices.len(), n_items, "one listed price per item");
        assert!(lambda >= 1.0, "lambda must be >= 1");
        const R_MAX: f64 = 5.0;
        let ratings = ratings.into_iter();
        let mut b = Self::builder(n_users, n_items).with_listed_prices(prices.to_vec());
        b.reserve(ratings.size_hint().0);
        for (u, i, stars) in ratings {
            assert!((1..=5).contains(&stars), "stars {stars} out of 1..=5");
            b.push(u, i, (stars as f64 / R_MAX) * lambda * prices[i as usize]);
        }
        b.finish()
    }

    /// Consumer count of the (possibly churned) base under any view.
    fn base_n_users(&self) -> usize {
        self.delta.as_ref().map_or(self.store.n_users, |d| d.n_users)
    }

    /// Item count of the (possibly churned) base under any view.
    fn base_n_items(&self) -> usize {
        self.delta.as_ref().map_or(self.store.n_items, |d| d.n_items)
    }

    /// Column of the churned base in arena/base ids: the merged overlay
    /// slice when touched, the arena slice otherwise.
    fn base_col(&self, item: usize) -> SparseSlice<'_> {
        if let Some(d) = &self.delta {
            let rank = d.col_rank[item];
            if rank != u32::MAX {
                let (ids, values) = &d.cols[rank as usize];
                return SparseSlice { ids, values };
            }
            // Defensive: snapshot construction marks every beyond-arena id
            // touched, so an untouched grown id can only be empty.
            if item >= self.store.n_items {
                return EMPTY_SLICE;
            }
        }
        self.store.cols.slice(item)
    }

    /// Row of the churned base in arena/base ids (see [`Self::base_col`]).
    fn base_row(&self, user: usize) -> SparseSlice<'_> {
        if let Some(d) = &self.delta {
            let rank = d.row_rank[user];
            if rank != u32::MAX {
                let (ids, values) = &d.rows[rank as usize];
                return SparseSlice { ids, values };
            }
            if user >= self.store.n_users {
                return EMPTY_SLICE;
            }
        }
        self.store.rows.slice(user)
    }

    /// Listed price of a base-id item through the overlay, if priced.
    fn base_listed_price(&self, item: usize) -> Option<f64> {
        match &self.delta {
            Some(d) => d.listed_prices.as_ref().map(|p| p[item]),
            None => self.store.listed_prices.as_ref().map(|p| p[item]),
        }
    }

    /// Number of consumers `M` (of the view, if restricted).
    pub fn n_users(&self) -> usize {
        match &self.view {
            Some(v) => v.user_map.as_ref().map_or(self.base_n_users(), Vec::len),
            None => self.base_n_users(),
        }
    }

    /// Number of items `N` (of the view, if restricted).
    pub fn n_items(&self) -> usize {
        match &self.view {
            Some(v) => v.item_map.len(),
            None => self.base_n_items(),
        }
    }

    /// Non-zero entries of item `i`'s column as parallel `(users, wtps)`
    /// slices, users ascending. Zero-copy into the arena unless the view
    /// restricts users, in which case the filtered slice is materialized
    /// once and cached.
    pub fn col(&self, item: u32) -> SparseSlice<'_> {
        match &self.view {
            None => self.base_col(item as usize),
            Some(v) => {
                let arena_item = v.item_map[item as usize] as usize;
                if v.user_map.is_none() {
                    return self.base_col(arena_item);
                }
                let (ids, values) = v.lazy_cols[item as usize].get_or_init(|| {
                    let full = self.base_col(arena_item);
                    let mut ids = Vec::new();
                    let mut vals = Vec::new();
                    for (u, w) in full.iter() {
                        let local = v.user_rank[u as usize];
                        if local != u32::MAX {
                            ids.push(local);
                            vals.push(w);
                        }
                    }
                    (ids, vals)
                });
                SparseSlice { ids, values }
            }
        }
    }

    /// Non-zero entries of user `u`'s row as parallel `(items, wtps)`
    /// slices, items ascending. Zero-copy into the arena unless the view
    /// restricts items, in which case the filtered slice is materialized
    /// once and cached.
    pub fn row(&self, user: u32) -> SparseSlice<'_> {
        match &self.view {
            None => self.base_row(user as usize),
            Some(v) => {
                let arena_user = match &v.user_map {
                    Some(m) => m[user as usize] as usize,
                    None => user as usize,
                };
                if !v.items_restricted {
                    return self.base_row(arena_user);
                }
                let (ids, values) = v.lazy_rows[user as usize].get_or_init(|| {
                    let full = self.base_row(arena_user);
                    let mut ids = Vec::new();
                    let mut vals = Vec::new();
                    for (i, w) in full.iter() {
                        let local = v.item_rank[i as usize];
                        if local != u32::MAX {
                            ids.push(local);
                            vals.push(w);
                        }
                    }
                    (ids, vals)
                });
                SparseSlice { ids, values }
            }
        }
    }

    /// Σ of the stored WTP entries (the coverage denominator) — of the
    /// restriction when this matrix is a view.
    pub fn total_wtp(&self) -> f64 {
        match &self.view {
            Some(v) => v.total_wtp,
            None => self.delta.as_ref().map_or(self.store.total_wtp, |d| d.total_wtp),
        }
    }

    /// Listed price of an item, if the matrix came from ratings data.
    pub fn listed_price(&self, item: u32) -> Option<f64> {
        let arena_item = match &self.view {
            Some(v) => v.item_map[item as usize] as usize,
            None => item as usize,
        };
        self.base_listed_price(arena_item)
    }

    /// A single entry (zero if not stored).
    pub fn get(&self, user: u32, item: u32) -> f64 {
        self.col(item).get(user)
    }

    /// Number of stored (non-zero) entries. O(1) for the arena, O(N) touch
    /// of cached columns for a user-restricted view.
    pub fn nnz(&self) -> usize {
        match &self.view {
            None => self.delta.as_ref().map_or(self.store.cols.indices.len(), |d| d.nnz),
            Some(_) => (0..self.n_items() as u32).map(|i| self.col(i).len()).sum(),
        }
    }

    /// True when this matrix is a restriction of a larger arena.
    pub fn is_view(&self) -> bool {
        self.view.is_some()
    }

    /// True when a delta overlay is layered over the arena.
    pub fn has_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// True when the matrix carries listed per-item prices (a base
    /// property: views and overlays pass it through).
    pub fn has_listed_prices(&self) -> bool {
        match &self.delta {
            Some(d) => d.listed_prices.is_some(),
            None => self.store.listed_prices.is_some(),
        }
    }

    /// Zero-copy restriction to an item subset and/or user subset (arena
    /// ids of `self`; `None` keeps the axis whole). Ids are remapped
    /// densely in ascending order of the original ids, so iteration order
    /// — hence every downstream result — matches a matrix rebuilt from the
    /// restricted triples bit for bit.
    ///
    /// Restricting a view composes: ids are interpreted in the view's
    /// coordinates and resolved back to the arena.
    pub fn restrict(&self, items: Option<&[u32]>, users: Option<&[u32]>) -> WtpMatrix {
        let resolve =
            |subset: Option<&[u32]>, bound: usize, map: &dyn Fn(u32) -> u32| -> Option<Vec<u32>> {
                subset.map(|s| {
                    let mut ids: Vec<u32> = s
                        .iter()
                        .map(|&x| {
                            assert!((x as usize) < bound, "subset id {x} out of range ({bound})");
                            map(x)
                        })
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    ids
                })
            };
        // Resolve the subset through the current view into arena ids.
        let (cur_items, cur_users): (Option<&[u32]>, Option<&[u32]>) = match &self.view {
            Some(v) => (Some(&v.item_map), v.user_map.as_deref()),
            None => (None, None),
        };
        let item_map: Vec<u32> = match resolve(items, self.n_items(), &|x| match cur_items {
            Some(m) => m[x as usize],
            None => x,
        }) {
            Some(m) => m,
            None => match cur_items {
                Some(m) => m.to_vec(),
                None => (0..self.base_n_items() as u32).collect(),
            },
        };
        let user_map: Option<Vec<u32>> =
            match resolve(users, self.n_users(), &|x| match cur_users {
                Some(m) => m[x as usize],
                None => x,
            }) {
                Some(m) => Some(m),
                None => cur_users.map(|m| m.to_vec()),
            };

        let items_restricted = item_map.len() != self.base_n_items()
            || item_map.iter().enumerate().any(|(k, &i)| k as u32 != i);
        let mut item_rank = vec![u32::MAX; self.base_n_items()];
        for (local, &arena) in item_map.iter().enumerate() {
            item_rank[arena as usize] = local as u32;
        }
        let mut user_rank = vec![u32::MAX; self.base_n_users()];
        match &user_map {
            Some(m) => {
                for (local, &arena) in m.iter().enumerate() {
                    user_rank[arena as usize] = local as u32;
                }
            }
            None => {
                for (u, r) in user_rank.iter_mut().enumerate() {
                    *r = u as u32;
                }
            }
        }

        // Σ WTP inside the restriction, accumulated in (user, item) order —
        // the exact order `CsrBuilder::finish` sums a matrix rebuilt from
        // the restricted triples, so the view's total (hence the coverage
        // metric) is bit-identical to the rebuilt market's, not just close.
        let mut total = 0.0;
        let mut add_row = |arena_user: usize| {
            let full = self.base_row(arena_user);
            if items_restricted {
                for (i, w) in full.iter() {
                    if item_rank[i as usize] != u32::MAX {
                        total += w;
                    }
                }
            } else {
                for &w in full.values {
                    total += w;
                }
            }
        };
        match &user_map {
            Some(m) => m.iter().for_each(|&u| add_row(u as usize)),
            None => (0..self.base_n_users()).for_each(&mut add_row),
        }

        let n_local_items = item_map.len();
        let n_local_users = user_map.as_ref().map_or(self.base_n_users(), Vec::len);
        WtpMatrix {
            store: Arc::clone(&self.store),
            delta: self.delta.clone(),
            view: Some(Arc::new(ViewState {
                lazy_cols: if user_map.is_some() {
                    (0..n_local_items).map(|_| OnceLock::new()).collect()
                } else {
                    Vec::new()
                },
                lazy_rows: if items_restricted {
                    (0..n_local_users).map(|_| OnceLock::new()).collect()
                } else {
                    Vec::new()
                },
                item_map,
                user_map,
                user_rank,
                item_rank,
                items_restricted,
                total_wtp: total,
                fingerprint: OnceLock::new(),
            })),
        }
    }

    /// Stable 64-bit **content fingerprint** of this matrix: dimensions,
    /// every stored `(user, item, wtp)` entry (ids and value bits, in
    /// column iteration order), and the listed prices. Logically equal
    /// matrices fingerprint equal — an arena and a view with identical
    /// content, or a view and a matrix rebuilt from the restricted triples,
    /// share one digest — which is what lets the sweep engine's solve cache
    /// (`DESIGN.md` §8) recognize repeated sub-markets across sweep axes.
    ///
    /// Computed once per arena/view and cached (`OnceLock`); for a
    /// user-restricted view the first call materializes every lazy column,
    /// which a subsequent solve would do anyway.
    pub fn fingerprint(&self) -> u64 {
        let slot = match (&self.view, &self.delta) {
            (Some(v), _) => &v.fingerprint,
            (None, Some(d)) => &d.fingerprint,
            (None, None) => &self.store.fingerprint,
        };
        *slot.get_or_init(|| {
            let mut fp = crate::fingerprint::Fingerprinter::new("wtp");
            fp.write_usize(self.n_users());
            fp.write_usize(self.n_items());
            for i in 0..self.n_items() as u32 {
                let col = self.col(i);
                fp.write_usize(col.len());
                for (u, w) in col.iter() {
                    fp.write_u32(u);
                    fp.write_f64(w);
                }
                match self.listed_price(i) {
                    Some(p) => {
                        fp.write_u32(1);
                        fp.write_f64(p);
                    }
                    None => fp.write_u32(0),
                }
            }
            fp.finish()
        })
    }

    /// Rebuild a fresh pristine arena holding this matrix's exact content,
    /// folding in any delta overlay and/or view. Entries are replayed in
    /// (user, item) order through [`CsrBuilder`], so every read, total,
    /// and fingerprint of the result is bit-identical to `self`'s — this
    /// is the compaction step of `DESIGN.md` §10 and the "cold rebuild"
    /// the churn parity tests compare against.
    pub fn compact(&self) -> WtpMatrix {
        let (m, n) = (self.n_users(), self.n_items());
        let mut b = CsrBuilder::new(m, n);
        b.reserve(self.nnz());
        for u in 0..m as u32 {
            for (i, w) in self.row(u).iter() {
                b.push(u, i, w);
            }
        }
        if self.has_listed_prices() {
            let prices = (0..n as u32).map(|i| self.listed_price(i).unwrap()).collect();
            b = b.with_listed_prices(prices);
        }
        b.finish()
    }

    /// Layer a fully merged delta overlay over a pristine arena — the
    /// snapshot constructor of [`crate::marketlog::MarketLog`]. The
    /// touched rows/columns carry the complete *post-churn* slices of
    /// every churned id (ascending id, ascending minor ids inside, the
    /// two orientations mutually consistent), and every id beyond the
    /// arena's dimensions must appear as touched in both orientations.
    /// The overlay's total is accumulated here in (user, item) order so a
    /// snapshot read is bit-identical to [`Self::compact`] of itself.
    pub(crate) fn with_overlay(
        &self,
        n_users: usize,
        n_items: usize,
        touched_rows: Vec<(u32, Vec<u32>, Vec<f64>)>,
        touched_cols: Vec<(u32, Vec<u32>, Vec<f64>)>,
        listed_prices: Option<Vec<f64>>,
    ) -> WtpMatrix {
        assert!(
            self.view.is_none() && self.delta.is_none(),
            "overlay base must be a pristine arena"
        );
        assert!(n_users >= self.store.n_users, "user axis only grows");
        assert!(n_items >= self.store.n_items, "item axis only grows");
        match (&self.store.listed_prices, &listed_prices) {
            (Some(_), Some(p)) => assert_eq!(p.len(), n_items, "one listed price per item"),
            (None, None) => {}
            _ => panic!("overlay listed prices must match the base's presence"),
        }

        let mut row_rank = vec![u32::MAX; n_users];
        let mut rows = Vec::with_capacity(touched_rows.len());
        for (u, ids, vals) in touched_rows {
            debug_assert_eq!(ids.len(), vals.len());
            row_rank[u as usize] = rows.len() as u32;
            rows.push((ids, vals));
        }
        let mut col_rank = vec![u32::MAX; n_items];
        let mut cols = Vec::with_capacity(touched_cols.len());
        for (i, ids, vals) in touched_cols {
            debug_assert_eq!(ids.len(), vals.len());
            col_rank[i as usize] = cols.len() as u32;
            cols.push((ids, vals));
        }
        for (u, &r) in row_rank.iter().enumerate().skip(self.store.n_users) {
            assert!(r != u32::MAX, "grown user {u} must be in the touched set");
        }
        for (i, &r) in col_rank.iter().enumerate().skip(self.store.n_items) {
            assert!(r != u32::MAX, "grown item {i} must be in the touched set");
        }

        // Post-churn Σ and nnz, in the builder's (user, item) order.
        let mut total = 0.0;
        let mut nnz = 0usize;
        for (u, &r) in row_rank.iter().enumerate() {
            let vals: &[f64] =
                if r != u32::MAX { &rows[r as usize].1 } else { self.store.rows.slice(u).values };
            nnz += vals.len();
            for &w in vals {
                total += w;
            }
        }

        WtpMatrix {
            store: Arc::clone(&self.store),
            delta: Some(Arc::new(DeltaOverlay {
                n_users,
                n_items,
                row_rank,
                rows,
                col_rank,
                cols,
                total_wtp: total,
                nnz,
                listed_prices,
                fingerprint: OnceLock::new(),
            })),
            view: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_basic() {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        assert_eq!(w.n_users(), 3);
        assert_eq!(w.n_items(), 2);
        assert_eq!(w.get(0, 0), 12.0);
        assert_eq!(w.get(2, 1), 11.0);
        assert_eq!(w.total_wtp(), 42.0);
        assert_eq!(w.nnz(), 6);
        assert_eq!(w.col(0).len(), 3);
        assert_eq!(w.row(1).ids, &[0, 1]);
        assert_eq!(w.row(1).values, &[8.0, 2.0]);
        let pairs: Vec<(u32, f64)> = w.row(1).iter().collect();
        assert_eq!(pairs, vec![(0, 8.0), (1, 2.0)]);
    }

    #[test]
    fn zeros_are_dropped() {
        let w = WtpMatrix::from_rows(vec![vec![0.0, 3.0]]);
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.get(0, 0), 0.0);
    }

    #[test]
    fn ratings_conversion_matches_paper_example() {
        // λ=1.25, price $10: stars 5,4,3,2,1 → 12.50, 10, 7.50, 5, 2.50.
        let prices = vec![10.0];
        let ratings = vec![(0u32, 0u32, 5u8), (1, 0, 4), (2, 0, 3), (3, 0, 2), (4, 0, 1)];
        let w = WtpMatrix::from_ratings(5, 1, ratings, &prices, 1.25);
        assert!((w.get(0, 0) - 12.5).abs() < 1e-12);
        assert!((w.get(1, 0) - 10.0).abs() < 1e-12);
        assert!((w.get(2, 0) - 7.5).abs() < 1e-12);
        assert!((w.get(3, 0) - 5.0).abs() < 1e-12);
        assert!((w.get(4, 0) - 2.5).abs() < 1e-12);
        assert_eq!(w.listed_price(0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_entries() {
        WtpMatrix::from_triples(1, 1, vec![(0, 0, 1.0), (0, 0, 2.0)], None);
    }

    #[test]
    #[should_panic(expected = "duplicate (user, item) entry: user 3, item 7")]
    fn duplicate_panic_names_the_pair() {
        let mut b = WtpMatrix::builder(5, 9);
        b.push(3, 7, 1.0);
        b.push(2, 7, 1.0);
        b.push(3, 7, 2.5);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "WTP for (user 4, item 2) must be finite and positive, got NaN")]
    fn nan_wtp_rejected_at_ingestion_names_the_pair() {
        // Regression: a NaN slipping past ingestion used to survive all
        // the way to the pricing sort and panic the solve from deep inside
        // `optimize_exact_step`. The builder is the single ingestion point
        // and must reject it immediately, naming the offending pair.
        let mut b = WtpMatrix::builder(6, 4);
        b.push(1, 0, 3.0);
        b.push(4, 2, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "WTP for (user 0, item 1) must be finite and positive")]
    fn infinite_wtp_rejected_at_ingestion() {
        let mut b = WtpMatrix::builder(1, 2);
        b.push(0, 1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        WtpMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_matrix() {
        let w = WtpMatrix::from_rows(vec![]);
        assert_eq!(w.n_users(), 0);
        assert_eq!(w.total_wtp(), 0.0);
    }

    #[test]
    fn builder_order_does_not_matter() {
        let a = WtpMatrix::from_triples(
            3,
            2,
            vec![(2, 1, 5.0), (0, 0, 1.0), (1, 1, 2.0), (0, 1, 3.0)],
            None,
        );
        let b = WtpMatrix::from_triples(
            3,
            2,
            vec![(0, 0, 1.0), (0, 1, 3.0), (1, 1, 2.0), (2, 1, 5.0)],
            None,
        );
        assert_eq!(a, b);
        assert_eq!(a.col(1).ids, &[0, 1, 2]);
    }

    #[test]
    fn restrict_items_is_zero_copy_on_columns() {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0, 7.0], vec![8.0, 2.0, 0.0]]);
        let v = w.restrict(Some(&[2, 0]), None);
        assert_eq!(v.n_items(), 2);
        assert_eq!(v.n_users(), 2);
        // Local item 0 = arena item 0, local item 1 = arena item 2 (sorted).
        assert_eq!(v.col(0).values, w.col(0).values);
        assert_eq!(v.col(1).values, w.col(2).values);
        assert_eq!(v.total_wtp(), 12.0 + 8.0 + 7.0);
        // Rows are remapped to local item ids.
        assert_eq!(v.row(0).ids, &[0, 1]);
        assert_eq!(v.row(0).values, &[12.0, 7.0]);
        assert_eq!(v.row(1).ids, &[0]);
    }

    #[test]
    fn restrict_users_remaps_columns() {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        let v = w.restrict(None, Some(&[2, 0]));
        assert_eq!(v.n_users(), 2);
        assert_eq!(v.col(0).ids, &[0, 1]); // local ids for arena users 0, 2
        assert_eq!(v.col(0).values, &[12.0, 5.0]);
        assert_eq!(v.row(1).values, &[5.0, 11.0]); // local user 1 = arena 2
        assert_eq!(v.total_wtp(), 32.0);
        assert_eq!(v.nnz(), 4);
        assert!(v.is_view());
    }

    #[test]
    fn restrict_composes() {
        let w = WtpMatrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let v1 = w.restrict(Some(&[1, 2]), Some(&[0, 2]));
        // v1 local item 1 = arena item 2; v1 local user 1 = arena user 2.
        let v2 = v1.restrict(Some(&[1]), Some(&[1]));
        assert_eq!(v2.n_items(), 1);
        assert_eq!(v2.n_users(), 1);
        assert_eq!(v2.get(0, 0), 9.0);
        assert_eq!(v2.total_wtp(), 9.0);
    }

    #[test]
    fn view_equals_rebuilt_matrix() {
        let w = WtpMatrix::from_rows(vec![
            vec![1.0, 0.0, 3.0, 4.0],
            vec![0.0, 5.0, 6.0, 0.0],
            vec![7.0, 8.0, 0.0, 9.0],
        ]);
        let v = w.restrict(Some(&[0, 2, 3]), Some(&[0, 2]));
        let rebuilt = WtpMatrix::from_rows(vec![vec![1.0, 3.0, 4.0], vec![7.0, 0.0, 9.0]]);
        assert_eq!(v, rebuilt);
        assert_eq!(v.total_wtp(), rebuilt.total_wtp());
    }

    #[test]
    fn view_total_wtp_bit_identical_to_rebuild() {
        // Non-dyadic ratings-derived values (λ·stars/5·$x.99): any
        // accumulation-order difference between the view's total and the
        // builder's shows up as 1-ulp drift. The view must sum in the
        // builder's (user, item) order exactly.
        let ratings: Vec<(u32, u32, u8)> = (0..6u32)
            .flat_map(|u| {
                (0..4u32)
                    .filter(move |i| (u + i) % 3 != 0)
                    .map(move |i| (u, i, ((u + i) % 5 + 1) as u8))
            })
            .collect();
        let prices = [9.99, 14.99, 3.33, 7.77];
        let w = WtpMatrix::from_ratings(6, 4, ratings.clone(), &prices, 1.1);
        let v = w.restrict(Some(&[1, 3]), Some(&[0, 2, 5]));
        let rebuilt = WtpMatrix::from_ratings(
            3,
            2,
            ratings.iter().filter_map(|&(u, i, s)| {
                let lu = [0u32, 2, 5].iter().position(|&x| x == u)?;
                let li = [1u32, 3].iter().position(|&x| x == i)?;
                Some((lu as u32, li as u32, s))
            }),
            &[14.99, 7.77],
            1.1,
        );
        assert_eq!(v.total_wtp().to_bits(), rebuilt.total_wtp().to_bits());
        assert_eq!(v, rebuilt);
    }

    #[test]
    fn equality_includes_listed_prices() {
        let triples = vec![(0u32, 0u32, 5.0)];
        let plain = WtpMatrix::from_triples(1, 1, triples.clone(), None);
        let priced = WtpMatrix::from_triples(1, 1, triples.clone(), Some(vec![9.99]));
        let repriced = WtpMatrix::from_triples(1, 1, triples, Some(vec![4.99]));
        assert_ne!(plain, priced);
        assert_ne!(priced, repriced);
        assert_eq!(priced.clone(), priced);
    }

    #[test]
    fn fingerprint_is_content_based() {
        let a = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        let b = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        // Separately built arenas with identical content agree.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any entry change shows.
        let c = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.5]]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Dimensions matter even when the stored entries coincide.
        let d = WtpMatrix::from_triples(4, 2, vec![(0, 0, 12.0)], None);
        let e = WtpMatrix::from_triples(5, 2, vec![(0, 0, 12.0)], None);
        assert_ne!(d.fingerprint(), e.fingerprint());
    }

    #[test]
    fn view_fingerprint_equals_rebuilt_matrix() {
        let w = WtpMatrix::from_rows(vec![
            vec![1.0, 0.0, 3.0, 4.0],
            vec![0.0, 5.0, 6.0, 0.0],
            vec![7.0, 8.0, 0.0, 9.0],
        ]);
        let v = w.restrict(Some(&[0, 2, 3]), Some(&[0, 2]));
        let rebuilt = WtpMatrix::from_rows(vec![vec![1.0, 3.0, 4.0], vec![7.0, 0.0, 9.0]]);
        assert_eq!(v.fingerprint(), rebuilt.fingerprint());
        // ... and differs from both the arena and a different restriction.
        assert_ne!(v.fingerprint(), w.fingerprint());
        assert_ne!(v.fingerprint(), w.restrict(Some(&[0, 2, 3]), Some(&[0, 1])).fingerprint());
    }

    #[test]
    fn fingerprint_includes_listed_prices() {
        let triples = vec![(0u32, 0u32, 5.0)];
        let plain = WtpMatrix::from_triples(1, 1, triples.clone(), None);
        let priced = WtpMatrix::from_triples(1, 1, triples.clone(), Some(vec![9.99]));
        let repriced = WtpMatrix::from_triples(1, 1, triples, Some(vec![4.99]));
        assert_ne!(plain.fingerprint(), priced.fingerprint());
        assert_ne!(priced.fingerprint(), repriced.fingerprint());
    }

    #[test]
    fn overlay_merges_base_and_touched_slices() {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        // Churn: (user 1, item 0) 8 → 9, and a new user 3 rating item 1 at 6.
        let d = w.with_overlay(
            4,
            2,
            vec![(1, vec![0, 1], vec![9.0, 2.0]), (3, vec![1], vec![6.0])],
            vec![
                (0, vec![0, 1, 2], vec![12.0, 9.0, 5.0]),
                (1, vec![0, 1, 2, 3], vec![4.0, 2.0, 11.0, 6.0]),
            ],
            None,
        );
        assert!(d.has_delta());
        assert_eq!(d.n_users(), 4);
        assert_eq!(d.get(1, 0), 9.0);
        assert_eq!(d.get(3, 1), 6.0);
        assert_eq!(d.get(0, 0), 12.0); // untouched row reads the arena
        assert_eq!(d.nnz(), 7);
        let rebuilt = WtpMatrix::from_rows(vec![
            vec![12.0, 4.0],
            vec![9.0, 2.0],
            vec![5.0, 11.0],
            vec![0.0, 6.0],
        ]);
        assert_eq!(d, rebuilt);
        assert_eq!(d.total_wtp().to_bits(), rebuilt.total_wtp().to_bits());
        assert_eq!(d.fingerprint(), rebuilt.fingerprint());
        // Compaction is identity on reads and fingerprints.
        let c = d.compact();
        assert!(!c.has_delta());
        assert_eq!(c, rebuilt);
        assert_eq!(c.fingerprint(), d.fingerprint());
        // A view over the churned base reads through the overlay.
        let v = d.restrict(Some(&[0]), Some(&[1, 3]));
        assert_eq!(v.get(0, 0), 9.0);
        assert_eq!(v.n_users(), 2);
        let cold = c.restrict(Some(&[0]), Some(&[1, 3]));
        assert_eq!(v.fingerprint(), cold.fingerprint());
        assert_eq!(v.total_wtp().to_bits(), cold.total_wtp().to_bits());
    }

    #[test]
    fn view_listed_prices_remap() {
        let w = WtpMatrix::from_ratings(
            2,
            3,
            vec![(0u32, 0u32, 5u8), (0, 1, 4), (1, 2, 3)],
            &[10.0, 20.0, 30.0],
            1.25,
        );
        let v = w.restrict(Some(&[2, 1]), None);
        assert_eq!(v.listed_price(0), Some(20.0));
        assert_eq!(v.listed_price(1), Some(30.0));
    }
}
