//! The willingness-to-pay matrix `W` and the ratings→WTP conversion.

/// Sparse `M × N` willingness-to-pay matrix. Zero entries (consumer has no
/// interest in the item) are not stored; both row (per-user) and column
/// (per-item) views are kept because the algorithms need both.
#[derive(Debug, Clone, PartialEq)]
pub struct WtpMatrix {
    n_users: usize,
    n_items: usize,
    /// Per item: (user, wtp) with wtp > 0, sorted by user.
    cols: Vec<Vec<(u32, f64)>>,
    /// Per user: (item, wtp) with wtp > 0, sorted by item.
    rows: Vec<Vec<(u32, f64)>>,
    /// Σ of all entries — the upper bound of revenue and the denominator of
    /// the revenue-coverage metric (§6.1.2).
    total_wtp: f64,
    /// Listed per-item prices when constructed from ratings data (used by
    /// the "Amazon's pricing" baseline of Table 2).
    listed_prices: Option<Vec<f64>>,
}

impl WtpMatrix {
    /// Build from dense rows (`rows[u][i] = w_{u,i}`); all rows must share
    /// one length. Entries must be finite and ≥ 0; zeros are dropped.
    pub fn from_rows(dense: Vec<Vec<f64>>) -> Self {
        let n_users = dense.len();
        let n_items = dense.first().map_or(0, Vec::len);
        let mut triples = Vec::new();
        for (u, row) in dense.iter().enumerate() {
            assert_eq!(row.len(), n_items, "ragged WTP rows");
            for (i, &w) in row.iter().enumerate() {
                assert!(w.is_finite() && w >= 0.0, "WTP must be finite and >= 0, got {w}");
                if w > 0.0 {
                    triples.push((u as u32, i as u32, w));
                }
            }
        }
        Self::from_triples(n_users, n_items, triples, None)
    }

    /// Build from sparse `(user, item, wtp)` triples.
    pub fn from_triples(
        n_users: usize,
        n_items: usize,
        triples: Vec<(u32, u32, f64)>,
        listed_prices: Option<Vec<f64>>,
    ) -> Self {
        if let Some(p) = &listed_prices {
            assert_eq!(p.len(), n_items, "one listed price per item");
        }
        let mut cols = vec![Vec::new(); n_items];
        let mut rows = vec![Vec::new(); n_users];
        let mut total = 0.0;
        for (u, i, w) in triples {
            assert!((u as usize) < n_users, "user {u} out of range");
            assert!((i as usize) < n_items, "item {i} out of range");
            assert!(w.is_finite() && w > 0.0, "sparse WTP entries must be positive, got {w}");
            cols[i as usize].push((u, w));
            rows[u as usize].push((i, w));
            total += w;
        }
        for col in &mut cols {
            col.sort_unstable_by_key(|e| e.0);
            assert!(col.windows(2).all(|w| w[0].0 != w[1].0), "duplicate (user,item) entry");
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|e| e.0);
        }
        WtpMatrix { n_users, n_items, cols, rows, total_wtp: total, listed_prices }
    }

    /// The paper's ratings→WTP map (§6.1.1): a consumer who rated `r` stars
    /// (of `r_max = 5`) an item listed at price `p` is willing to pay
    /// `(r / r_max) · λ · p`.
    ///
    /// `ratings` yields `(user, item, stars 1..=5)`.
    pub fn from_ratings(
        n_users: usize,
        n_items: usize,
        ratings: impl IntoIterator<Item = (u32, u32, u8)>,
        prices: &[f64],
        lambda: f64,
    ) -> Self {
        assert_eq!(prices.len(), n_items, "one listed price per item");
        assert!(lambda >= 1.0, "lambda must be >= 1");
        const R_MAX: f64 = 5.0;
        let triples: Vec<(u32, u32, f64)> = ratings
            .into_iter()
            .map(|(u, i, stars)| {
                assert!((1..=5).contains(&stars), "stars {stars} out of 1..=5");
                let w = (stars as f64 / R_MAX) * lambda * prices[i as usize];
                (u, i, w)
            })
            .collect();
        Self::from_triples(n_users, n_items, triples, Some(prices.to_vec()))
    }

    /// Number of consumers `M`.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items `N`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Non-zero entries of item `i`'s column, sorted by user.
    pub fn col(&self, item: u32) -> &[(u32, f64)] {
        &self.cols[item as usize]
    }

    /// Non-zero entries of user `u`'s row, sorted by item.
    pub fn row(&self, user: u32) -> &[(u32, f64)] {
        &self.rows[user as usize]
    }

    /// Σ of all WTP entries (the coverage denominator).
    pub fn total_wtp(&self) -> f64 {
        self.total_wtp
    }

    /// Listed price of an item, if the matrix came from ratings data.
    pub fn listed_price(&self, item: u32) -> Option<f64> {
        self.listed_prices.as_ref().map(|p| p[item as usize])
    }

    /// A single entry (zero if not stored).
    pub fn get(&self, user: u32, item: u32) -> f64 {
        self.cols[item as usize]
            .binary_search_by_key(&user, |e| e.0)
            .map(|k| self.cols[item as usize][k].1)
            .unwrap_or(0.0)
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_basic() {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        assert_eq!(w.n_users(), 3);
        assert_eq!(w.n_items(), 2);
        assert_eq!(w.get(0, 0), 12.0);
        assert_eq!(w.get(2, 1), 11.0);
        assert_eq!(w.total_wtp(), 42.0);
        assert_eq!(w.nnz(), 6);
        assert_eq!(w.col(0).len(), 3);
        assert_eq!(w.row(1), &[(0, 8.0), (1, 2.0)]);
    }

    #[test]
    fn zeros_are_dropped() {
        let w = WtpMatrix::from_rows(vec![vec![0.0, 3.0]]);
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.get(0, 0), 0.0);
    }

    #[test]
    fn ratings_conversion_matches_paper_example() {
        // λ=1.25, price $10: stars 5,4,3,2,1 → 12.50, 10, 7.50, 5, 2.50.
        let prices = vec![10.0];
        let ratings = vec![(0u32, 0u32, 5u8), (1, 0, 4), (2, 0, 3), (3, 0, 2), (4, 0, 1)];
        let w = WtpMatrix::from_ratings(5, 1, ratings, &prices, 1.25);
        assert!((w.get(0, 0) - 12.5).abs() < 1e-12);
        assert!((w.get(1, 0) - 10.0).abs() < 1e-12);
        assert!((w.get(2, 0) - 7.5).abs() < 1e-12);
        assert!((w.get(3, 0) - 5.0).abs() < 1e-12);
        assert!((w.get(4, 0) - 2.5).abs() < 1e-12);
        assert_eq!(w.listed_price(0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_entries() {
        WtpMatrix::from_triples(1, 1, vec![(0, 0, 1.0), (0, 0, 2.0)], None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        WtpMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_matrix() {
        let w = WtpMatrix::from_rows(vec![]);
        assert_eq!(w.n_users(), 0);
        assert_eq!(w.total_wtp(), 0.0);
    }
}
