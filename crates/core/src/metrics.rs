//! Evaluation metrics (Section 6.1.2).

/// Revenue coverage: the ratio of achieved revenue to the aggregate
/// willingness to pay (the revenue upper bound). "The 'perfect' score would
/// be 100%."
pub fn revenue_coverage(revenue: f64, total_wtp: f64) -> f64 {
    assert!(revenue >= 0.0, "revenue must be non-negative");
    if total_wtp <= 0.0 {
        return 0.0;
    }
    revenue / total_wtp
}

/// Revenue gain: the fractional gain over the `Components` baseline.
/// "A good algorithm is expected to have positive gain."
pub fn revenue_gain(revenue: f64, components_revenue: f64) -> f64 {
    assert!(revenue >= 0.0, "revenue must be non-negative");
    if components_revenue <= 0.0 {
        return 0.0;
    }
    (revenue - components_revenue) / components_revenue
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §6.1.2: revenue $11 of $20 total WTP → 55% coverage; $11 vs $10
        // components → 10% gain.
        assert!((revenue_coverage(11.0, 20.0) - 0.55).abs() < 1e-12);
        assert!((revenue_gain(11.0, 10.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn degenerate_denominators() {
        assert_eq!(revenue_coverage(5.0, 0.0), 0.0);
        assert_eq!(revenue_gain(5.0, 0.0), 0.0);
    }

    #[test]
    fn negative_gain_is_possible() {
        assert!(revenue_gain(9.0, 10.0) < 0.0);
    }
}
