//! Evaluation metrics (Section 6.1.2), plus the Kupfer bundle-vs-separate
//! diagnostic (arXiv:1611.09613) reported on every sweep cell.

use crate::market::Market;

/// Revenue coverage: the ratio of achieved revenue to the aggregate
/// willingness to pay (the revenue upper bound). "The 'perfect' score would
/// be 100%."
pub fn revenue_coverage(revenue: f64, total_wtp: f64) -> f64 {
    assert!(revenue >= 0.0, "revenue must be non-negative");
    if total_wtp <= 0.0 {
        return 0.0;
    }
    revenue / total_wtp
}

/// Revenue gain: the fractional gain over the `Components` baseline.
/// "A good algorithm is expected to have positive gain."
pub fn revenue_gain(revenue: f64, components_revenue: f64) -> f64 {
    assert!(revenue >= 0.0, "revenue must be non-negative");
    if components_revenue <= 0.0 {
        return 0.0;
    }
    (revenue - components_revenue) / components_revenue
}

/// The Kupfer diagnostic (arXiv:1611.09613): revenue of the optimally
/// priced **grand bundle** divided by the summed optimal **separate-sale**
/// revenues of the items. A cheap structural probe of how much headroom
/// bundling has on a market; reported as the `b/s` column on every sweep
/// cell.
///
/// For `θ ≥ 0` under step adoption the ratio is provably confined (the
/// bound `proptest_kupfer.rs` pins): the grand bundle can always charge
/// any single item's optimal price — every buyer of item `j` at price `p`
/// has bundle WTP `(1+θ)·Σ_i w_{u,i} ≥ w_{u,j} ≥ p` — so
/// `R_bundle ≥ max_j R_j ≥ R_sep / N`; and `R_bundle ≤ Σ_u w_{u,b} ≤
/// M·(1+θ)·max_u Σ_i w_{u,i}` while `R_sep ≥ max_u Σ_i w_{u,i}` (sell
/// each item at one user's WTP), giving `ratio ∈ [1/N, M·(1+θ)]`.
///
/// Returns 0.0 for a market with no sellable separate revenue (empty or
/// zero-WTP), so the diagnostic is total.
pub fn kupfer_ratio(market: &Market) -> f64 {
    let n = market.n_items();
    if n == 0 {
        return 0.0;
    }
    let mut scratch = market.scratch();
    let separate: f64 = (0..n as u32)
        .map(|i| market.price_pure(&[i], &mut scratch).revenue)
        .fold(0.0, |a, r| a + r);
    if separate <= 0.0 {
        return 0.0;
    }
    let all_items: Vec<u32> = (0..n as u32).collect();
    let bundle = market.price_pure(&all_items, &mut scratch).revenue;
    bundle / separate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    #[test]
    fn paper_examples() {
        // §6.1.2: revenue $11 of $20 total WTP → 55% coverage; $11 vs $10
        // components → 10% gain.
        assert!((revenue_coverage(11.0, 20.0) - 0.55).abs() < 1e-12);
        assert!((revenue_gain(11.0, 10.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn degenerate_denominators() {
        assert_eq!(revenue_coverage(5.0, 0.0), 0.0);
        assert_eq!(revenue_gain(5.0, 0.0), 0.0);
    }

    #[test]
    fn negative_gain_is_possible() {
        assert!(revenue_gain(9.0, 10.0) < 0.0);
    }

    #[test]
    fn kupfer_ratio_on_table1() {
        // Table 1, θ=0 for the clean arithmetic: separate-optimal sells
        // item A at 8 (×2 buyers) and item B at 11 (×1) → R_sep = 27.
        // Grand-bundle WTPs are 16, 10, 16 → best price 16 (×2) = 32.
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        let m = Market::new(w, Params::default());
        let r = kupfer_ratio(&m);
        assert!((r - 32.0 / 27.0).abs() < 1e-9, "ratio {r}");
        // Within the θ≥0 step bound [1/N, M(1+θ)].
        assert!((1.0 / 2.0..=3.0).contains(&r));
    }

    #[test]
    fn kupfer_ratio_degenerate_markets() {
        let empty = Market::new(WtpMatrix::from_rows(vec![]), Params::default());
        assert_eq!(kupfer_ratio(&empty), 0.0);
        let zero = Market::new(WtpMatrix::from_rows(vec![vec![0.0, 0.0]]), Params::default());
        assert_eq!(kupfer_ratio(&zero), 0.0);
    }
}
