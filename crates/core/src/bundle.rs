//! Bundles: sorted, duplicate-free item sets.

/// A bundle of items, kept sorted and duplicate-free. Size-1 bundles
/// represent individual components on sale.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bundle {
    items: Vec<u32>,
}

impl Bundle {
    /// Singleton bundle.
    pub fn single(item: u32) -> Self {
        Bundle { items: vec![item] }
    }

    /// Build from arbitrary item ids (sorted and deduplicated; must end up
    /// non-empty).
    pub fn new(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        assert!(!items.is_empty(), "bundles must contain at least one item");
        Bundle { items }
    }

    /// Union of two bundles (the merge operation of both algorithms).
    pub fn union(&self, other: &Bundle) -> Bundle {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x < y {
                        items.push(x);
                        a.next();
                    } else if y < x {
                        items.push(y);
                        b.next();
                    } else {
                        items.push(x);
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    items.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    items.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Bundle { items }
    }

    /// Item ids, strictly increasing.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Bundles are never empty; this exists for clippy's sake.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True for single-item "bundles".
    pub fn is_single(&self) -> bool {
        self.items.len() == 1
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Do the two bundles share any item?
    pub fn intersects(&self, other: &Bundle) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset_of(&self, other: &Bundle) -> bool {
        let mut j = 0;
        for &x in &self.items {
            while j < other.items.len() && other.items[j] < x {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != x {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for Bundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.items.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let b = Bundle::new(vec![3, 1, 3, 2]);
        assert_eq!(b.items(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_single());
    }

    #[test]
    fn union_merges() {
        let a = Bundle::new(vec![1, 3, 5]);
        let b = Bundle::new(vec![2, 3, 6]);
        assert_eq!(a.union(&b).items(), &[1, 2, 3, 5, 6]);
    }

    #[test]
    fn intersects_and_subset() {
        let a = Bundle::new(vec![1, 3]);
        let b = Bundle::new(vec![3, 4]);
        let c = Bundle::new(vec![4, 5]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(Bundle::single(3).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&Bundle::new(vec![1, 2, 3])));
    }

    #[test]
    fn display() {
        assert_eq!(Bundle::new(vec![2, 1]).to_string(), "{1,2}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn rejects_empty() {
        Bundle::new(vec![]);
    }
}
