//! The weighted-set-packing comparators of Sections 5.2 / 6.4: `Optimal`
//! (enumerate all `2^N − 1` bundles, solve packing exactly) and
//! `Greedy WSP` (the `√N`-approximation). Pure bundling only — "the
//! reduction to weighted set packing is only defined for pure bundling".
//!
//! Enumeration notes: only consumers with positive WTP on at least one of
//! the `N` items can ever affect a bundle's revenue, so the per-subset
//! pricing loops run over that (much smaller) consumer subset. This is a
//! pure optimization — revenues are identical — and is what makes the
//! paper's `N = 25` protocol tractable without their 70 GB machine.

use crate::bundle::Bundle;
use crate::config::{BundleConfig, OfferNode, Outcome, Strategy};
use crate::market::Market;
use crate::pricing::{self, PricingCtx};
use crate::trace::IterationTrace;
use revmax_par::par_index_map;
use std::time::{Duration, Instant};

/// How many of the low item bits are pre-branched into independent
/// enumeration tasks: `2^prebranch` tasks, each owning the mask stride
/// `{p | (high << prebranch)}`. A pure function of `n` — never of the
/// thread count — so the task decomposition, the per-consumer WTP
/// accumulation order, and therefore every table entry are bit-identical
/// at any parallelism (`DESIGN.md` §6). Small instances (`n ≤ 6`) stay
/// sequential.
fn prebranch_bits(n: usize) -> usize {
    n.saturating_sub(6).min(8)
}

/// Revenues of every nonempty subset of the market's items
/// (`table[mask]`, `table[0] = 0`), plus the matching optimal prices.
#[derive(Debug, Clone)]
pub struct SubsetRevenues {
    pub n_items: usize,
    pub revenue: Vec<f64>,
    pub price: Vec<f64>,
    /// Wall time spent enumerating (the paper reports this separately:
    /// "the enumeration and revenue computation ... require 0.8 seconds for
    /// 10 items ... 15 hours for 25 items").
    pub enumeration_time: Duration,
}

/// Enumerate all `2^N − 1` candidate bundles and price each one. Panics if
/// `N > 26` (the table would not fit in memory).
pub fn enumerate_subset_revenues(market: &Market) -> SubsetRevenues {
    let n = market.n_items();
    assert!(n <= 26, "subset enumeration limited to 26 items, got {n}");
    let start = Instant::now(); // audit: allow(wall-clock) enumeration_time is reported timing, never a result input
    let full = 1usize << n;

    // Consumers with any interest in these items, with dense re-indexing
    // (a flat rank vector — no hashing on the enumeration's build path).
    let mut relevant: Vec<u32> = Vec::new();
    let mut rank = vec![usize::MAX; market.n_users()];
    {
        let mut seen = vec![false; market.n_users()];
        for i in 0..n as u32 {
            for &u in market.wtp().col(i).ids {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    relevant.push(u);
                }
            }
        }
        relevant.sort_unstable();
        for (k, &u) in relevant.iter().enumerate() {
            rank[u as usize] = k;
        }
    }
    // Dense per-item columns over the relevant consumers, read straight off
    // the CSR column slices.
    let cols: Vec<Vec<(usize, f64)>> = (0..n as u32)
        .map(|i| market.wtp().col(i).iter().map(|(u, w)| (rank[u as usize], w)).collect())
        .collect();

    let params = *market.params();
    // Per-subset pricing runs sequentially inside each task: the outer
    // mask-range fan-out already saturates the pool.
    let ctx = PricingCtx { threads: 1, ..*market.pricing_ctx() };
    let threads = market.threads();
    let m_rel = relevant.len();

    // DFS over the subset lattice: at depth `item` branch on item
    // excluded/included, maintaining the per-consumer sums incrementally.
    // Writes table slots indexed by the bits above `shift` (the bits below
    // are fixed per task).
    #[allow(clippy::too_many_arguments)]
    fn rec(
        item: usize,
        n: usize,
        mask: &mut usize,
        sums: &mut [f64],
        values: &mut Vec<f64>,
        cols: &[Vec<(usize, f64)>],
        params: &crate::params::Params,
        ctx: &PricingCtx,
        revenue: &mut [f64],
        price: &mut [f64],
        shift: usize,
    ) {
        if item == n {
            if *mask != 0 {
                let size = mask.count_ones() as usize;
                values.clear();
                for &s in sums.iter() {
                    if s > 0.0 {
                        values.push(params.set_wtp(s, size));
                    }
                }
                let out = pricing::optimize(values, ctx);
                revenue[*mask >> shift] = out.revenue;
                price[*mask >> shift] = out.price;
            }
            return;
        }
        // Exclude `item`.
        rec(item + 1, n, mask, sums, values, cols, params, ctx, revenue, price, shift);
        // Include `item`. The undo log restores previous values bitwise —
        // `sums[u] -= w` would leave 1-ulp drift, and ratings-derived WTPs
        // sit exactly on grid-level boundaries, where any drift flips a
        // buyer across a price level.
        *mask |= 1 << item;
        let undo: Vec<f64> = cols[item].iter().map(|&(u, _)| sums[u]).collect();
        for &(u, w) in &cols[item] {
            sums[u] += w;
        }
        rec(item + 1, n, mask, sums, values, cols, params, ctx, revenue, price, shift);
        for (&(u, _), &old) in cols[item].iter().zip(&undo) {
            sums[u] = old;
        }
        *mask &= !(1 << item);
    }

    // Parallel over mask ranges: task `p` fixes the low `pb` item bits to
    // `p` (their WTP contributions pre-accumulated in increasing item
    // order, exactly as the DFS would) and enumerates the high bits. Each
    // task owns the stride `{p | (high << pb)}`, so tasks write disjoint
    // table slots; each task scatters its stride into the shared tables as
    // soon as it finishes (a short lock per task) instead of materializing
    // all 2^pb partial tables — at N = 25 that keeps peak memory at the
    // 2 × 2^N table itself plus one in-flight stride per worker, instead
    // of double the table. Slot values are independent of scatter order,
    // so results stay bit-identical at any thread count.
    let pb = prebranch_bits(n);
    let high_len = 1usize << (n - pb);
    let tables = std::sync::Mutex::new((vec![0.0f64; full], vec![0.0f64; full]));
    par_index_map(threads, 1usize << pb, |p| {
        let mut sums = vec![0.0f64; m_rel];
        for (i, col) in cols.iter().enumerate().take(pb) {
            if p & (1 << i) != 0 {
                for &(u, w) in col {
                    sums[u] += w;
                }
            }
        }
        let mut revenue = vec![0.0f64; high_len];
        let mut price = vec![0.0f64; high_len];
        let mut values: Vec<f64> = Vec::with_capacity(m_rel);
        let mut mask = p;
        rec(
            pb,
            n,
            &mut mask,
            &mut sums,
            &mut values,
            &cols,
            &params,
            &ctx,
            &mut revenue,
            &mut price,
            pb,
        );
        let mut guard = tables.lock().unwrap_or_else(|p| p.into_inner());
        for (k, (r, q)) in revenue.into_iter().zip(price).enumerate() {
            guard.0[p | (k << pb)] = r;
            guard.1[p | (k << pb)] = q;
        }
    });
    let (revenue, price) = tables.into_inner().unwrap_or_else(|p| p.into_inner());

    SubsetRevenues { n_items: n, revenue, price, enumeration_time: start.elapsed() }
}

/// Build an [`Outcome`] from chosen subset masks.
fn outcome_from_masks(
    name: &'static str,
    market: &Market,
    table: &SubsetRevenues,
    masks: &[u32],
    solve_time: Duration,
) -> Outcome {
    let mut roots = Vec::new();
    let mut revenue = 0.0;
    let mut covered = 0u32;
    for &m in masks {
        let items: Vec<u32> = (0..table.n_items as u32).filter(|&i| m & (1 << i) != 0).collect();
        roots.push(OfferNode::leaf(Bundle::new(items), table.price[m as usize]));
        revenue += table.revenue[m as usize];
        covered |= m;
    }
    // Packing may leave worthless items unsold; configurations must still
    // cover them (condition 1 of Problem 1), so list them at price 0...
    // except a zero-revenue singleton keeps its (meaningless) price anyway.
    for i in 0..table.n_items as u32 {
        if covered & (1 << i) == 0 {
            let m = 1u32 << i;
            roots.push(OfferNode::leaf(Bundle::single(i), table.price[m as usize]));
            revenue += table.revenue[m as usize];
        }
    }
    let components_revenue =
        (0..table.n_items).map(|i| table.revenue[1usize << i]).fold(0.0, |a, x| a + x);
    let mut trace = IterationTrace::new();
    trace.push(revenue, solve_time, roots.len());
    let config = BundleConfig { strategy: Strategy::Pure, roots };
    debug_assert!({
        config.validate(table.n_items);
        true
    });
    Outcome::assemble(name, config, revenue, components_revenue, market, trace)
}

/// `Optimal`: exact pure-bundling configuration via the subset DP over the
/// enumerated revenue table (the role Gurobi plays in the paper).
pub fn optimal(market: &Market, table: &SubsetRevenues) -> Outcome {
    let start = Instant::now(); // audit: allow(wall-clock) solve_time is reported timing, never a result input
    let dp = revmax_ilp::subset_dp::solve_all_subsets(table.n_items, &table.revenue);
    outcome_from_masks("Optimal", market, table, &dp.chosen, start.elapsed())
}

/// `Greedy WSP`: the √N-approximate packing, selecting by the norm-scaled
/// score `w/√|S|` (the rule that actually carries the paper's cited √N
/// guarantee — see `revmax_ilp::greedy` for why "average weight per item"
/// does not).
pub fn greedy_wsp(market: &Market, table: &SubsetRevenues) -> Outcome {
    let start = Instant::now(); // audit: allow(wall-clock) solve_time is reported timing, never a result input
    let n = table.n_items;
    // Sort subset ids by score descending. (Materializing 2^N ids is the
    // dominant memory cost; fine for N ≤ 26.)
    let mut order: Vec<u32> = (1..(1u32 << n)).collect();
    order.sort_by(|&a, &b| {
        let da = table.revenue[a as usize] / (a.count_ones() as f64).sqrt();
        let db = table.revenue[b as usize] / (b.count_ones() as f64).sqrt();
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut covered = 0u32;
    let mut chosen = Vec::new();
    for s in order {
        if table.revenue[s as usize] <= 0.0 {
            break;
        }
        if covered & s == 0 {
            covered |= s;
            chosen.push(s);
            if covered == (1u32 << n) - 1 {
                break;
            }
        }
    }
    outcome_from_masks("Greedy WSP", market, table, &chosen, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Components, Configurator, PureGreedy, PureMatching};
    use crate::params::Params;
    use crate::wtp::WtpMatrix;

    fn market() -> Market {
        let w = WtpMatrix::from_rows(vec![
            vec![12.0, 4.0, 0.0],
            vec![8.0, 2.0, 3.0],
            vec![5.0, 11.0, 7.0],
            vec![0.0, 6.0, 9.0],
        ]);
        Market::new(w, Params::default())
    }

    #[test]
    fn enumeration_matches_direct_pricing() {
        let m = market();
        let t = enumerate_subset_revenues(&m);
        let mut s = m.scratch();
        for mask in 1u32..(1 << 3) {
            let items: Vec<u32> = (0..3).filter(|&i| mask & (1 << i) != 0).collect();
            let direct = m.price_pure(&items, &mut s);
            assert!(
                (t.revenue[mask as usize] - direct.revenue).abs() < 1e-9,
                "mask {mask}: {} vs {}",
                t.revenue[mask as usize],
                direct.revenue
            );
            assert!((t.price[mask as usize] - direct.price).abs() < 1e-9);
        }
    }

    #[test]
    fn optimal_at_least_as_good_as_heuristics() {
        let m = market();
        let t = enumerate_subset_revenues(&m);
        let opt = optimal(&m, &t);
        let gw = greedy_wsp(&m, &t);
        let pm = PureMatching::default().run(&m);
        let pg = PureGreedy::default().run(&m);
        let c = Components::optimal().run(&m);
        assert!(opt.revenue >= gw.revenue - 1e-9);
        assert!(opt.revenue >= pm.revenue - 1e-9);
        assert!(opt.revenue >= pg.revenue - 1e-9);
        assert!(opt.revenue >= c.revenue - 1e-9);
        opt.config.validate(3);
        gw.config.validate(3);
        // √N bound for the greedy.
        assert!(gw.revenue + 1e-9 >= opt.revenue / 3f64.sqrt());
    }

    #[test]
    #[should_panic(expected = "revenue must be non-negative")]
    fn nan_table_entry_dies_at_the_metrics_guard_not_in_the_sort() {
        // Regression (PR 5 class, mechanized by the audit's
        // float-partial-cmp rule): the score sort used
        // `partial_cmp(..).unwrap()`, so one NaN revenue entry aborted
        // inside std's sort with an unrelated `Option::unwrap` message.
        // total_cmp keeps the sort total; the NaN now flows to the
        // explicit invariant guard in `metrics::revenue_coverage`, which
        // names the actual problem.
        let m = market();
        let mut t = enumerate_subset_revenues(&m);
        t.revenue[0b101] = f64::NAN;
        let _ = greedy_wsp(&m, &t);
    }

    #[test]
    fn greedy_wsp_is_bitwise_deterministic_after_total_cmp() {
        // The comparator change must preserve the finite-input ordering.
        let m = market();
        let t = enumerate_subset_revenues(&m);
        let a = greedy_wsp(&m, &t);
        let b = greedy_wsp(&m, &t);
        assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
        assert!(a.revenue > 0.0);
    }

    #[test]
    fn enumeration_respects_theta() {
        // θ > 0 inflates multi-item subsets only; the singles row of the
        // table must be unchanged while pairs grow.
        let build = |theta: f64| {
            let w = WtpMatrix::from_rows(vec![vec![6.0, 4.0], vec![3.0, 7.0]]);
            Market::new(w, Params::default().with_theta(theta))
        };
        let t0 = enumerate_subset_revenues(&build(0.0));
        let tp = enumerate_subset_revenues(&build(0.2));
        assert_eq!(t0.revenue[0b01], tp.revenue[0b01]);
        assert_eq!(t0.revenue[0b10], tp.revenue[0b10]);
        assert!(tp.revenue[0b11] > t0.revenue[0b11]);
    }

    #[test]
    fn greedy_wsp_covers_all_items() {
        let m = market();
        let t = enumerate_subset_revenues(&m);
        let gw = greedy_wsp(&m, &t);
        gw.config.validate(3);
        let covered: usize = gw.config.roots.iter().map(|r| r.bundle.len()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn enumeration_bit_identical_across_thread_counts() {
        // n = 10 → 16 pre-branched tasks, exercising the parallel path.
        use crate::params::Threads;
        let rows: Vec<Vec<f64>> = (0..30u32)
            .map(|u| (0..10u32).map(|i| ((u * 7 + i * 13) % 11) as f64 * 0.7).collect())
            .collect();
        let build = |t: usize| {
            Market::new(
                WtpMatrix::from_rows(rows.clone()),
                Params::default().with_theta(0.05).with_threads(Threads::Fixed(t)),
            )
        };
        let base = enumerate_subset_revenues(&build(1));
        let base_opt = optimal(&build(1), &base);
        let base_gw = greedy_wsp(&build(1), &base);
        for t in [2, 4, 7] {
            let tab = enumerate_subset_revenues(&build(t));
            assert_eq!(tab.revenue.len(), base.revenue.len());
            for mask in 0..tab.revenue.len() {
                assert_eq!(
                    tab.revenue[mask].to_bits(),
                    base.revenue[mask].to_bits(),
                    "revenue differs at mask {mask} with {t} threads"
                );
                assert_eq!(
                    tab.price[mask].to_bits(),
                    base.price[mask].to_bits(),
                    "price differs at mask {mask} with {t} threads"
                );
            }
            let opt = optimal(&build(t), &tab);
            let gw = greedy_wsp(&build(t), &tab);
            assert_eq!(opt.revenue.to_bits(), base_opt.revenue.to_bits());
            assert_eq!(gw.revenue.to_bits(), base_gw.revenue.to_bits());
        }
    }

    #[test]
    fn enumeration_time_is_recorded() {
        let m = market();
        let t = enumerate_subset_revenues(&m);
        assert!(t.enumeration_time > Duration::ZERO);
        assert_eq!(t.revenue.len(), 8);
        assert_eq!(t.revenue[0], 0.0);
    }

    #[test]
    fn k2_matching_equals_optimal_when_optimal_pairs() {
        // With size cap 2, PureMatching is provably optimal (Section 5.1);
        // cross-check against the DP restricted to sizes ≤ 2.
        use crate::params::SizeCap;
        let w = WtpMatrix::from_rows(vec![
            vec![12.0, 4.0, 0.0],
            vec![8.0, 2.0, 3.0],
            vec![5.0, 11.0, 7.0],
            vec![0.0, 6.0, 9.0],
        ]);
        let m = Market::new(w, Params::default().with_size_cap(SizeCap::AtMost(2)));
        let t = enumerate_subset_revenues(&m);
        // Zero out revenues of subsets larger than 2 for the capped DP.
        let mut capped = t.revenue.clone();
        for (mask, r) in capped.iter_mut().enumerate().skip(1) {
            if (mask as u32).count_ones() > 2 {
                *r = 0.0;
            }
        }
        let dp = revmax_ilp::subset_dp::solve_all_subsets(3, &capped);
        let pm = PureMatching::default().run(&m);
        assert!(
            (dp.total_weight - pm.revenue).abs() < 1e-9,
            "2-sized optimal {} vs matching {}",
            dp.total_weight,
            pm.revenue
        );
    }
}
