//! Shared `key=value` CLI plumbing for the bench binaries.
//!
//! Every harness binary parses flat `key=value` arguments; a typo'd key
//! must be a hard error that **names the offending key** (a silently
//! ignored `targetusers=8` would benchmark the wrong shape and gate CI on
//! it). [`unknown_key_msg`] builds that error, with a did-you-mean
//! suggestion when a known key is within small edit distance.

/// Edit (Levenshtein) distance between two ASCII-ish keys.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Error text for an unrecognized `key=value` key: always names the key,
/// lists the accepted keys, and suggests the closest known key when one is
/// within an edit distance of 2 (catches dropped underscores and
/// single-letter typos without suggesting nonsense for garbage input).
pub fn unknown_key_msg(key: &str, known: &[&str]) -> String {
    let suggestion = known
        .iter()
        .map(|k| (edit_distance(key, k), *k))
        .min()
        .filter(|&(d, _)| d <= 2)
        .map(|(_, k)| format!(" (did you mean '{k}'?)"))
        .unwrap_or_default();
    format!("unknown key '{key}'{suggestion}; known keys: {}", known.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_names_the_key_and_lists_known_keys() {
        let msg = unknown_key_msg("bogus_key_xyz", &["scale", "seed"]);
        assert!(msg.contains("unknown key 'bogus_key_xyz'"), "{msg}");
        assert!(msg.contains("scale, seed"), "{msg}");
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn close_typo_gets_a_suggestion() {
        let msg = unknown_key_msg("targetusers", &["scale", "target_users", "threads"]);
        assert!(msg.contains("did you mean 'target_users'?"), "{msg}");
        let msg = unknown_key_msg("sede", &["scale", "seed"]);
        assert!(msg.contains("did you mean 'seed'?"), "{msg}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("targetusers", "target_users"), 1);
    }
}
