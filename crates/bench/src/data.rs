//! Market construction shared by all experiment binaries.

use crate::args::Scale;
use revmax_core::prelude::*;
use revmax_dataset::{AmazonBooksConfig, RatingsData};

/// The generator configuration for a scale preset.
pub fn config_for(scale: Scale) -> AmazonBooksConfig {
    match scale {
        Scale::Small => AmazonBooksConfig::small(),
        Scale::Medium => AmazonBooksConfig::medium(),
        Scale::Paper => AmazonBooksConfig::paper(),
    }
}

/// Generate the ratings dataset for a scale/seed.
pub fn dataset(scale: Scale, seed: u64) -> RatingsData {
    config_for(scale).generate(seed)
}

/// Build the WTP matrix from ratings data under `params` (λ applied per
/// §6.1.1) and wrap it in a market. The ratings stream straight into the
/// dual-CSR builder — no intermediate per-row/per-column vectors.
pub fn market_from(data: &RatingsData, params: Params) -> Market {
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.triples(),
        data.prices(),
        params.lambda,
    );
    Market::new(wtp, params)
}

/// One-call market for a scale/seed with given params.
pub fn market(scale: Scale, seed: u64, params: Params) -> Market {
    market_from(&dataset(scale, seed), params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_market_builds() {
        let m = market(Scale::Small, 1, Params::default());
        assert!(m.n_users() > 0);
        assert!(m.n_items() > 0);
        assert!(m.total_wtp() > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = market(Scale::Small, 9, Params::default());
        let b = market(Scale::Small, 9, Params::default());
        assert_eq!(a.total_wtp(), b.total_wtp());
        assert_eq!(a.n_items(), b.n_items());
    }
}
