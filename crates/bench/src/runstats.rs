//! Mean/stddev over repeated stochastic runs (the paper averages ten).

/// Summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    pub mean: f64,
    pub std_dev: f64,
    pub n: usize,
}

/// Compute mean and (sample) standard deviation.
pub fn summarize(xs: &[f64]) -> RunStats {
    assert!(!xs.is_empty(), "no measurements");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    RunStats { mean, std_dev: var.sqrt(), n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn empty_rejected() {
        summarize(&[]);
    }
}
