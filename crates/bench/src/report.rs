//! Plain-text table printing plus CSV persistence for every artifact.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table that can also be saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, c) in row.iter().enumerate() {
                widths[k] = widths[k].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Save as CSV under `dir/name.csv` (creates the directory).
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }
}

/// Format a fraction as `xx.x%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a fraction as `xx.xx%`.
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Format seconds with sub-second precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains('1'));
        let dir = std::env::temp_dir().join("revmax_report_test");
        let p = t.save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.777), "77.7%");
        assert_eq!(pct2(0.0617), "6.17%");
        assert_eq!(secs(std::time::Duration::from_millis(2500)), "2.50");
    }
}
