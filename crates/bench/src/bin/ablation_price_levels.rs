//! **Ablation** — number of price levels T (§4.2 design choice).
//!
//! The paper fixes T = 100 "as we find that larger numbers do not result in
//! much higher revenue". This bench quantifies that: Components and Pure
//! Matching revenue under the grid discretization at
//! T ∈ {10, 25, 50, 100, 200, 400}, against the exact (T → ∞) optimum.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::{pct2, Table};
use revmax_core::prelude::*;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);

    let mut t = Table::new(
        format!("Ablation — price levels T ({} scale)", args.scale.name()),
        &["T", "Components coverage", "Pure Matching coverage", "vs exact (Components)"],
    );
    let exact_market = data::market_from(&dataset, args.params());
    let exact_cov = Components::optimal().run(&exact_market).coverage;

    for levels in [10usize, 25, 50, 100, 200, 400] {
        let market = data::market_from(&dataset, args.params().with_price_levels(levels))
            .with_grid_pricing();
        let c = Components::optimal().run(&market);
        let pm = PureMatching::default().run(&market);
        t.row(vec![
            levels.to_string(),
            pct2(c.coverage),
            pct2(pm.coverage),
            format!("{:+.2}pp", (c.coverage - exact_cov) * 100.0),
        ]);
        eprintln!("T = {levels} done");
    }
    t.row(vec![
        "exact".into(),
        pct2(exact_cov),
        pct2(PureMatching::default().run(&exact_market).coverage),
        "+0.00pp".into(),
    ]);
    t.print();
    if let Ok(p) = t.save_csv(&args.out_dir, "ablation_price_levels") {
        println!("saved {}", p.display());
    }
}
