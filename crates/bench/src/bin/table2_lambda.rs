//! **Table 2** — revenue coverage of the `Components` baseline at
//! λ ∈ {1.00, 1.25, 1.50, 1.75, 2.00}, optimal pricing vs Amazon's (listed)
//! pricing. The paper reports optimal pricing flat at 77.7% and listed
//! pricing peaking at 75.1% for λ = 1.25.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::{pct, Table};
use revmax_core::prelude::*;

fn main() {
    let args = BenchArgs::parse(Scale::Paper);
    let dataset = data::dataset(args.scale, args.seed);
    let mut t = Table::new(
        format!("Table 2 — revenue coverage at different lambdas ({} scale)", args.scale.name()),
        &["lambda", "optimal pricing", "paper", "Amazon's pricing", "paper"],
    );
    let paper_opt = ["77.7%", "77.7%", "77.7%", "77.7%", "77.7%"];
    let paper_listed = ["59.0%", "75.1%", "62.6%", "62.8%", "54.9%"];
    for (k, lambda) in [1.0, 1.25, 1.5, 1.75, 2.0].into_iter().enumerate() {
        let market = data::market_from(&dataset, args.params().with_lambda(lambda));
        let optimal = Components::optimal().run(&market);
        let listed = Components::listed().run(&market);
        t.row(vec![
            format!("{lambda:.2}"),
            pct(optimal.coverage),
            paper_opt[k].into(),
            pct(listed.coverage),
            paper_listed[k].into(),
        ]);
    }
    t.print();
    if let Ok(p) = t.save_csv(&args.out_dir, "table2_lambda") {
        println!("saved {}", p.display());
    }
}
