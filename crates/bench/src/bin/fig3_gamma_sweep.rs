//! **Figure 3** — revenue coverage and gain vs the stochastic price
//! sensitivity γ. Revenues of stochastic settings are averaged over
//! `--runs` sampled evaluations (the paper uses ten).
//!
//! Expected shape: coverage increases with γ at a decreasing rate
//! (plateauing at the step-function limit); gain *decreases* with γ
//! (bundling is more robust to adoption uncertainty than components).

use rand::rngs::StdRng;
use rand::SeedableRng;
use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct2, Table};
use revmax_bench::{all_methods, data, runstats};

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);
    let gammas = [0.1, 0.5, 1.0, 10.0, 100.0, 1e6];

    let names: Vec<&'static str> = all_methods().iter().map(|m| m.name()).collect();
    let mut cov = Table::new(
        format!(
            "Figure 3(a) — revenue coverage vs gamma ({} scale, {} runs)",
            args.scale.name(),
            args.runs
        ),
        &std::iter::once("gamma").chain(names.iter().copied()).collect::<Vec<_>>(),
    );
    let mut gain = Table::new(
        "Figure 3(b) — revenue gain vs gamma".to_string(),
        &std::iter::once("gamma")
            .chain(names.iter().copied().filter(|n| *n != "Components"))
            .collect::<Vec<_>>(),
    );

    for gamma in gammas {
        let market = data::market_from(&dataset, args.params().with_gamma(gamma));
        let mut cov_row = vec![format!("{gamma}")];
        let mut gain_row = vec![format!("{gamma}")];
        let mut components_rev = 0.0;
        for method in all_methods() {
            let out = method.run(&market);
            // Evaluate by sampling (equals the expectation in step mode).
            let revenues: Vec<f64> = (0..args.runs)
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 32);
                    out.config.sampled_revenue(&market, &mut rng, 1)
                })
                .collect();
            let stats = runstats::summarize(&revenues);
            if out.algorithm == "Components" {
                components_rev = stats.mean;
            }
            cov_row.push(pct2(stats.mean / market.total_wtp()));
            if out.algorithm != "Components" {
                gain_row.push(pct2(revmax_core::metrics::revenue_gain(
                    stats.mean.max(0.0),
                    components_rev,
                )));
            }
        }
        cov.row(cov_row);
        gain.row(gain_row);
        eprintln!("gamma {gamma} done");
    }
    cov.print();
    println!();
    gain.print();
    for (t, name) in [(&cov, "fig3_gamma_coverage"), (&gain, "fig3_gamma_gain")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
