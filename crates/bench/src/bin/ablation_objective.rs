//! **Ablation** — the two-sided utility `α·profit + (1−α)·surplus` (§1).
//!
//! The paper sets α = 1 (pure profit) "without loss of generality"; this
//! bench sweeps the weight and reports the resulting revenue / consumer
//! surplus trade-off for optimally-priced components, demonstrating the
//! claimed generality of the technique.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::{pct2, Table};

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);

    let mut t = Table::new(
        format!("Ablation — objective weight alpha_obj ({} scale)", args.scale.name()),
        &["alpha_obj", "revenue coverage", "surplus / total WTP", "welfare (rev+surplus)"],
    );
    for alpha_obj in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let market = data::market_from(&dataset, args.params().with_objective_alpha(alpha_obj));
        let mut scratch = market.scratch();
        let mut revenue = 0.0;
        let mut surplus = 0.0;
        for item in 0..market.n_items() as u32 {
            let out = market.price_pure(&[item], &mut scratch);
            revenue += out.revenue;
            surplus += out.surplus;
        }
        let total = market.total_wtp();
        t.row(vec![
            format!("{alpha_obj:.2}"),
            pct2(revenue / total),
            pct2(surplus / total),
            pct2((revenue + surplus) / total),
        ]);
    }
    t.print();
    println!(
        "\nnote: alpha_obj = 1 maximizes seller revenue; lower weights deliberately\n\
         leave surplus with consumers (price at the lowest level in the limit)."
    );
    if let Ok(p) = t.save_csv(&args.out_dir, "ablation_objective") {
        println!("saved {}", p.display());
    }
}
