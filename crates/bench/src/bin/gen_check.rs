//! Smoke check: generate the paper-scale dataset, run every algorithm once,
//! print coverage/gain/timing. Not one of the paper's artifacts — a
//! development aid kept for quick sanity runs.

use revmax_core::prelude::*;
use revmax_dataset::AmazonBooksConfig;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let data = AmazonBooksConfig::paper().generate(2015);
    println!("generated in {:?}", t0.elapsed());
    println!("{}", data.summary());

    let params = Params::default();
    let wtp = WtpMatrix::from_ratings(
        data.n_users(),
        data.n_items(),
        data.triples(),
        data.prices(),
        params.lambda,
    );
    let market = Market::new(wtp, params);
    println!("total WTP: {:.0}", market.total_wtp());

    for (_, a) in registry() {
        let t = Instant::now();
        let out = a.run(&market);
        println!(
            "{:<22} coverage {:>6.2}%  gain {:>6.2}%  bundles {:>5}  iters {:>5}  time {:?}",
            out.algorithm,
            out.coverage * 100.0,
            out.gain * 100.0,
            out.config.n_bundles(),
            out.trace.iterations(),
            t.elapsed()
        );
    }
}
