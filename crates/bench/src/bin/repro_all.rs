//! **repro_all** — run every experiment binary with its defaults, capture
//! stdout under `results/`, and print Table 3 (the default parameters).
//!
//! Sibling binaries are located next to this executable (same cargo target
//! directory), so run via `cargo run --release -p revmax-bench --bin
//! repro_all` after `cargo build --release`.

use revmax_core::prelude::*;
use std::io::Write;
use std::process::Command;

const BINARIES: &[&str] = &[
    "table1_example",
    "table2_lambda",
    "fig1_adoption_curves",
    "fig2_theta_sweep",
    "fig3_gamma_sweep",
    "fig4_alpha_sweep",
    "fig5_k_sweep",
    "fig6_revenue_vs_time",
    "fig7_scalability",
    "table45_wsp",
    "table6_case_study",
    "ablation_price_levels",
    "ablation_pruning",
    "ablation_greedy_stop",
    "ablation_objective",
];

fn print_table3() {
    let p = Params::default();
    println!("== Table 3 — default parameter settings ==");
    println!("lambda (conversion factor)        = {}", p.lambda);
    println!("theta  (bundling coefficient)     = {}", p.theta);
    println!("k      (max bundle size)          = {:?}", p.size_cap);
    println!("gamma  (price sensitivity)        = {:e}  (step function)", p.gamma);
    println!("alpha  (adoption bias)            = {}  (unbiased)", p.adoption_bias);
    println!("epsilon                           = {:e}", p.epsilon);
    println!("T      (price levels)             = {}", p.price_levels);
    println!();
}

fn main() {
    print_table3();
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("target dir").to_path_buf();
    let extra: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("results dir");

    let mut failures = Vec::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        if !path.exists() {
            eprintln!("skipping {bin}: binary not built (run `cargo build --release` first)");
            failures.push(*bin);
            continue;
        }
        println!(">>> {bin} {}", extra.join(" "));
        let t0 = std::time::Instant::now();
        let output = Command::new(&path).args(&extra).output().expect("spawn");
        let log = std::path::Path::new("results").join(format!("{bin}.txt"));
        let mut f = std::fs::File::create(&log).expect("log file");
        f.write_all(&output.stdout).unwrap();
        f.write_all(&output.stderr).unwrap();
        print!("{}", String::from_utf8_lossy(&output.stdout));
        if !output.status.success() {
            eprintln!("!!! {bin} FAILED: {}", String::from_utf8_lossy(&output.stderr));
            failures.push(*bin);
        }
        println!("<<< {bin} finished in {:?}\n", t0.elapsed());
    }
    if failures.is_empty() {
        println!("all {} experiments completed; outputs in results/", BINARIES.len());
    } else {
        println!("completed with failures: {failures:?}");
        std::process::exit(1);
    }
}
