//! Perf-smoke gate: compare a fresh `BENCH_JSON` export (from the `sweep`
//! binary or `cargo bench`) against a committed baseline and fail on
//! regressions — the comparison half of the CI `perf-smoke` leg, shipped
//! as a binary (gen_check-style) so it runs locally too.
//!
//! ```sh
//! perf_check baseline=BENCH_pr3.json current=sweep_ci.json \
//!            map=sweep_small/theta0/:endtoend_small/ \
//!            calibrate=median threshold=1.25 min_matches=5
//! ```
//!
//! `map=CUR_PREFIX:BASE_PREFIX` (CSV of pairs) rewrites current-file id
//! prefixes before matching, so sweep ids (`sweep_small/theta0/<method>`)
//! line up against criterion ids (`endtoend_small/<method>`). Keep the
//! trailing slashes: `theta0` without one also rewrites `theta0.05/...`
//! ids into names no baseline holds, silently shrinking the comparison.
//! Ids present in only one file are reported and skipped; `min_matches`
//! (default 1) guards against a silently empty comparison.
//!
//! Two knobs make the gate robust on noisy shared hosts (both are the CI
//! settings):
//!
//! * `stat=min` compares the best observed repetition instead of the
//!   mean (`stat=mean`, the default): scheduler-preemption spikes inflate
//!   means by milliseconds on a busy box, while the minimum approximates
//!   the true cost of the code.
//! * `calibrate=median` divides every ratio by the median ratio before
//!   applying `threshold`: the committed baseline was measured on a
//!   different machine (or a different day of the same shared host), and
//!   a uniform speed difference shifts all ratios together — the median
//!   cancels it, while a *single* configurator regressing still stands
//!   out. A genuinely global slowdown is caught by `abs_cap` (default
//!   4.0): the gate fails when the median ratio itself exceeds it.
//!   `calibrate=off` compares raw ratios (same-machine baselines).
//!
//! Exit codes: 0 ok, 1 regression (calibrated ratio above `threshold`,
//! default 1.25 = +25% solve time, or median above `abs_cap`), 2
//! usage/matching error.

use revmax_engine::report::{parse_bench_json, BenchEntry};

struct Args {
    baseline: String,
    current: String,
    maps: Vec<(String, String)>,
    threshold: f64,
    min_matches: usize,
    calibrate: bool,
    abs_cap: f64,
    use_min: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: String::new(),
        current: String::new(),
        maps: Vec::new(),
        threshold: 1.25,
        min_matches: 1,
        calibrate: false,
        abs_cap: 4.0,
        use_min: false,
    };
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: perf_check baseline=FILE current=FILE [map=CUR:BASE,...] \
                 [stat=mean|min] [calibrate=off|median] [threshold=1.25] [abs_cap=4.0] \
                 [min_matches=1]"
            );
            std::process::exit(0);
        }
        let (key, value) = arg
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("expected key=value, got '{arg}'")));
        match key {
            "baseline" => args.baseline = value.into(),
            "current" => args.current = value.into(),
            "map" => {
                for pair in value.split(',').filter(|s| !s.is_empty()) {
                    let (cur, base) = pair
                        .split_once(':')
                        .unwrap_or_else(|| fail(&format!("map '{pair}' is not CUR:BASE")));
                    args.maps.push((cur.into(), base.into()));
                }
            }
            "calibrate" => {
                args.calibrate = match value {
                    "median" => true,
                    "off" => false,
                    other => fail(&format!("calibrate '{other}' (expected off|median)")),
                };
            }
            "stat" => {
                args.use_min = match value {
                    "min" => true,
                    "mean" => false,
                    other => fail(&format!("stat '{other}' (expected mean|min)")),
                };
            }
            "threshold" => {
                args.threshold =
                    value.parse().unwrap_or_else(|_| fail(&format!("bad threshold '{value}'")));
                if args.threshold <= 0.0 {
                    fail("threshold must be positive");
                }
            }
            "abs_cap" => {
                args.abs_cap =
                    value.parse().unwrap_or_else(|_| fail(&format!("bad abs_cap '{value}'")));
                if args.abs_cap <= 0.0 {
                    fail("abs_cap must be positive");
                }
            }
            "min_matches" => {
                args.min_matches =
                    value.parse().unwrap_or_else(|_| fail(&format!("bad min_matches '{value}'")));
                if args.min_matches == 0 {
                    fail("min_matches must be >= 1 (an empty comparison gates nothing)");
                }
            }
            other => fail(&format!("unknown key '{other}'")),
        }
    }
    if args.baseline.is_empty() || args.current.is_empty() {
        fail("both baseline= and current= are required");
    }
    args
}

fn load(path: &str) -> Vec<BenchEntry> {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read '{path}': {e}")));
    let entries = parse_bench_json(&body);
    if entries.is_empty() {
        fail(&format!("'{path}' holds no BENCH_JSON entries"));
    }
    entries
}

/// Rewrite a current-file id through the prefix maps (first match wins).
fn mapped_id(id: &str, maps: &[(String, String)]) -> String {
    for (cur, base) in maps {
        if let Some(rest) = id.strip_prefix(cur.as_str()) {
            return format!("{base}{rest}");
        }
    }
    id.to_string()
}

fn main() {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let current = load(&args.current);

    // Pass 1: match ids and collect raw ratios of the chosen statistic.
    let stat = |e: &BenchEntry| if args.use_min { e.min_ns } else { e.mean_ns };
    let mut rows: Vec<(String, u128, u128, f64)> = Vec::new(); // (id, base, cur, ratio)
    let mut skipped: Vec<String> = Vec::new();
    for cur in &current {
        let id = mapped_id(&cur.id, &args.maps);
        match baseline.iter().find(|b| b.id == id) {
            Some(base) => {
                let ratio = stat(cur) as f64 / stat(base).max(1) as f64;
                rows.push((id, stat(base), stat(cur), ratio));
            }
            None => skipped.push(id),
        }
    }
    if rows.len() < args.min_matches {
        fail(&format!(
            "only {} id(s) matched the baseline (need {})",
            rows.len(),
            args.min_matches
        ));
    }

    // Machine-speed calibration: the median raw ratio estimates the
    // uniform host-speed shift between the two measurements (even counts
    // average the middle pair — taking the upper-middle element would
    // bias the gate lenient exactly when half the ids regressed).
    let median = {
        let mut sorted: Vec<f64> = rows.iter().map(|r| r.3).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    };
    let scale = if args.calibrate { median } else { 1.0 };

    let mut regressions: Vec<String> = Vec::new();
    println!(
        "{:<44} {:>12} {:>12} {:>8} {:>8}  verdict (threshold {:.2}x{}, stat {})",
        "id (baseline)",
        "base ns",
        "current ns",
        "ratio",
        "calibr.",
        args.threshold,
        if args.calibrate { ", median-calibrated" } else { "" },
        if args.use_min { "min" } else { "mean" }
    );
    for (id, base_ns, cur_ns, ratio) in &rows {
        let calibrated = ratio / scale;
        let verdict = if calibrated > args.threshold { "REGRESSED" } else { "ok" };
        println!("{id:<44} {base_ns:>12} {cur_ns:>12} {ratio:>7.2}x {calibrated:>7.2}x  {verdict}");
        if calibrated > args.threshold {
            regressions.push(format!("{id}: {calibrated:.2}x (>{:.2}x)", args.threshold));
        }
    }
    for id in &skipped {
        println!(
            "{id:<44} {:>12} {:>12} {:>8} {:>8}  (no baseline entry; skipped)",
            "-", "-", "-", "-"
        );
    }
    // Baseline ids the current export never produced: a shrinking
    // comparison must be visible, not silent.
    let compared: Vec<&String> = rows.iter().map(|r| &r.0).collect();
    for base in &baseline {
        if !compared.contains(&&base.id) {
            println!(
                "{:<44} {:>12} {:>12} {:>8} {:>8}  (no current entry; skipped)",
                base.id, base.mean_ns, "-", "-", "-"
            );
        }
    }
    if args.calibrate {
        println!("median host-speed ratio: {median:.2}x (abs_cap {:.2}x)", args.abs_cap);
        if median > args.abs_cap {
            eprintln!(
                "perf_check: median ratio {median:.2}x exceeds abs_cap {:.2}x — global regression \
                 (or a baseline from a machine too different to compare)",
                args.abs_cap
            );
            std::process::exit(1);
        }
    }

    if regressions.is_empty() {
        println!(
            "perf_check: {} id(s) compared, no regression above {:.2}x",
            rows.len(),
            args.threshold
        );
    } else {
        eprintln!("perf_check: {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("perf_check: {msg}");
    std::process::exit(2);
}
