//! Batch multi-market sweep runner over the `revmax-engine` job DAG.
//!
//! The spec is a tiny hand-rolled `key=value` format (values CSV; see
//! `revmax_engine::spec`): every CLI argument is one assignment, and
//! `--spec <file>` loads a file of one-per-line assignments first (CLI
//! assignments override it, in order).
//!
//! ```sh
//! sweep methods=all scales=small cohorts=3 thetas=0,0.05 seeds=2015,2015 repeat=5
//! sweep methods=components dists=rating,pareto tails=4,2,1.5 objectives=mean,cvar:0.9 gate=tail
//! sweep --spec sweeps/fleet.spec cache=off
//! ```
//!
//! Prints the per-cell table with cache hit/miss counters and the job-DAG
//! summary. When `json=<path>` is given — or the `BENCH_JSON` environment
//! variable is set, matching the vendored criterion's export — the
//! whole-market solve timings are written there in the `BENCH_JSON`
//! interchange format (`sweep_<scale>/theta<θ>[/<dist>][/<objective>]/<method>`
//! ids, merged with any entries already in the file), ready for
//! `perf_check` to compare against a committed baseline.
//!
//! `gate=tail` runs the heavy-tail acceptance check after the sweep: for
//! every (scale, seed, θ, objective, dist-kind) group the Kupfer
//! bundle-vs-separate ratio must be non-decreasing as the tail gets
//! heavier (Pareto: α descending; lognormal: σ ascending) — the van
//! Eck–Kleer–van Leeuwaarden (2025) prediction that bundling's edge grows
//! with tail weight, under the mean and robust objectives alike. A
//! violation exits 1.

use revmax_engine::{report, run_sweep, Cohort, DistKind, SweepReport, SweepSpec, WtpDist};

fn main() {
    let mut spec = SweepSpec::default();
    let mut json_path = std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty());
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: sweep [--spec FILE] [key=value ...]\n\
                     keys: methods scales thetas seeds dists tails objectives cohorts repeat \
                     budget_ms cache threads json gate\n\
                     (see crates/engine/src/spec.rs for the full syntax)"
                );
                return;
            }
            "--spec" => {
                let path = args.next().unwrap_or_else(|| fail("--spec requires a file path"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read spec '{path}': {e}")));
                spec.apply_text(&text).unwrap_or_else(|e| fail(&format!("spec '{path}': {e}")));
            }
            other => {
                let (key, value) = other
                    .split_once('=')
                    .unwrap_or_else(|| fail(&format!("expected key=value, got '{other}'")));
                match key {
                    "json" => json_path = Some(value.to_string()),
                    "gate" => match value {
                        "tail" => gate = Some(value.to_string()),
                        "none" => gate = None,
                        other => fail(&format!("unknown gate '{other}' (expected tail|none)")),
                    },
                    _ => spec.apply(key, value).unwrap_or_else(|e| fail(&e)),
                }
            }
        }
    }

    let report = run_sweep(&spec).unwrap_or_else(|e| fail(&e));
    print!("{}", report.render_table());

    if let Some(path) = json_path {
        let entries = report.bench_entries();
        report::write_bench_json(&path, &entries)
            .unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
        println!("wrote {} timing entries to {path}", entries.len());
    }

    if gate.as_deref() == Some("tail") {
        match tail_gate(&report) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("sweep: tail gate FAILED\n{e}");
                std::process::exit(1);
            }
        }
    }
}

/// One point on a tail curve: the tail knob and its market's Kupfer ratio.
struct TailPoint {
    knob: f64,
    kupfer: f64,
}

/// Check that within every (scale, seed, θ, objective, dist-kind) group of
/// whole-market cells, the Kupfer bundle-vs-separate ratio is
/// non-decreasing as the tail gets heavier. Returns the rendered curves on
/// success, the violating curve on failure; groups need ≥ 2 tail points to
/// be checked, and at least one checkable group must exist.
fn tail_gate(report: &SweepReport) -> Result<String, String> {
    // (group label, kind, points); kupfer is per-market, so dedupe the
    // method axis by keying on the market fingerprint.
    let mut groups: Vec<(String, DistKind, Vec<TailPoint>)> = Vec::new();
    let mut seen_markets: Vec<u64> = Vec::new();
    for c in &report.cells {
        if c.cohort != Cohort::Whole || seen_markets.contains(&c.fingerprint) {
            continue;
        }
        seen_markets.push(c.fingerprint);
        let (kind, knob) = match c.dist {
            WtpDist::Rating => continue,
            WtpDist::Pareto { alpha } => (DistKind::Pareto, alpha),
            WtpDist::LogNormal { sigma } => (DistKind::LogNormal, sigma),
        };
        let label = format!(
            "{} seed={} theta={} obj={} {}",
            c.scale.name(),
            c.seed,
            c.theta,
            c.objective.id_fragment(),
            if kind == DistKind::Pareto { "pareto" } else { "lognormal" },
        );
        match groups.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, _, pts)) => pts.push(TailPoint { knob, kupfer: c.kupfer }),
            None => groups.push((label, kind, vec![TailPoint { knob, kupfer: c.kupfer }])),
        }
    }
    let mut out = String::new();
    let mut checked = 0usize;
    for (label, kind, mut pts) in groups {
        if pts.len() < 2 {
            continue;
        }
        checked += 1;
        // Lightest tail first: Pareto α descending, lognormal σ ascending.
        match kind {
            DistKind::Pareto => pts.sort_by(|a, b| b.knob.total_cmp(&a.knob)),
            _ => pts.sort_by(|a, b| a.knob.total_cmp(&b.knob)),
        }
        let curve: Vec<String> =
            pts.iter().map(|p| format!("{}:{:.4}", p.knob, p.kupfer)).collect();
        for w in pts.windows(2) {
            if w[1].kupfer < w[0].kupfer * (1.0 - 1e-9) {
                return Err(format!(
                    "{label}: Kupfer ratio fell from {:.6} (knob {}) to {:.6} (knob {}) as the \
                     tail got heavier; curve: {}",
                    w[0].kupfer,
                    w[0].knob,
                    w[1].kupfer,
                    w[1].knob,
                    curve.join(" -> "),
                ));
            }
        }
        out.push_str(&format!("tail gate OK: {label}: {}\n", curve.join(" -> ")));
    }
    if checked == 0 {
        return Err(
            "no checkable tail curves — gate=tail needs a heavy-tailed dist axis with >= 2 tails"
                .into(),
        );
    }
    Ok(out)
}

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}
