//! Batch multi-market sweep runner over the `revmax-engine` job DAG.
//!
//! The spec is a tiny hand-rolled `key=value` format (values CSV; see
//! `revmax_engine::spec`): every CLI argument is one assignment, and
//! `--spec <file>` loads a file of one-per-line assignments first (CLI
//! assignments override it, in order).
//!
//! ```sh
//! sweep methods=all scales=small cohorts=3 thetas=0,0.05 seeds=2015,2015 repeat=5
//! sweep --spec sweeps/fleet.spec cache=off
//! ```
//!
//! Prints the per-cell table with cache hit/miss counters and the job-DAG
//! summary. When `json=<path>` is given — or the `BENCH_JSON` environment
//! variable is set, matching the vendored criterion's export — the
//! whole-market solve timings are written there in the `BENCH_JSON`
//! interchange format (`sweep_<scale>/theta<θ>/<method>` ids, merged with
//! any entries already in the file), ready for `perf_check` to compare
//! against a committed baseline.

use revmax_engine::{report, run_sweep, SweepSpec};

fn main() {
    let mut spec = SweepSpec::default();
    let mut json_path = std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty());
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: sweep [--spec FILE] [key=value ...]\n\
                     keys: methods scales thetas seeds cohorts repeat budget_ms cache threads \
                     json\n\
                     (see crates/engine/src/spec.rs for the full syntax)"
                );
                return;
            }
            "--spec" => {
                let path = args.next().unwrap_or_else(|| fail("--spec requires a file path"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read spec '{path}': {e}")));
                spec.apply_text(&text).unwrap_or_else(|e| fail(&format!("spec '{path}': {e}")));
            }
            other => {
                let (key, value) = other
                    .split_once('=')
                    .unwrap_or_else(|| fail(&format!("expected key=value, got '{other}'")));
                if key == "json" {
                    json_path = Some(value.to_string());
                } else {
                    spec.apply(key, value).unwrap_or_else(|e| fail(&e));
                }
            }
        }
    }

    let report = run_sweep(&spec).unwrap_or_else(|e| fail(&e));
    print!("{}", report.render_table());

    if let Some(path) = json_path {
        let entries = report.bench_entries();
        report::write_bench_json(&path, &entries)
            .unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
        println!("wrote {} timing entries to {path}", entries.len());
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}
