//! **Ablation** — Algorithm 2's stopping condition (§5.3.2).
//!
//! The paper adopts "stop when there is no more revenue gain" and claims
//! the alternative (merge all the way to one bundle, return the best
//! intermediate configuration) "would increase running time significantly
//! without producing meaningful revenue gain". This bench measures both.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::{pct2, secs, Table};
use revmax_core::algorithms::GreedyOptions;
use revmax_core::prelude::*;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let market = data::market(args.scale, args.seed, args.params());

    let mut t = Table::new(
        format!("Ablation — greedy stopping condition ({} scale)", args.scale.name()),
        &["method", "stop rule", "coverage", "gain", "iterations", "time (s)"],
    );
    for merge_to_single in [false, true] {
        let rule = if merge_to_single { "merge-to-single" } else { "no-gain (paper)" };
        let opts = GreedyOptions { merge_to_single, ..Default::default() };
        for (name, out, dt) in [
            {
                let t0 = Instant::now();
                let o = PureGreedy { opts }.run(&market);
                ("Pure Greedy", o, t0.elapsed())
            },
            {
                let t0 = Instant::now();
                let o = MixedGreedy { opts }.run(&market);
                ("Mixed Greedy", o, t0.elapsed())
            },
        ] {
            t.row(vec![
                name.into(),
                rule.into(),
                pct2(out.coverage),
                pct2(out.gain),
                out.trace.iterations().to_string(),
                secs(dt),
            ]);
            eprintln!("{name} ({rule}) done");
        }
    }
    t.print();
    if let Ok(p) = t.save_csv(&args.out_dir, "ablation_greedy_stop") {
        println!("saved {}", p.display());
    }
}
