//! `revmax-served` — stand up the serving daemon (`DESIGN.md` §11) on a
//! generated market and run until a `Shutdown` frame arrives.
//!
//! ```sh
//! revmax-served addr=127.0.0.1:7411 scale=tiny workers=2 &
//! loadgen addr=127.0.0.1:7411 scale=tiny shutdown=on
//! ```
//!
//! Keys (all `key=value`): `addr` (bind address; port 0 picks an
//! ephemeral port, which is printed), `scale` (tiny|small|medium),
//! `seed`, `theta`, `methods` (CSV of registry names/aliases; the first
//! method's whole-market cell is the served menu), `cohorts`, `workers`
//! (query worker threads), `queue` (bounded request-queue capacity — the
//! admission-control knob), `coalesce` (max extra same-kind requests per
//! batched call; 0 disables), `query_threads` (`revmax-par` threads per
//! batched call; results are bit-identical at any value), `compact_at`
//! (`MarketLog` compaction threshold; 0 disables).
//!
//! The daemon solves once up front, prints `listening on <addr>`, and
//! from then on every swap happens off the request path in the churn
//! thread. The process exits 0 after a clean `Shutdown` drain.

use revmax_bench::cli::unknown_key_msg;
use revmax_engine::ScaleSpec;
use revmax_serve::{Daemon, DaemonConfig};

struct Args {
    addr: String,
    scale: ScaleSpec,
    seed: u64,
    theta: f64,
    cfg: DaemonConfig,
}

const KEYS: [&str; 11] = [
    "addr",
    "scale",
    "seed",
    "theta",
    "methods",
    "cohorts",
    "workers",
    "queue",
    "coalesce",
    "query_threads",
    "compact_at",
];

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        scale: ScaleSpec::Tiny,
        seed: 2015,
        theta: 0.05,
        cfg: DaemonConfig::default(),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: revmax-served [addr=127.0.0.1:0] [scale=tiny] [seed=2015] \
                 [theta=0.05] [methods=components] [cohorts=0] [workers=2] [queue=1024] \
                 [coalesce=16] [query_threads=1] [compact_at=0.1]"
            );
            std::process::exit(0);
        }
        let (key, value) = arg
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("expected key=value, got '{arg}'")));
        match key {
            "addr" => args.addr = value.into(),
            "scale" => args.scale = ScaleSpec::parse(value).unwrap_or_else(|e| fail(&e)),
            "seed" => args.seed = parse_num(key, value),
            "theta" => args.theta = parse_num(key, value),
            "methods" => {
                args.cfg.methods =
                    value.split(',').filter(|s| !s.is_empty()).map(String::from).collect();
                if args.cfg.methods.is_empty() {
                    fail("methods list is empty");
                }
            }
            "cohorts" => args.cfg.cohorts = parse_num(key, value),
            "workers" => args.cfg.workers = parse_num::<usize>(key, value).max(1),
            "queue" => args.cfg.queue_cap = parse_num::<usize>(key, value).max(1),
            "coalesce" => args.cfg.coalesce = parse_num(key, value),
            "query_threads" => args.cfg.query_threads = parse_num::<usize>(key, value).max(1),
            "compact_at" => args.cfg.compact_at = parse_num(key, value),
            other => fail(&unknown_key_msg(other, &KEYS)),
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("bad {key} '{value}'")))
}

fn main() {
    let args = parse_args();
    let data = args.scale.config().generate(args.seed);
    let market = revmax_engine::market_from_data(&data, args.theta);
    println!(
        "revmax-served: {} users x {} items (scale={} seed={} theta={}), solving...",
        market.n_users(),
        market.n_items(),
        args.scale.name(),
        args.seed,
        args.theta
    );

    let daemon =
        Daemon::spawn(args.addr.as_str(), market, args.cfg.clone()).unwrap_or_else(|e| fail(&e));
    println!(
        "revmax-served: listening on {} ({} workers, queue {}, coalesce {})",
        daemon.addr(),
        args.cfg.workers,
        args.cfg.queue_cap,
        args.cfg.coalesce
    );
    daemon.join();
    println!("revmax-served: drained and stopped");
}

fn fail(msg: &str) -> ! {
    eprintln!("revmax-served: {msg}");
    std::process::exit(2);
}
