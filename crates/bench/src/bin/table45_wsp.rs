//! **Tables 4 & 5** — comparison to weighted set packing on small random
//! item samples (all users retained): revenue coverage and running time of
//! Pure Matching / Pure Greedy vs `Optimal` (exact packing over all
//! 2^N − 1 bundles) and `Greedy WSP` (√N approximation).
//!
//! Protocol (paper §6.4): N ∈ {10, 15, 20, 25} random items out of the full
//! catalogue, all users kept; only samples where a bundle of size ≥ 3 forms
//! are retained; results averaged over `--runs` accepted samples. The paper
//! cannot compute `Optimal` at N = 25 (33M ILP variables) and neither do we
//! (the subset DP would take ~3^25 steps) — reported as "—", exactly like
//! the paper. N = 25 requires `--full` (enumerating 2^25 bundle revenues).
//!
//! All four methods run on the *same* grid-discretized pricing (T = 100,
//! the paper's §4.2 scheme) so the comparison is apples-to-apples.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct, secs, Table};
use revmax_bench::{data, runstats};
use revmax_core::prelude::*;
use revmax_core::wsp;
use revmax_dataset::scale as dscale;
use std::time::{Duration, Instant};

struct SampleResult {
    coverage: [f64; 4], // PureMatching, PureGreedy, Optimal, GreedyWSP
    time: [Duration; 4],
    enumeration: Duration,
    max_bundle: usize,
}

fn main() {
    let args = BenchArgs::parse(Scale::Paper);
    let base = data::dataset(args.scale, args.seed);
    let sizes: Vec<usize> = if args.full { vec![10, 15, 20, 25] } else { vec![10, 15, 20] };
    const OPTIMAL_MAX_N: usize = 22;

    let mut cov_table = Table::new(
        "Table 4 — comparison to weighted set packing: revenue coverage (mean over samples)",
        &["N", "Pure Matching", "Pure Greedy", "Optimal", "Greedy WSP", "paper (PM/PG/Opt/GW)"],
    );
    let mut time_table = Table::new(
        "Table 5 — comparison to weighted set packing: running time, seconds (mean)",
        &["N", "Pure Matching", "Pure Greedy", "Optimal", "Greedy WSP", "enumeration"],
    );
    let paper_cov = [
        "78.1 / 78.1 / 78.1 / 68.1",
        "77.8 / 77.8 / 77.8 / 65.2",
        "77.9 / 77.9 / 77.9 / 64.9",
        "77.2 / 77.2 /  -   / 64.3",
    ];

    for (si, &n) in sizes.iter().enumerate() {
        // Acceptance rule: prefer the paper's "a bundle of size ≥ 3
        // formed"; fall back to ≥ 2, then to any sample. On the synthetic
        // data per-item stars are independent across users, so profitable
        // high-order merges are much rarer than on the real Amazon crawl —
        // the fallback keeps the Optimal/heuristic/GreedyWSP comparison
        // meaningful and the acceptance level is reported per row.
        // Phase 1 (cheap): run only Pure Matching per attempt and rank the
        // seeds by the largest bundle formed; the paper's filter keeps
        // size ≥ 3. Phase 2 (expensive): the full WSP pipeline runs on the
        // best `--runs` seeds only.
        let mut ranked: Vec<(u64, usize)> = Vec::new(); // (sample seed, max bundle)
        let mut attempt = 0u64;
        while attempt < args.runs as u64 * 15 {
            attempt += 1;
            let sample_seed = args.seed.wrapping_add(attempt * 7919);
            // Correlated (co-rating neighbourhood) sampling: uniformly
            // random item tuples almost never co-rate on synthetic data.
            let sample = dscale::sample_items_correlated(&base, n, sample_seed);
            let market = data::market_from(&sample, args.params()).with_grid_pricing();
            let pm = PureMatching::default().run(&market);
            ranked.push((sample_seed, pm.config.max_bundle_size()));
            if ranked.iter().filter(|(_, mb)| *mb >= 3).count() >= args.runs {
                break; // enough paper-grade samples
            }
        }
        ranked.sort_by_key(|&(_, mb)| std::cmp::Reverse(mb));
        ranked.truncate(args.runs);

        let mut accepted: Vec<SampleResult> = Vec::new();
        for &(sample_seed, _) in &ranked {
            let sample = dscale::sample_items_correlated(&base, n, sample_seed);
            // Grid pricing for WSP-consistency (see module docs).
            let market = data::market_from(&sample, args.params()).with_grid_pricing();

            let t0 = Instant::now();
            let pm = PureMatching::default().run(&market);
            let pm_time = t0.elapsed();
            let t0 = Instant::now();
            let pg = PureGreedy::default().run(&market);
            let pg_time = t0.elapsed();

            let table = wsp::enumerate_subset_revenues(&market);
            let (opt_cov, opt_time) = if n <= OPTIMAL_MAX_N {
                let o = wsp::optimal(&market, &table);
                (o.coverage, o.trace.total_time())
            } else {
                (f64::NAN, Duration::ZERO)
            };
            let gw = wsp::greedy_wsp(&market, &table);

            accepted.push(SampleResult {
                coverage: [pm.coverage, pg.coverage, opt_cov, gw.coverage],
                time: [pm_time, pg_time, opt_time, gw.trace.total_time()],
                enumeration: table.enumeration_time,
                max_bundle: pm.config.max_bundle_size(),
            });
        }
        eprintln!(
            "N={n}: {} samples from {attempt} attempts (max-bundle sizes {:?})",
            accepted.len(),
            accepted.iter().map(|s| s.max_bundle).collect::<Vec<_>>()
        );
        if accepted.is_empty() {
            cov_table.row(vec![
                n.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                paper_cov[si.min(3)].into(),
            ]);
            continue;
        }
        let mean_cov = |k: usize| -> String {
            let vals: Vec<f64> =
                accepted.iter().map(|s| s.coverage[k]).filter(|v| !v.is_nan()).collect();
            if vals.is_empty() {
                "-".into()
            } else {
                pct(runstats::summarize(&vals).mean)
            }
        };
        let mean_time = |k: usize| -> String {
            let vals: Vec<f64> = accepted.iter().map(|s| s.time[k].as_secs_f64()).collect();
            if n > OPTIMAL_MAX_N && k == 2 {
                "-".into()
            } else {
                format!("{:.3}", runstats::summarize(&vals).mean)
            }
        };
        cov_table.row(vec![
            n.to_string(),
            mean_cov(0),
            mean_cov(1),
            mean_cov(2),
            mean_cov(3),
            paper_cov[si.min(3)].into(),
        ]);
        let enum_mean: Vec<f64> = accepted.iter().map(|s| s.enumeration.as_secs_f64()).collect();
        time_table.row(vec![
            n.to_string(),
            mean_time(0),
            mean_time(1),
            mean_time(2),
            mean_time(3),
            secs(Duration::from_secs_f64(runstats::summarize(&enum_mean).mean)),
        ]);
    }
    cov_table.print();
    println!();
    time_table.print();
    for (t, name) in [(&cov_table, "table4_wsp_coverage"), (&time_table, "table5_wsp_time")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
