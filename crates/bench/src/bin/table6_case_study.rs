//! **Table 6** — the mixed-bundling case study: three books, their
//! individually-priced menu, the three candidate 2-bundles with their
//! *additional* buyers/revenue, the selected pair, and the 3-bundle built
//! on top of it.
//!
//! The triple is discovered by running Mixed Greedy on the dataset and
//! taking a 3-item root (the paper picked its example from real output the
//! same way); the menu is then replayed step by step to regenerate the
//! table's structure.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::Table;
use revmax_core::mixed;
use revmax_core::prelude::*;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let market = data::market(args.scale, args.seed, args.params());

    // Find a 3-item mixed bundle produced by the actual algorithm.
    let out = MixedGreedy::default().run(&market);
    let triple: Vec<u32> = out
        .config
        .roots
        .iter()
        .find(|r| r.bundle.len() == 3)
        .map(|r| r.bundle.items().to_vec())
        .unwrap_or_else(|| {
            // Fall back: first three items of the largest bundle.
            let mut roots: Vec<_> = out.config.roots.iter().collect();
            roots.sort_by_key(|r| std::cmp::Reverse(r.bundle.len()));
            roots[0].bundle.items().iter().take(3).copied().collect()
        });
    assert_eq!(triple.len(), 3, "dataset produced no 3-item bundle to study");
    let (x, y, z) = (triple[0], triple[1], triple[2]);
    eprintln!("case-study items: {x}, {y}, {z}");

    let mut scratch = market.scratch();
    let singles: Vec<mixed::TopOffer> =
        triple.iter().map(|&i| mixed::init_component(&market, i, &mut scratch)).collect();

    let mut t = Table::new(
        format!("Table 6 — case study: mixed bundling (items {x}, {y}, {z})"),
        &["bundle", "price", "add. buyers", "add. revenue", "selected?"],
    );
    for s in &singles {
        t.row(vec![
            s.node.bundle.to_string(),
            format!("{:.2}", s.node.price),
            s.states.len().to_string(),
            format!("{:.2}", s.revenue),
            "yes".into(),
        ]);
    }

    // All three candidate pairs, with additional buyers/revenue.
    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let mut best: Option<(usize, usize, f64, f64)> = None; // (i, j, price, gain)
    for &(i, j) in &pairs {
        let plan = mixed::price_merge(&market, &singles[i], &singles[j], &mut scratch);
        let (price, gain) = plan.map_or((f64::NAN, 0.0), |p| (p.price, p.gain));
        if gain > best.map_or(0.0, |b| b.3) {
            best = Some((i, j, price, gain));
        }
        t.row(vec![
            format!("({}, {})", singles[i].node.bundle, singles[j].node.bundle),
            if price.is_nan() { "-".into() } else { format!("{price:.2}") },
            "-".into(),
            format!("{gain:.2}"),
            "tbd".into(),
        ]);
    }

    // Commit the best pair (if any), then try the 3-bundle on top.
    if let Some((i, j, price, gain)) = best {
        let k = (0..3).find(|&k| k != i && k != j).unwrap();
        let mut parts = singles;
        // Order: remove higher index first.
        let (hi, lo) = (i.max(j), i.min(j));
        let b_hi = parts.remove(hi);
        let b_lo = parts.remove(lo);
        let third = parts.pop().unwrap();
        let pair_offer = mixed::commit_merge(&market, b_lo, b_hi, price, &mut scratch);
        println!(
            "selected pair {} at {:.2} (additional revenue {:.2})",
            pair_offer.node.bundle, price, gain
        );
        if let Some(plan3) = mixed::price_merge(&market, &pair_offer, &third, &mut scratch) {
            t.row(vec![
                format!("({}, {})", pair_offer.node.bundle, third.node.bundle),
                format!("{:.2}", plan3.price),
                "-".into(),
                format!("{:.2}", plan3.gain),
                "yes".into(),
            ]);
            let full = mixed::commit_merge(&market, pair_offer, third, plan3.price, &mut scratch);
            println!(
                "3-bundle {} at {:.2}; tree revenue {:.2}",
                full.node.bundle, plan3.price, full.revenue
            );
        } else {
            println!("3-bundle adds no revenue over the selected pair (item {k} stays separate)");
        }
    } else {
        println!("no pair adds revenue for this triple");
    }

    t.print();
    if let Ok(p) = t.save_csv(&args.out_dir, "table6_case_study") {
        println!("saved {}", p.display());
    }
}
