//! **Ablation** — the two pruning rules of Algorithm 1 (§5.3.1).
//!
//! Co-rater pruning is provably lossless at θ ≤ 0 (no consumer can pay for
//! the second half of a bundle nobody co-rates) but heuristic for θ > 0;
//! new-vertex pruning is heuristic everywhere ("edges in previous
//! iterations ... will never form a bundle" is an empirical claim). This
//! bench measures both flags' effect on revenue and time, at θ = 0 and at
//! θ = +0.05.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::data;
use revmax_bench::report::{pct2, secs, Table};
use revmax_core::algorithms::MatchingOptions;
use revmax_core::prelude::*;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);

    let mut t = Table::new(
        format!("Ablation — Algorithm 1 pruning rules ({} scale)", args.scale.name()),
        &["theta", "co-rater", "new-vertex", "coverage", "gain", "time (s)"],
    );
    for theta in [0.0, 0.05] {
        let market = data::market_from(&dataset, args.params().with_theta(theta));
        for (cr, nv) in [(true, true), (true, false), (false, true), (false, false)] {
            let algo = PureMatching {
                opts: MatchingOptions {
                    co_rater_pruning: cr,
                    new_vertex_pruning: nv,
                    ..Default::default()
                },
            };
            let t0 = Instant::now();
            let out = algo.run(&market);
            t.row(vec![
                format!("{theta:+.2}"),
                cr.to_string(),
                nv.to_string(),
                pct2(out.coverage),
                pct2(out.gain),
                secs(t0.elapsed()),
            ]);
            eprintln!("theta {theta:+.2} co-rater={cr} new-vertex={nv} done");
        }
    }
    t.print();
    if let Ok(p) = t.save_csv(&args.out_dir, "ablation_pruning") {
        println!("saved {}", p.display());
    }
}
