//! **Table 1** — the paper's worked 3-consumer / 2-item example
//! (θ = −0.05): Components $27, Pure Bundling $30.40, Mixed Bundling.
//!
//! The paper reports $38.20 for mixed bundling; that number follows the
//! intro's naive "buy the bundle whenever affordable" reading (and even
//! then sums to $38.40 — see DESIGN.md §2.7). Under the paper's own §4.2
//! upgrade policy the same menu nets $31.20 and the *optimal* mixed menu
//! nets $32.00. All four numbers are printed.

use revmax_bench::report::Table;
use revmax_core::prelude::*;

fn main() {
    let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
    let market = Market::new(w, Params::default().with_theta(-0.05));

    let components = Components::optimal().run(&market);
    let pure = PureMatching::default().run(&market);
    let mixed = MixedMatching::default().run(&market);

    // The paper's published mixed menu (pA=8, pB=11, pAB=15.20), evaluated
    // under each consumer-choice reading (see core::policy).
    use revmax_core::bundle::Bundle;
    use revmax_core::config::{BundleConfig, OfferNode, Strategy};
    use revmax_core::policy::ChoicePolicy;
    let paper_menu = BundleConfig {
        strategy: Strategy::Mixed,
        roots: vec![OfferNode {
            bundle: Bundle::new(vec![0, 1]),
            price: 15.2,
            children: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        }],
    };
    let naive = paper_menu.expected_revenue_with_policy(&market, ChoicePolicy::NaiveAffordable);
    let surplus_max = paper_menu.expected_revenue_with_policy(&market, ChoicePolicy::SurplusMax);

    let mut t = Table::new(
        "Table 1 — positive example of bundling (theta = -0.05)",
        &["strategy", "paper", "reproduced", "note"],
    );
    t.row(vec![
        "Components".into(),
        "$27.00".into(),
        format!("${:.2}", components.revenue),
        "pA=$8, pB=$11".into(),
    ]);
    t.row(vec![
        "Pure bundling".into(),
        "$30.40".into(),
        format!("${:.2}", pure.revenue),
        format!("pAB=${:.2}", pure.config.roots[0].price),
    ]);
    t.row(vec![
        "Mixed (naive rule, paper menu)".into(),
        "$38.20".into(),
        format!("${naive:.2}"),
        "paper's $38.20 appears to be a typo for $38.40".into(),
    ]);
    t.row(vec![
        "Mixed (Adams-Yellen, paper menu)".into(),
        "-".into(),
        format!("${surplus_max:.2}"),
        "rational surplus-maximizing consumers".into(),
    ]);
    t.row(vec![
        "Mixed (sec. 4.2 upgrade rule)".into(),
        "-".into(),
        format!("${:.2}", mixed.revenue),
        "optimal menu under rational upgrades".into(),
    ]);
    t.print();

    assert!((components.revenue - 27.0).abs() < 1e-9);
    assert!((pure.revenue - 30.4).abs() < 1e-9);
    assert!((naive - 38.4).abs() < 1e-9);
    assert!((surplus_max - 31.2).abs() < 1e-9);
    assert!((mixed.revenue - 32.0).abs() < 1e-9);
    println!("\nall reproduced values verified programmatically");

    let args = revmax_bench::args::BenchArgs::parse(revmax_bench::args::Scale::Small);
    if let Ok(p) = t.save_csv(&args.out_dir, "table1_example") {
        println!("saved {}", p.display());
    }
}
