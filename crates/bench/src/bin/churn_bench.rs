//! Churn-path benchmark and verifier (`DESIGN.md` §10): apply delta
//! batches through the `MarketLog` and race the **incremental** path
//! (overlay snapshot → `LiveEngine` re-solve with its retained outcome
//! cache → recompile + hot-swap the serving index) against the **cold**
//! path (compact to a fresh arena → solve every cell from scratch →
//! compile a fresh index).
//!
//! ```sh
//! churn_bench scale=small batch=0.01 batches=5 gate=on json=churn_ci.json
//! ```
//!
//! Keys (all `key=value`): `scale` (tiny|small|medium), `seed`, `theta`,
//! `methods` (CSV of registry names/aliases), `cohorts`, `batch` (fraction
//! of consumers churned per batch), `batches` (number of delta batches),
//! `compact_at` (pending-delta fraction that triggers log compaction; 0
//! disables), `max_ratio` (gate: total incremental wall-clock must be ≤
//! this fraction of cold), `gate` (on|off), `json` (BENCH_JSON export; the
//! `BENCH_JSON` env var works too).
//!
//! Verification (always on, exit 1 on violation): after **every** batch
//! the incremental resolve must render a [`canonical`] report bit-identical
//! to the cold resolve of the same market, and the swapped serving index
//! must answer `expected_revenue_all` bit-identically to the cold-compiled
//! index — the tentpole parity guarantee. The `gate=on` wall-clock check
//! backs the CI `churn-smoke` leg together with `perf_check` (ids
//! `churn_<scale>/b<batches>/{incremental, cold}`).
//!
//! [`canonical`]: revmax_engine::LiveReport::canonical

use revmax_bench::cli::unknown_key_msg;
use revmax_core::market::Market;
use revmax_core::marketlog::{Event, MarketLog};
use revmax_engine::report::{write_bench_json, BenchEntry};
use revmax_engine::{LiveEngine, ScaleSpec};
use revmax_serve::{MenuIndex, ServeHandle};
use std::time::Instant;

struct Args {
    scale: ScaleSpec,
    seed: u64,
    theta: f64,
    methods: Vec<String>,
    cohorts: usize,
    batch: f64,
    batches: usize,
    compact_at: f64,
    max_ratio: f64,
    gate: bool,
    json: Option<String>,
}

const KEYS: [&str; 11] = [
    "scale",
    "seed",
    "theta",
    "methods",
    "cohorts",
    "batch",
    "batches",
    "compact_at",
    "max_ratio",
    "gate",
    "json",
];

fn parse_args() -> Args {
    let mut args = Args {
        scale: ScaleSpec::Small,
        seed: 2015,
        theta: 0.05,
        methods: vec!["components".into(), "mixed_greedy".into()],
        cohorts: 4,
        batch: 0.01,
        batches: 5,
        compact_at: 0.10,
        max_ratio: 0.8,
        gate: false,
        json: std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty()),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: churn_bench [scale=small] [seed=2015] [theta=0.05] \
                 [methods=components,mixed_greedy] [cohorts=4] [batch=0.01] [batches=5] \
                 [compact_at=0.1] [max_ratio=0.8] [gate=off] [json=FILE]"
            );
            std::process::exit(0);
        }
        let (key, value) = arg
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("expected key=value, got '{arg}'")));
        match key {
            "scale" => args.scale = ScaleSpec::parse(value).unwrap_or_else(|e| fail(&e)),
            "seed" => args.seed = parse_num(key, value),
            "theta" => args.theta = parse_num(key, value),
            "methods" => {
                args.methods =
                    value.split(',').filter(|s| !s.is_empty()).map(String::from).collect();
                if args.methods.is_empty() {
                    fail("methods list is empty");
                }
            }
            "cohorts" => args.cohorts = parse_num(key, value),
            "batch" => {
                args.batch = parse_num(key, value);
                if !(args.batch > 0.0 && args.batch <= 1.0) {
                    fail(&format!("batch must be in (0, 1], got {}", args.batch));
                }
            }
            "batches" => args.batches = parse_num::<usize>(key, value).max(1),
            "compact_at" => args.compact_at = parse_num(key, value),
            "max_ratio" => args.max_ratio = parse_num(key, value),
            "gate" => {
                args.gate = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    _ => fail(&format!("bad gate '{value}' (on|off)")),
                }
            }
            "json" => args.json = Some(value.into()),
            other => fail(&unknown_key_msg(other, &KEYS)),
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("bad {key} '{value}'")))
}

/// The deterministic delta batch `b`: upsert the churned fraction of
/// consumers (stride over the user axis, offset by the batch number so
/// consecutive batches touch different rows) and delete one rated cell —
/// every event type the hot path serves, reproducible from the CLI args
/// alone.
fn churn_batch(market: &Market, frac: f64, b: usize) -> Vec<Event> {
    let w = market.wtp();
    let n = market.n_users();
    let step = ((1.0 / frac).round() as usize).clamp(1, n.max(1));
    let bump = 1.0 + 0.05 * (b + 1) as f64;
    let mut events: Vec<Event> = (0..n)
        .skip(b % step)
        .step_by(step)
        .filter_map(|u| {
            let row = w.row(u as u32);
            row.ids.first().map(|&item| Event::UpsertWtp {
                user: u as u32,
                item,
                wtp: row.values[0] * bump,
            })
        })
        .collect();
    // One delete per batch (from the tail of the stride, so it does not
    // collide with the upserts above).
    if let Some(u) = (0..n).rev().find(|&u| w.row(u as u32).ids.len() > 1) {
        let row = w.row(u as u32);
        events.push(Event::DeleteWtp { user: u as u32, item: row.ids[row.ids.len() - 1] });
    }
    events
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let data = args.scale.config().generate(args.seed);
    let base = revmax_engine::market_from_data(&data, args.theta);
    let methods: Vec<&str> = args.methods.iter().map(String::as_str).collect();

    // Warm path state: the retained engine, the event log, the serve slot.
    let mut live = LiveEngine::new(&methods, args.cohorts).unwrap_or_else(|e| fail(&e));
    let initial = live.resolve(&base).unwrap_or_else(|e| fail(&e));
    let handle = ServeHandle::new(MenuIndex::compile(&base, &initial.cells[0].outcome.config));
    let mut log = MarketLog::new(base);
    println!(
        "base:    {} users x {} items — {} cells solved in {:.2?}",
        log.base().n_users(),
        log.base().n_items(),
        initial.cells.len(),
        t0.elapsed()
    );

    let mut failures = 0usize;
    let mut incr_ns: Vec<u128> = Vec::new();
    let mut cold_ns: Vec<u128> = Vec::new();
    let mut compactions = 0usize;

    for b in 0..args.batches {
        let batch = churn_batch(log.base(), args.batch, b);
        log.apply_batch(batch.iter().copied()).unwrap_or_else(|e| fail(&e));
        if args.compact_at > 0.0 && log.maybe_compact(args.compact_at) {
            compactions += 1;
        }

        // Incremental: overlay snapshot → retained re-solve → recompile the
        // served menu from the churned market → hot-swap.
        let t = Instant::now();
        let churned = log.snapshot();
        let inc = live.resolve(&churned).unwrap_or_else(|e| fail(&e));
        handle.swap(MenuIndex::compile(&churned, &inc.cells[0].outcome.config));
        let t_incr = t.elapsed().as_nanos();

        // Cold: fresh arena, fresh engine, fresh index.
        let t = Instant::now();
        let cold_market = churned.with_wtp(churned.wtp().compact());
        let mut cold_engine = LiveEngine::new(&methods, args.cohorts).unwrap_or_else(|e| fail(&e));
        let cold = cold_engine.resolve(&cold_market).unwrap_or_else(|e| fail(&e));
        let cold_index = MenuIndex::compile(&cold_market, &cold.cells[0].outcome.config);
        let t_cold = t.elapsed().as_nanos();

        // Parity: the tentpole guarantee, checked every batch.
        if inc.canonical() != cold.canonical() {
            eprintln!("FAIL: batch {b}: incremental resolve diverged from cold rebuild");
            failures += 1;
        }
        let served = handle.current().expected_revenue_all();
        if served.to_bits() != cold_index.expected_revenue_all().to_bits() {
            eprintln!("FAIL: batch {b}: served revenue diverged from cold-compiled index");
            failures += 1;
        }

        println!(
            "batch {b}: {} events, {} of {} cells re-solved — incr {:.2} ms vs cold {:.2} ms ({:.0}%)",
            batch.len(),
            inc.stats.misses,
            inc.cells.len(),
            t_incr as f64 / 1e6,
            t_cold as f64 / 1e6,
            100.0 * t_incr as f64 / t_cold as f64
        );
        incr_ns.push(t_incr);
        cold_ns.push(t_cold);
    }

    let sum = |v: &[u128]| v.iter().sum::<u128>();
    let stats =
        |v: &[u128]| (*v.iter().min().unwrap(), sum(v) / v.len() as u128, *v.iter().max().unwrap());
    let (imin, imean, imax) = stats(&incr_ns);
    let (cmin, cmean, cmax) = stats(&cold_ns);
    let prefix = format!("churn_{}/b{}", args.scale.name(), args.batches);
    let entries = vec![
        BenchEntry {
            id: format!("{prefix}/incremental"),
            mean_ns: imean,
            min_ns: imin,
            max_ns: imax,
            iters: args.batches as u64,
        },
        BenchEntry {
            id: format!("{prefix}/cold"),
            mean_ns: cmean,
            min_ns: cmin,
            max_ns: cmax,
            iters: args.batches as u64,
        },
    ];

    let ratio = sum(&incr_ns) as f64 / sum(&cold_ns) as f64;
    println!(
        "total: incremental {:.2} ms vs cold {:.2} ms — ratio {:.2} ({} compactions, {} retained solves)",
        sum(&incr_ns) as f64 / 1e6,
        sum(&cold_ns) as f64 / 1e6,
        ratio,
        compactions,
        live.cached_solves()
    );

    if let Some(path) = &args.json {
        write_bench_json(path, &entries)
            .unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
        println!("wrote {} timing entries to {path}", entries.len());
    }

    if args.gate && ratio > args.max_ratio {
        eprintln!(
            "FAIL: incremental/cold wall-clock ratio {ratio:.2} exceeds max_ratio {}",
            args.max_ratio
        );
        failures += 1;
    }
    if failures > 0 {
        eprintln!("churn_bench: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "churn_bench: ok — {} batches bit-identical to cold rebuild at {:.0}% of its cost",
        args.batches,
        100.0 * ratio
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("churn_bench: {msg}");
    std::process::exit(2);
}
