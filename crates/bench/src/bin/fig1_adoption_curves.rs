//! **Figure 1** — the stochastic adoption model: probability of adoption vs
//! price for a consumer with WTP = 10, (a) γ ∈ {0.1, 1, 10} and
//! (b) α ∈ {0.75, 1, 1.25}.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::Table;
use revmax_core::adoption::AdoptionModel;

fn main() {
    let args = BenchArgs::parse(Scale::Small);
    let wtp = 10.0;
    let prices: Vec<f64> = (0..=40).map(|k| k as f64 * 0.5).collect();

    let mut a = Table::new(
        "Figure 1(a) — sensitivity to price (alpha = 1)",
        &["price", "gamma=0.1", "gamma=1", "gamma=10"],
    );
    for &p in &prices {
        let row: Vec<String> = [0.1, 1.0, 10.0]
            .iter()
            .map(|&g| {
                let m = AdoptionModel { gamma: g, alpha: 1.0, epsilon: 0.0 };
                format!("{:.4}", m.probability(wtp, p))
            })
            .collect();
        a.row(vec![format!("{p:.1}"), row[0].clone(), row[1].clone(), row[2].clone()]);
    }

    let mut b = Table::new(
        "Figure 1(b) — bias for adoption (gamma = 1)",
        &["price", "alpha=0.75", "alpha=1", "alpha=1.25"],
    );
    for &p in &prices {
        let row: Vec<String> = [0.75, 1.0, 1.25]
            .iter()
            .map(|&al| {
                let m = AdoptionModel { gamma: 1.0, alpha: al, epsilon: 0.0 };
                format!("{:.4}", m.probability(wtp, p))
            })
            .collect();
        b.row(vec![format!("{p:.1}"), row[0].clone(), row[1].clone(), row[2].clone()]);
    }

    // Spot-check the figure's anchor point: P = 0.5 at p = w for the
    // original sigmoid.
    let orig = AdoptionModel { gamma: 1.0, alpha: 1.0, epsilon: 0.0 };
    assert!((orig.probability(10.0, 10.0) - 0.5).abs() < 1e-12);

    // Print a compact view (every 4th point) and save the full series.
    let compact = |t: &Table| {
        let full = t.render();
        for (k, line) in full.lines().enumerate() {
            if k < 3 || (k - 3) % 4 == 0 {
                println!("{line}");
            }
        }
    };
    compact(&a);
    compact(&b);
    for (t, name) in [(&a, "fig1a_gamma_curves"), (&b, "fig1b_alpha_curves")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
