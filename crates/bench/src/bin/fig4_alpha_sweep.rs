//! **Figure 4** — revenue coverage and gain vs the adoption bias α.
//!
//! Expected shape: coverage increases (approximately linearly — α scales
//! the price every consumer tolerates) while gain decreases slightly, with
//! the same method ordering as Figure 3.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct2, Table};
use revmax_bench::{all_methods, data, runstats};

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);
    let alphas = [0.75, 0.9, 1.0, 1.1, 1.25];

    let names: Vec<&'static str> = all_methods().iter().map(|m| m.name()).collect();
    let mut cov = Table::new(
        format!(
            "Figure 4(a) — revenue coverage vs alpha ({} scale, {} runs)",
            args.scale.name(),
            args.runs
        ),
        &std::iter::once("alpha").chain(names.iter().copied()).collect::<Vec<_>>(),
    );
    let mut gain = Table::new(
        "Figure 4(b) — revenue gain vs alpha".to_string(),
        &std::iter::once("alpha")
            .chain(names.iter().copied().filter(|n| *n != "Components"))
            .collect::<Vec<_>>(),
    );

    for alpha in alphas {
        let market = data::market_from(&dataset, args.params().with_adoption_bias(alpha));
        let mut cov_row = vec![format!("{alpha}")];
        let mut gain_row = vec![format!("{alpha}")];
        let mut components_rev = 0.0;
        for method in all_methods() {
            let out = method.run(&market);
            let revenues: Vec<f64> = (0..args.runs)
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 32);
                    out.config.sampled_revenue(&market, &mut rng, 1)
                })
                .collect();
            let stats = runstats::summarize(&revenues);
            if out.algorithm == "Components" {
                components_rev = stats.mean;
            }
            cov_row.push(pct2(stats.mean / market.total_wtp()));
            if out.algorithm != "Components" {
                gain_row.push(pct2(revmax_core::metrics::revenue_gain(
                    stats.mean.max(0.0),
                    components_rev,
                )));
            }
        }
        cov.row(cov_row);
        gain.row(gain_row);
        eprintln!("alpha {alpha} done");
    }
    cov.print();
    println!();
    gain.print();
    for (t, name) in [(&cov, "fig4_alpha_coverage"), (&gain, "fig4_alpha_gain")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
