//! **Figure 6** — revenue gain vs cumulative running time, iteration by
//! iteration: (a) Mixed Matching vs Mixed Greedy, (b) Pure Matching vs
//! Pure Greedy.
//!
//! Expected shape (paper §6.3): the matching algorithms converge in a
//! handful of iterations (10 mixed / 6 pure on the paper's data) while the
//! greedy ones take thousands (4347 / 2131) and more wall time for the same
//! or lower final gain.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct2, secs, Table};
use revmax_bench::{data, proposed_methods};
use revmax_core::prelude::*;

fn main() {
    let args = BenchArgs::parse(Scale::Paper);
    let market = data::market(args.scale, args.seed, args.params());
    let components = Components::optimal().run(&market).revenue;

    let mut summary = Table::new(
        format!("Figure 6 — convergence summary ({} scale)", args.scale.name()),
        &["method", "iterations", "total time (s)", "final gain"],
    );
    let mut series = Table::new(
        "Figure 6 — full iteration series".to_string(),
        &["method", "iteration", "cumulative seconds", "revenue gain"],
    );

    for method in proposed_methods() {
        let out = method.run(&market);
        summary.row(vec![
            out.algorithm.into(),
            out.trace.iterations().to_string(),
            secs(out.trace.total_time()),
            pct2(out.gain),
        ]);
        // Downsample long traces to ~25 printed points; CSV keeps all.
        let pts = out.trace.points();
        let stride = (pts.len() / 25).max(1);
        for (k, p) in pts.iter().enumerate() {
            let g = revmax_core::metrics::revenue_gain(p.revenue, components);
            series.row(vec![
                out.algorithm.into(),
                p.iteration.to_string(),
                format!("{:.3}", p.elapsed.as_secs_f64()),
                pct2(g),
            ]);
            let _ = (k, stride);
        }
        eprintln!("{} done ({} iterations)", out.algorithm, out.trace.iterations());
    }
    summary.print();
    if let Ok(p) = series.save_csv(&args.out_dir, "fig6_revenue_vs_time") {
        println!("saved {}", p.display());
    }
    if let Ok(p) = summary.save_csv(&args.out_dir, "fig6_summary") {
        println!("saved {}", p.display());
    }
}
