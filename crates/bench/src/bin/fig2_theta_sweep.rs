//! **Figure 2** — revenue coverage and gain vs the bundling coefficient
//! θ ∈ [−0.10, +0.10] for all seven methods.
//!
//! Expected shape (paper §6.2): Components flat; mixed methods on top
//! everywhere; pure methods degenerate into Components as θ → −; pure
//! methods climb steepest for θ ≫ 0; FreqItemset baselines hug Components.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct2, Table};
use revmax_bench::{all_methods, data};

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);
    let thetas = [-0.10, -0.05, -0.02, 0.0, 0.02, 0.05, 0.10];

    let names: Vec<&'static str> = all_methods().iter().map(|m| m.name()).collect();
    let mut cov = Table::new(
        format!("Figure 2 — revenue coverage vs theta ({} scale)", args.scale.name()),
        &std::iter::once("theta").chain(names.iter().copied()).collect::<Vec<_>>(),
    );
    let mut gain = Table::new(
        "Figure 2 — revenue gain vs theta".to_string(),
        &std::iter::once("theta")
            .chain(names.iter().copied().filter(|n| *n != "Components"))
            .collect::<Vec<_>>(),
    );

    for theta in thetas {
        let market = data::market_from(&dataset, args.params().with_theta(theta));
        let mut cov_row = vec![format!("{theta:+.2}")];
        let mut gain_row = vec![format!("{theta:+.2}")];
        for method in all_methods() {
            let out = method.run(&market);
            cov_row.push(pct2(out.coverage));
            if out.algorithm != "Components" {
                gain_row.push(pct2(out.gain));
            }
        }
        cov.row(cov_row);
        gain.row(gain_row);
        eprintln!("theta {theta:+.2} done");
    }
    cov.print();
    println!();
    gain.print();
    for (t, name) in [(&cov, "fig2_theta_coverage"), (&gain, "fig2_theta_gain")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
