//! Load generator and end-to-end verifier for `revmax-served`
//! (`DESIGN.md` §11): hammer a live daemon with concurrent query
//! connections while a mutation client churns the market through
//! `MutateMarket` frames, then prove the served state is **bit-identical**
//! to a cold rebuild of the same event history.
//!
//! ```sh
//! revmax-served addr=127.0.0.1:7411 scale=tiny &
//! loadgen addr=127.0.0.1:7411 scale=tiny conns=4 requests=200 shutdown=on
//! ```
//!
//! The market keys (`scale`, `seed`, `theta`, `methods`, `cohorts`) must
//! match the daemon's — loadgen regenerates the same base market locally,
//! applies the exact churn events it sent, and cold-rebuilds
//! (compact → fresh [`LiveEngine`] solve → fresh compile) the expected
//! serving state.
//!
//! Verification (exit 1 on violation):
//!
//! * **Zero dropped queries**: every request on every connection gets a
//!   response — a shed ([`ErrorCode::Overloaded`]) counts as answered,
//!   a connection reset or protocol error does not.
//! * **Crash-proof edges** (`probe=on`): a garbage opcode and an
//!   out-of-range user id each come back as typed errors on a connection
//!   that keeps serving; a hostile length prefix is answered then hung
//!   up on — the daemon never dies.
//! * **Churn parity** (`check=on`): after the daemon has drained every
//!   mutation, `ExpectedRevenue(All)` and `Assign(All)` are bit-identical
//!   to the local cold rebuild, across however many hot swaps happened
//!   mid-flight.
//! * **Load-shed budget** (`max_shed`): the shed fraction stays within
//!   budget (default 1.0 = no gate; the CI leg sizes queue and load so
//!   sheds stay rare).
//!
//! Client-observed latency quantiles export as BENCH_JSON entries
//! `daemon_<scale>/{assign,revenue}_{p50,p99}` for the `perf_check` gate.

use revmax_bench::cli::unknown_key_msg;
use revmax_core::market::Market;
use revmax_core::marketlog::{Event, MarketLog};
use revmax_engine::report::{write_bench_json, BenchEntry};
use revmax_engine::{LiveEngine, ScaleSpec};
use revmax_serve::proto::{self, Request, Response, UserSel};
use revmax_serve::{ErrorCode, LatencyHistogram, MenuIndex};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    scale: ScaleSpec,
    seed: u64,
    theta: f64,
    methods: Vec<String>,
    cohorts: usize,
    conns: usize,
    requests: usize,
    batch: usize,
    mix: f64,
    all_every: usize,
    mutate_batches: usize,
    mutate_frac: f64,
    probe: bool,
    check: bool,
    shutdown: bool,
    max_shed: f64,
    connect_timeout_s: u64,
    json: Option<String>,
}

const KEYS: [&str; 18] = [
    "addr",
    "scale",
    "seed",
    "theta",
    "methods",
    "cohorts",
    "conns",
    "requests",
    "batch",
    "mix",
    "all_every",
    "mutate_batches",
    "mutate_frac",
    "probe",
    "check",
    "shutdown",
    "max_shed",
    "json",
];

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        scale: ScaleSpec::Tiny,
        seed: 2015,
        theta: 0.05,
        methods: vec!["components".into()],
        cohorts: 0,
        conns: 4,
        requests: 200,
        batch: 16,
        mix: 0.5,
        all_every: 50,
        mutate_batches: 3,
        mutate_frac: 0.01,
        probe: true,
        check: true,
        shutdown: false,
        max_shed: 1.0,
        connect_timeout_s: 30,
        json: std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty()),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: loadgen addr=HOST:PORT [scale=tiny] [seed=2015] [theta=0.05] \
                 [methods=components] [cohorts=0] [conns=4] [requests=200] [batch=16] \
                 [mix=0.5] [all_every=50] [mutate_batches=3] [mutate_frac=0.01] \
                 [probe=on] [check=on] [shutdown=off] [max_shed=1.0] [json=FILE]"
            );
            std::process::exit(0);
        }
        let (key, value) = arg
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("expected key=value, got '{arg}'")));
        match key {
            "addr" => args.addr = value.into(),
            "scale" => args.scale = ScaleSpec::parse(value).unwrap_or_else(|e| fail(&e)),
            "seed" => args.seed = parse_num(key, value),
            "theta" => args.theta = parse_num(key, value),
            "methods" => {
                args.methods =
                    value.split(',').filter(|s| !s.is_empty()).map(String::from).collect();
                if args.methods.is_empty() {
                    fail("methods list is empty");
                }
            }
            "cohorts" => args.cohorts = parse_num(key, value),
            "conns" => args.conns = parse_num::<usize>(key, value).max(1),
            "requests" => args.requests = parse_num::<usize>(key, value).max(1),
            "batch" => args.batch = parse_num::<usize>(key, value).max(1),
            "mix" => {
                args.mix = parse_num(key, value);
                if !(0.0..=1.0).contains(&args.mix) {
                    fail(&format!("mix must be in [0, 1], got {}", args.mix));
                }
            }
            "all_every" => args.all_every = parse_num(key, value),
            "mutate_batches" => args.mutate_batches = parse_num(key, value),
            "mutate_frac" => {
                args.mutate_frac = parse_num(key, value);
                if !(args.mutate_frac > 0.0 && args.mutate_frac <= 1.0) {
                    fail(&format!("mutate_frac must be in (0, 1], got {}", args.mutate_frac));
                }
            }
            "probe" => args.probe = parse_switch(value),
            "check" => args.check = parse_switch(value),
            "shutdown" => args.shutdown = parse_switch(value),
            "max_shed" => args.max_shed = parse_num(key, value),
            "json" => args.json = Some(value.into()),
            other => fail(&unknown_key_msg(other, &KEYS)),
        }
    }
    if args.addr.is_empty() {
        fail("addr is required (e.g. addr=127.0.0.1:7411)");
    }
    args
}

fn parse_switch(value: &str) -> bool {
    match value {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        _ => fail(&format!("bad switch '{value}' (on|off)")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("bad {key} '{value}'")))
}

/// Connect with retries — the daemon prints `listening` only after its
/// initial solve, so CI starts it in the background and loadgen waits.
fn connect(addr: &str, timeout: Duration) -> TcpStream {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                // Symmetric with the daemon: tiny request frames must not
                // sit in Nagle's buffer waiting for a delayed ACK.
                let _ = s.set_nodelay(true);
                return s;
            }
            Err(e) => {
                if start.elapsed() > timeout {
                    fail(&format!("cannot connect to {addr} after {timeout:?}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// splitmix64 — a tiny deterministic stream per connection, so reruns
/// replay the identical request mix without threading a rand PRNG
/// through every worker.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic churn batch `b` — same construction as
/// `churn_bench`: upsert a stride of consumers' first-rated items with a
/// batch-dependent bump, plus one tail delete.
fn churn_batch(market: &Market, frac: f64, b: usize) -> Vec<Event> {
    let w = market.wtp();
    let n = market.n_users();
    let step = ((1.0 / frac).round() as usize).clamp(1, n.max(1));
    let bump = 1.0 + 0.05 * (b + 1) as f64;
    let mut events: Vec<Event> = (0..n)
        .skip(b % step)
        .step_by(step)
        .filter_map(|u| {
            let row = w.row(u as u32);
            row.ids.first().map(|&item| Event::UpsertWtp {
                user: u as u32,
                item,
                wtp: row.values[0] * bump,
            })
        })
        .collect();
    if let Some(u) = (0..n).rev().find(|&u| w.row(u as u32).ids.len() > 1) {
        let row = w.row(u as u32);
        events.push(Event::DeleteWtp { user: u as u32, item: row.ids[row.ids.len() - 1] });
    }
    events
}

/// One query connection's outcome.
struct ConnReport {
    answered: u64,
    shed: u64,
    violations: Vec<String>,
}

/// Drive `requests` point queries over one connection, recording
/// client-observed latency and structural sanity of every response.
#[allow(clippy::too_many_arguments)]
fn query_conn(
    addr: String,
    conn_id: usize,
    args_seed: u64,
    n_users: usize,
    requests: usize,
    batch: usize,
    mix: f64,
    all_every: usize,
    timeout: Duration,
    assign_hist: Arc<LatencyHistogram>,
    revenue_hist: Arc<LatencyHistogram>,
) -> ConnReport {
    let mut stream = connect(&addr, timeout);
    let mut rng = args_seed ^ (0xC0FF_EE00 + conn_id as u64);
    let mut report = ConnReport { answered: 0, shed: 0, violations: Vec::new() };
    for r in 0..requests {
        let revenue = (splitmix(&mut rng) as f64 / u64::MAX as f64) < mix;
        let sel = if all_every > 0 && r % all_every == all_every - 1 {
            UserSel::All
        } else {
            let ids: Vec<u32> =
                (0..batch).map(|_| (splitmix(&mut rng) % n_users as u64) as u32).collect();
            UserSel::Ids(ids)
        };
        let expected_len = match &sel {
            UserSel::All => n_users,
            UserSel::Ids(ids) => ids.len(),
        };
        let req = if revenue { Request::ExpectedRevenue(sel) } else { Request::Assign(sel) };
        let t = Instant::now();
        let resp = match proto::roundtrip(&mut stream, &req) {
            Ok(resp) => resp,
            Err(e) => {
                // A dropped query is the violation the tentpole forbids.
                report.violations.push(format!("conn {conn_id} req {r}: dropped: {e}"));
                return report;
            }
        };
        let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if revenue { &revenue_hist } else { &assign_hist }.record(ns);
        report.answered += 1;
        match resp {
            Response::Assignments(a) if !revenue => {
                if a.len() != expected_len {
                    report.violations.push(format!(
                        "conn {conn_id} req {r}: {} assignments for {expected_len} users",
                        a.len()
                    ));
                }
            }
            Response::Revenue(x) if revenue => {
                if !x.is_finite() {
                    report
                        .violations
                        .push(format!("conn {conn_id} req {r}: non-finite revenue {x}"));
                }
            }
            Response::Error { code: ErrorCode::Overloaded, .. } => report.shed += 1,
            other => report
                .violations
                .push(format!("conn {conn_id} req {r}: unexpected response {other:?}")),
        }
    }
    report
}

/// The crash-proof-edges probe: malformed and hostile frames come back as
/// typed errors, in-range service continues, and the process stays up.
fn probe_edges(addr: &str, n_users: usize, timeout: Duration) -> Vec<String> {
    let mut violations = Vec::new();

    // (1) A garbage opcode inside a well-formed frame: typed Malformed
    // error, connection keeps serving.
    let mut stream = connect(addr, timeout);
    if proto::write_frame(&mut stream, &[0xEE, 1, 2, 3]).is_ok() {
        match proto::read_frame(&mut stream, proto::MAX_FRAME) {
            Ok(Some(p)) => match proto::decode_response(&p) {
                Ok(Response::Error { code: ErrorCode::Malformed, .. }) => {}
                other => {
                    violations.push(format!("garbage opcode: expected Malformed, got {other:?}"))
                }
            },
            other => violations.push(format!("garbage opcode: no response ({other:?})")),
        }
        match proto::roundtrip(&mut stream, &Request::SwapStats) {
            Ok(Response::Stats(_)) => {}
            other => {
                violations.push(format!("connection did not survive a malformed frame: {other:?}"))
            }
        }
    }

    // (2) An out-of-range user id: typed Query error, connection keeps
    // serving.
    let mut stream = connect(addr, timeout);
    match proto::roundtrip(&mut stream, &Request::Assign(UserSel::Ids(vec![n_users as u32]))) {
        Ok(Response::Error { code: ErrorCode::Query, message }) => {
            if !message.contains("out of range") {
                violations.push(format!("out-of-range id: unexpected message '{message}'"));
            }
        }
        other => violations.push(format!("out-of-range id: expected Query error, got {other:?}")),
    }
    match proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::Ids(vec![0]))) {
        Ok(Response::Revenue(_)) => {}
        other => {
            violations.push(format!("connection did not survive an out-of-range id: {other:?}"))
        }
    }

    // (3) A hostile length prefix (2 GiB): the daemon answers Malformed
    // and hangs up — the stream offset is unrecoverable — but the
    // process must keep serving fresh connections.
    let mut stream = connect(addr, timeout);
    if stream.write_all(&0x7FFF_FFFFu32.to_le_bytes()).is_ok() {
        match proto::read_frame(&mut stream, proto::MAX_FRAME) {
            Ok(Some(p)) => match proto::decode_response(&p) {
                Ok(Response::Error { code: ErrorCode::Malformed, .. }) => {}
                other => {
                    violations.push(format!("hostile prefix: expected Malformed, got {other:?}"))
                }
            },
            other => violations.push(format!("hostile prefix: no response ({other:?})")),
        }
    }
    let mut fresh = connect(addr, timeout);
    match proto::roundtrip(&mut fresh, &Request::SwapStats) {
        Ok(Response::Stats(_)) => {}
        other => violations.push(format!("daemon died after hostile prefix: {other:?}")),
    }
    violations
}

fn main() {
    let args = parse_args();
    let timeout = Duration::from_secs(args.connect_timeout_s);
    let data = args.scale.config().generate(args.seed);
    let base = revmax_engine::market_from_data(&data, args.theta);
    let n_users = base.n_users();
    let mut violations: Vec<String> = Vec::new();

    // Sanity: the daemon must serve the market we think it serves.
    let mut stream = connect(&args.addr, timeout);
    match proto::roundtrip(&mut stream, &Request::SwapStats) {
        Ok(Response::Stats(s)) => {
            if s.n_users as usize != n_users {
                fail(&format!(
                    "daemon serves {} users but scale={} seed={} generates {n_users} — \
                     market keys must match the daemon's",
                    s.n_users,
                    args.scale.name(),
                    args.seed
                ));
            }
        }
        other => fail(&format!("SwapStats probe failed: {other:?}")),
    }

    if args.probe {
        violations.extend(probe_edges(&args.addr, n_users, timeout));
        println!("probes:  malformed / out-of-range / hostile-prefix edges checked");
    }

    // Concurrent query connections...
    let assign_hist = Arc::new(LatencyHistogram::new());
    let revenue_hist = Arc::new(LatencyHistogram::new());
    let t0 = Instant::now();
    let threads: Vec<_> = (0..args.conns)
        .map(|c| {
            let addr = args.addr.clone();
            let (ah, rh) = (Arc::clone(&assign_hist), Arc::clone(&revenue_hist));
            let (seed, requests, batch, mix, all_every) =
                (args.seed, args.requests, args.batch, args.mix, args.all_every);
            std::thread::spawn(move || {
                query_conn(addr, c, seed, n_users, requests, batch, mix, all_every, timeout, ah, rh)
            })
        })
        .collect();

    // ...while the mutation client churns the market through the same
    // wire, mirroring every event into a local MarketLog.
    let mut log = MarketLog::new(base);
    let mut events_sent = 0u64;
    let mut applied_local = 0u64;
    let mut mutate_stream = connect(&args.addr, timeout);
    for b in 0..args.mutate_batches {
        let events = churn_batch(log.base(), args.mutate_frac, b);
        events_sent += events.len() as u64;
        match proto::roundtrip(&mut mutate_stream, &Request::MutateMarket(events.clone())) {
            Ok(Response::MutateAck { accepted, .. }) => {
                if accepted != events.len() as u64 {
                    violations
                        .push(format!("batch {b}: acked {accepted} of {} events", events.len()));
                }
            }
            other => violations.push(format!("batch {b}: expected MutateAck, got {other:?}")),
        }
        for ev in events {
            if log.apply(ev).is_ok() {
                applied_local += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(30)); // interleave with queries
    }

    let shed = AtomicU64::new(0);
    let mut answered = 0u64;
    for t in threads {
        let report = t.join().unwrap_or_else(|_| {
            fail("query thread panicked");
        });
        answered += report.answered;
        shed.fetch_add(report.shed, Ordering::Relaxed);
        violations.extend(report.violations);
    }
    let elapsed = t0.elapsed();
    let shed = shed.into_inner();
    let total = (args.conns * args.requests) as u64;
    println!(
        "queries: {answered}/{total} answered ({shed} shed) over {} conns in {:.2?} — \
         {:.0} req/s",
        args.conns,
        elapsed,
        answered as f64 / elapsed.as_secs_f64()
    );
    if answered != total {
        violations.push(format!("{} queries dropped", total - answered));
    }
    if total > 0 && shed as f64 / total as f64 > args.max_shed {
        violations.push(format!(
            "shed fraction {:.3} exceeds max_shed {}",
            shed as f64 / total as f64,
            args.max_shed
        ));
    }

    // Quiesce: wait until the churn thread has drained every event we
    // sent, then the served state is a pure function of the history.
    let mut stats = None;
    if args.mutate_batches > 0 {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match proto::roundtrip(&mut stream, &Request::SwapStats) {
                Ok(Response::Stats(s)) => {
                    if s.mutations_applied + s.mutations_rejected >= events_sent {
                        stats = Some(s);
                        break;
                    }
                    if Instant::now() > deadline {
                        violations.push(format!(
                            "churn did not drain: {} applied + {} rejected of {events_sent} sent",
                            s.mutations_applied, s.mutations_rejected
                        ));
                        stats = Some(s);
                        break;
                    }
                }
                other => {
                    violations.push(format!("SwapStats poll failed: {other:?}"));
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    if let Some(s) = &stats {
        println!(
            "churn:   generation {} after {} applied / {} rejected events \
             ({} coalesced queries, {} shed)",
            s.generation, s.mutations_applied, s.mutations_rejected, s.coalesced, s.shed
        );
        if applied_local > 0 && s.generation == 0 {
            violations.push("events applied but the served index never swapped".into());
        }
    }

    // Churn parity: served answers vs the cold rebuild of the identical
    // event history — the tentpole's bit-identity guarantee.
    if args.check {
        let churned = log.snapshot();
        let cold_market = churned.with_wtp(churned.wtp().compact());
        let methods: Vec<&str> = args.methods.iter().map(String::as_str).collect();
        let mut engine = LiveEngine::new(&methods, args.cohorts).unwrap_or_else(|e| fail(&e));
        let cold = engine.resolve(&cold_market).unwrap_or_else(|e| fail(&e));
        let cell = cold.whole_cell().unwrap_or_else(|| fail("cold resolve has no whole cell"));
        let cold_index = MenuIndex::compile(&cold_market, &cell.outcome.config);
        let cold_rev = cold_index.expected_revenue_all();

        match proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::All)) {
            Ok(Response::Revenue(served)) => {
                if served.to_bits() != cold_rev.to_bits() {
                    violations.push(format!(
                        "served revenue {served} != cold rebuild {cold_rev} (bitwise)"
                    ));
                } else {
                    println!("parity:  served revenue {served} bit-identical to cold rebuild");
                }
            }
            other => violations.push(format!("parity revenue query failed: {other:?}")),
        }
        match proto::roundtrip(&mut stream, &Request::Assign(UserSel::All)) {
            Ok(Response::Assignments(served)) => {
                if served != cold_index.assign_all() {
                    violations.push("served assignments diverged from cold rebuild".into());
                }
            }
            other => violations.push(format!("parity assign query failed: {other:?}")),
        }
    }

    if args.shutdown {
        match proto::roundtrip(&mut stream, &Request::Shutdown) {
            Ok(Response::Bye) => println!("daemon acknowledged shutdown"),
            other => violations.push(format!("expected Bye, got {other:?}")),
        }
    }

    // Client-observed latency for the perf gate.
    let entries: Vec<BenchEntry> = [("assign", &assign_hist), ("revenue", &revenue_hist)]
        .iter()
        .flat_map(|(kind, hist)| {
            [("p50", 0.50), ("p99", 0.99)].map(|(tag, q)| {
                let ns = hist.quantile(q) as u128;
                BenchEntry {
                    id: format!("daemon_{}/{kind}_{tag}", args.scale.name()),
                    mean_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                    iters: hist.count(),
                }
            })
        })
        .collect();
    for e in &entries {
        println!("latency: {} = {:.3} ms ({} obs)", e.id, e.mean_ns as f64 / 1e6, e.iters);
    }
    if let Some(path) = &args.json {
        write_bench_json(path, &entries)
            .unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
        println!("wrote {} latency entries to {path}", entries.len());
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        eprintln!("loadgen: {} violation(s)", violations.len());
        std::process::exit(1);
    }
    println!("loadgen: ok — {answered} queries answered, served state bit-identical to history");
}

fn fail(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}
