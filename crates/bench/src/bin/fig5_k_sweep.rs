//! **Figure 5** — revenue coverage/gain vs the maximum bundle size k.
//!
//! Expected shape: k = 1 equals Components; k = 2 already gains; k ≥ 3
//! keeps growing at a decreasing rate — the paper's argument for why
//! heuristics for the NP-hard k ≥ 3 regime matter at all.

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{pct2, Table};
use revmax_bench::{data, proposed_methods};
use revmax_core::prelude::*;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let dataset = data::dataset(args.scale, args.seed);
    let caps: Vec<(String, SizeCap)> = [1usize, 2, 3, 4, 5, 6, 8]
        .into_iter()
        .map(|k| (k.to_string(), SizeCap::AtMost(k)))
        .chain(std::iter::once(("unlimited".to_string(), SizeCap::Unlimited)))
        .collect();

    let names: Vec<&'static str> = proposed_methods().iter().map(|m| m.name()).collect();
    let mut cov = Table::new(
        format!("Figure 5 — revenue coverage vs max bundle size k ({} scale)", args.scale.name()),
        &std::iter::once("k")
            .chain(std::iter::once("Components"))
            .chain(names.iter().copied())
            .collect::<Vec<_>>(),
    );
    let mut gain = Table::new(
        "Figure 5 — revenue gain vs max bundle size k".to_string(),
        &std::iter::once("k").chain(names.iter().copied()).collect::<Vec<_>>(),
    );

    for (label, cap) in caps {
        let market = data::market_from(&dataset, args.params().with_size_cap(cap));
        let components = Components::optimal().run(&market);
        let mut cov_row = vec![label.clone(), pct2(components.coverage)];
        let mut gain_row = vec![label.clone()];
        for method in proposed_methods() {
            let out = method.run(&market);
            assert!(
                cap.limit().is_none_or(|k| out.config.max_bundle_size() <= k),
                "{} violated size cap {label}",
                out.algorithm
            );
            cov_row.push(pct2(out.coverage));
            gain_row.push(pct2(out.gain));
        }
        cov.row(cov_row);
        gain.row(gain_row);
        eprintln!("k = {label} done");
    }
    cov.print();
    println!();
    gain.print();
    for (t, name) in [(&cov, "fig5_k_coverage"), (&gain, "fig5_k_gain")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
