//! **Figure 7** — scalability of the four proposed algorithms:
//! (a) running time vs the number of users (clone factor ×1..×8 — the
//! paper's "multiplication factor" protocol), expected linear;
//! (b) running time vs the number of items (×½, ×1, ×2, ×4 via sampling /
//! cloning), expected polynomial (linear in log-log).

use revmax_bench::args::{BenchArgs, Scale};
use revmax_bench::report::{secs, Table};
use revmax_bench::{data, proposed_methods};
use revmax_dataset::scale as dscale;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(Scale::Medium);
    let base = data::dataset(args.scale, args.seed);
    let names: Vec<&'static str> = proposed_methods().iter().map(|m| m.name()).collect();

    // ---- (a) users ---------------------------------------------------------
    let factors: &[usize] = if args.full { &[1, 2, 4, 8] } else { &[1, 2, 4] };
    let mut ta = Table::new(
        format!("Figure 7(a) — running time vs users ({} scale base)", args.scale.name()),
        &std::iter::once("users").chain(names.iter().copied()).collect::<Vec<_>>(),
    );
    for &f in factors {
        let d = dscale::clone_users(&base, f);
        let market = data::market_from(&d, args.params());
        let mut row = vec![format!("{} (x{f})", d.n_users())];
        for method in proposed_methods() {
            let t = Instant::now();
            let out = method.run(&market);
            row.push(secs(t.elapsed()));
            let _ = out;
        }
        ta.row(row);
        eprintln!("users x{f} done");
    }
    ta.print();
    println!();

    // ---- (b) items ---------------------------------------------------------
    let mut tb = Table::new(
        "Figure 7(b) — running time vs items (log2 axes in the paper)".to_string(),
        &std::iter::once("items").chain(names.iter().copied()).collect::<Vec<_>>(),
    );
    let item_variants: Vec<(String, revmax_dataset::RatingsData)> = {
        let half = dscale::sample_items(&base, base.n_items() / 2, args.seed);
        let x2 = dscale::clone_items(&base, 2);
        let mut v = vec![
            (format!("{} (x0.5)", half.n_items()), half),
            (format!("{} (x1)", base.n_items()), base.clone()),
            (format!("{} (x2)", x2.n_items()), x2),
        ];
        if args.full {
            let x4 = dscale::clone_items(&base, 4);
            v.push((format!("{} (x4)", x4.n_items()), x4));
        }
        v
    };
    for (label, d) in item_variants {
        let market = data::market_from(&d, args.params());
        let mut row = vec![label.clone()];
        for method in proposed_methods() {
            let t = Instant::now();
            let out = method.run(&market);
            row.push(secs(t.elapsed()));
            let _ = out;
        }
        tb.row(row);
        eprintln!("items {label} done");
    }
    tb.print();

    for (t, name) in [(&ta, "fig7a_users"), (&tb, "fig7b_items")] {
        if let Ok(p) = t.save_csv(&args.out_dir, name) {
            println!("saved {}", p.display());
        }
    }
}
