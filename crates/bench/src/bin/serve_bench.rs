//! Serving-layer load generator: solve a menu on a base market, scale the
//! consumer axis with `clone_users` to the millions, compile a
//! `MenuIndex`, and drive batched `expected_revenue` / `assign` queries
//! against it — verifying the serving determinism contract on the way.
//!
//! ```sh
//! serve_bench scale=small target_users=1000000 method=mixed_greedy \
//!             threads=1,2,8 repeat=3 json=serve_ci.json
//! ```
//!
//! Keys (all `key=value`): `scale` (tiny|small|medium), `seed`, `theta`,
//! `method` (registry name/alias), `factor` or `target_users` (clone
//! multiplier — `target_users` picks the smallest factor reaching it),
//! `threads` (CSV of serve fan-outs), `kernel` (tiled|rows|both — `both`
//! times each and cross-checks them bit-for-bit), `block` (tile block
//! width, 0 = default), `repeat` (timing repetitions), `json` (BENCH_JSON
//! export path; the `BENCH_JSON` env var works too).
//!
//! Verification (always on, exit 1 on violation):
//!
//! * **kernel determinism** — `expected_revenue(all)` and `assign(all)`
//!   must be bit-identical across every requested thread count (§6) *and*
//!   across kernels (`DESIGN.md` §12): with `kernel=both`, every user's
//!   payment bits and held-offer list are compared between the tile
//!   kernel and the row-walk reference;
//! * **clone linearity** — cloned consumers are identical, so the scaled
//!   revenue must equal `factor ×` the base-market revenue (up to
//!   summation reassociation);
//! * **solver parity** — the served total must match core's solver-side
//!   menu evaluation on the scaled market (up to reassociation).
//!
//! Timings export in the `BENCH_JSON` interchange format with ids
//! `serve_<scale>/x<factor>/{expected_revenue_t<N>, assign_t<N>,
//! solver_eval, compile}` — the same flow `perf_check` gates (CI's
//! `serve-smoke` leg).

use revmax_core::algorithms::by_name;
use revmax_dataset::scale::clone_users;
use revmax_engine::report::{write_bench_json, BenchEntry};
use revmax_engine::ScaleSpec;
use revmax_serve::{KernelKind, MenuIndex};
use std::time::Instant;

struct Args {
    scale: ScaleSpec,
    seed: u64,
    theta: f64,
    method: String,
    factor: Option<usize>,
    target_users: usize,
    threads: Vec<usize>,
    kernels: Vec<KernelKind>,
    block: usize,
    repeat: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: ScaleSpec::Small,
        seed: 2015,
        theta: 0.0,
        method: "mixed_greedy".into(),
        factor: None,
        target_users: 1_000_000,
        threads: vec![1, 2, 8],
        kernels: vec![KernelKind::Tiled],
        block: 0,
        repeat: 3,
        json: std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty()),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: serve_bench [scale=small] [seed=2015] [theta=0] [method=mixed_greedy] \
                 [factor=N | target_users=1000000] [threads=1,2,8] [kernel=tiled|rows|both] \
                 [block=N] [repeat=3] [json=FILE]"
            );
            std::process::exit(0);
        }
        let (key, value) = arg
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("expected key=value, got '{arg}'")));
        match key {
            "scale" => {
                args.scale = ScaleSpec::parse(value).unwrap_or_else(|e| fail(&e));
            }
            "seed" => args.seed = parse_num(key, value),
            "theta" => {
                args.theta =
                    value.parse().unwrap_or_else(|_| fail(&format!("bad theta '{value}'")));
            }
            "method" => args.method = value.into(),
            "factor" => args.factor = Some(parse_num::<usize>(key, value).max(1)),
            "target_users" => args.target_users = parse_num::<usize>(key, value).max(1),
            "threads" => {
                args.threads = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_num::<usize>("threads", s).max(1))
                    .collect();
                if args.threads.is_empty() {
                    fail("threads list is empty");
                }
            }
            "kernel" => {
                args.kernels = match value.trim() {
                    "both" => vec![KernelKind::Tiled, KernelKind::Rows],
                    other => vec![KernelKind::parse(other).unwrap_or_else(|_| {
                        fail(&format!("bad kernel '{value}' (tiled|rows|both)"))
                    })],
                };
            }
            "block" => args.block = parse_num(key, value),
            "repeat" => args.repeat = parse_num::<usize>(key, value).max(1),
            "json" => args.json = Some(value.into()),
            other => fail(&revmax_bench::cli::unknown_key_msg(
                other,
                &[
                    "scale",
                    "seed",
                    "theta",
                    "method",
                    "factor",
                    "target_users",
                    "threads",
                    "kernel",
                    "block",
                    "repeat",
                    "json",
                ],
            )),
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("bad {key} '{value}'")))
}

/// Time `f` over `repeat` repetitions; returns (last result, min/mean/max ns).
fn timed<R>(repeat: usize, mut f: impl FnMut() -> R) -> (R, u128, u128, u128) {
    let mut ns: Vec<u128> = Vec::with_capacity(repeat);
    let mut out = None;
    for _ in 0..repeat {
        let t = Instant::now();
        out = Some(f());
        ns.push(t.elapsed().as_nanos());
    }
    let (min, max) = (*ns.iter().min().unwrap(), *ns.iter().max().unwrap());
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    (out.unwrap(), min, mean, max)
}

fn entry(id: String, min: u128, mean: u128, max: u128, iters: u64) -> BenchEntry {
    BenchEntry { id, mean_ns: mean, min_ns: min, max_ns: max, iters }
}

fn main() {
    let args = parse_args();
    // Accept the sweep spec's aliases (`mixed_greedy`) as well as the
    // canonical registry names.
    let canonical = revmax_engine::spec::resolve_method(&args.method).unwrap_or_else(|e| fail(&e));
    let method =
        by_name(&canonical).unwrap_or_else(|| fail(&format!("unknown method '{}'", args.method)));

    // Base market + solve (the menu is configured at base scale; cloned
    // consumers change the load, not the item universe).
    let t0 = Instant::now();
    let base_data = args.scale.config().generate(args.seed);
    let base_market = revmax_engine::market_from_data(&base_data, args.theta);
    let outcome = method.run(&base_market);
    println!(
        "base:    {} users x {} items, {} ratings — {} solved to revenue {:.2} in {:.2?}",
        base_data.n_users(),
        base_data.n_items(),
        base_data.ratings().len(),
        outcome.algorithm,
        outcome.revenue,
        t0.elapsed()
    );

    // Scale the consumer axis.
    let factor = args
        .factor
        .unwrap_or_else(|| args.target_users.div_ceil(base_data.n_users().max(1)).max(1));
    let t0 = Instant::now();
    let data = clone_users(&base_data, factor);
    let market = revmax_engine::market_from_data(&data, args.theta);
    println!(
        "scaled:  x{} -> {} users, {} ratings (built in {:.2?})",
        factor,
        data.n_users(),
        data.ratings().len(),
        t0.elapsed()
    );

    let prefix = format!("serve_{}/x{}", args.scale.name(), factor);
    let mut entries: Vec<BenchEntry> = Vec::new();

    // Compile the index (timed; the store is Arc-shared, so this is the
    // flattening + postings cost, not a matrix copy). Compilation is
    // microsecond-scale, so it repeats more than the queries do — a
    // perf_check `stat=min` gate needs the minimum of enough repetitions
    // to be timer-noise-free.
    let compile_reps = args.repeat.max(50);
    let (index, min, mean, max) =
        timed(compile_reps, || MenuIndex::compile(&market, &outcome.config));
    entries.push(entry(format!("{prefix}/compile"), min, mean, max, compile_reps as u64));
    println!(
        "compile: {} offer nodes in {} trees, {} on sale ({:.3} ms)",
        index.n_nodes(),
        index.roots().len(),
        index.n_offers(),
        mean as f64 / 1e6
    );

    let users = index.all_users();
    let n = users.len();
    let mut failures = 0usize;

    // Batched expected revenue and assignment at every requested kernel ×
    // fan-out. All combinations must agree bit-for-bit: across thread
    // counts (§6) and across kernels (`DESIGN.md` §12) — with
    // `kernel=both` this is the tile-vs-rows parity gate CI runs.
    let mut revenue_bits: Option<u64> = None;
    let mut assign_baseline: Option<Vec<revmax_serve::Assignment>> = None;
    for &kernel in &args.kernels {
        // The tile kernel keeps the unsuffixed bench ids (`perf_check`
        // gates those); the row-walk reference exports alongside.
        let suffix = match kernel {
            KernelKind::Tiled => "",
            KernelKind::Rows => "_rows",
        };
        for &t in &args.threads {
            let idx = index.clone().with_threads(t).with_kernel(kernel).with_block(args.block);
            let (rev, min, mean, max) = timed(args.repeat, || idx.expected_revenue(&users));
            entries.push(entry(
                format!("{prefix}/expected_revenue_t{t}{suffix}"),
                min,
                mean,
                max,
                args.repeat as u64,
            ));
            println!(
                "expected_revenue {:>5} t={t}: {:.2} in {:.1} ms (min) — {:.2}M users/s",
                kernel.name(),
                rev,
                min as f64 / 1e6,
                n as f64 / (min as f64 / 1e9) / 1e6
            );
            match revenue_bits {
                None => revenue_bits = Some(rev.to_bits()),
                Some(bits) if bits != rev.to_bits() => {
                    eprintln!(
                        "FAIL: expected_revenue ({} kernel, {t} threads) diverged: {rev} vs {}",
                        kernel.name(),
                        f64::from_bits(bits)
                    );
                    failures += 1;
                }
                Some(_) => {}
            }

            // Batched assignment at the same combination. Per-user parity
            // is the strong check: payment bits and the held-offer list
            // must match the first combination exactly.
            let (assignments, min, mean, max) = timed(args.repeat, || idx.assign(&users));
            entries.push(entry(
                format!("{prefix}/assign_t{t}{suffix}"),
                min,
                mean,
                max,
                args.repeat as u64,
            ));
            let offered: usize = assignments.iter().map(|a| a.offers.len()).sum();
            println!(
                "assign           {:>5} t={t}: {} assignments, {} held offers in {:.1} ms (min) — {:.2}M users/s",
                kernel.name(),
                assignments.len(),
                offered,
                min as f64 / 1e6,
                n as f64 / (min as f64 / 1e9) / 1e6
            );
            match &assign_baseline {
                None => assign_baseline = Some(assignments),
                Some(base) => {
                    let diverged = base
                        .iter()
                        .zip(&assignments)
                        .filter(|(a, b)| {
                            a.payment.to_bits() != b.payment.to_bits() || a.offers != b.offers
                        })
                        .count();
                    if diverged > 0 {
                        eprintln!(
                            "FAIL: assign ({} kernel, {t} threads) diverged from the first \
                             combination on {diverged} user(s)",
                            kernel.name()
                        );
                        failures += 1;
                    }
                }
            }
        }
    }
    let served = f64::from_bits(revenue_bits.expect("at least one thread count"));

    // Clone linearity: identical clones ⇒ revenue scales exactly with the
    // factor (up to summation reassociation).
    let base_index = MenuIndex::compile(&base_market, &outcome.config);
    let base_rev = base_index.expected_revenue_all();
    let expect = base_rev * factor as f64;
    let tol = 1e-8 * expect.abs().max(1.0);
    if (served - expect).abs() > tol {
        eprintln!("FAIL: clone linearity: served {served} vs {factor} x {base_rev} = {expect}");
        failures += 1;
    }

    // Solver parity: core's menu evaluation on the full scaled market
    // (repeated like the serve queries — a single-rep minimum is too
    // noisy for the perf gate).
    let (solver, min, mean, max) = timed(args.repeat, || outcome.config.expected_revenue(&market));
    entries.push(entry(format!("{prefix}/solver_eval"), min, mean, max, args.repeat as u64));
    println!(
        "solver-side evaluation: {:.2} in {:.1} ms — serving matches within {:.1e}",
        solver,
        min as f64 / 1e6,
        (served - solver).abs()
    );
    if (served - solver).abs() > 1e-8 * solver.abs().max(1.0) {
        eprintln!("FAIL: solver parity: served {served} vs solver-side {solver}");
        failures += 1;
    }

    if let Some(path) = &args.json {
        write_bench_json(path, &entries)
            .unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
        println!("wrote {} timing entries to {path}", entries.len());
    }

    if failures > 0 {
        eprintln!("serve_bench: {failures} verification failure(s)");
        std::process::exit(1);
    }
    println!("serve_bench: ok — {} users served bit-identically at {:?} threads", n, args.threads);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_bench: {msg}");
    std::process::exit(2);
}
