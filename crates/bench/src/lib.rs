//! # revmax-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §5 for the
//! index); this library holds the shared plumbing: scale/seed CLI flags,
//! market construction from the synthetic dataset, run-statistics, and
//! CSV/markdown report writers.

pub mod args;
pub mod data;
pub mod report;
pub mod runstats;

use revmax_core::prelude::*;

/// All seven comparative methods of Section 6.2, in the paper's order.
pub fn all_methods() -> Vec<Box<dyn Configurator>> {
    vec![
        Box::new(Components::optimal()),
        Box::new(PureMatching::default()),
        Box::new(PureGreedy::default()),
        Box::new(MixedMatching::default()),
        Box::new(MixedGreedy::default()),
        Box::new(PureFreqItemset::default()),
        Box::new(MixedFreqItemset::default()),
    ]
}

/// The four proposed algorithms (no baselines).
pub fn proposed_methods() -> Vec<Box<dyn Configurator>> {
    vec![
        Box::new(PureMatching::default()),
        Box::new(PureGreedy::default()),
        Box::new(MixedMatching::default()),
        Box::new(MixedGreedy::default()),
    ]
}
