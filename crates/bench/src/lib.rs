//! # revmax-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §5 for the
//! index); this library holds the shared plumbing: scale/seed CLI flags,
//! market construction from the synthetic dataset, run-statistics, and
//! CSV/markdown report writers.

pub mod args;
pub mod cli;
pub mod data;
pub mod report;
pub mod runstats;

use revmax_core::prelude::*;

/// All seven comparative methods of Section 6.2, in the paper's order —
/// drawn from the single authoritative list,
/// [`revmax_core::algorithms::registry`].
pub fn all_methods() -> Vec<Box<dyn Configurator>> {
    registry().into_iter().map(|(_, c)| c).collect()
}

/// The four proposed algorithms (no baselines), looked up from the
/// registry by their exact names so future registry additions cannot
/// silently join this set.
pub fn proposed_methods() -> Vec<Box<dyn Configurator>> {
    const PROPOSED: [&str; 4] = ["Pure Matching", "Pure Greedy", "Mixed Matching", "Mixed Greedy"];
    let out: Vec<Box<dyn Configurator>> = registry()
        .into_iter()
        .filter(|(name, _)| PROPOSED.contains(name))
        .map(|(_, c)| c)
        .collect();
    assert_eq!(out.len(), PROPOSED.len(), "registry is missing a proposed method");
    out
}
