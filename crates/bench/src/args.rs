//! Minimal flag parser for the experiment binaries (no external deps).
//!
//! Recognized flags, shared across all binaries:
//!
//! * `--scale small|medium|paper` — dataset size (per-binary default);
//! * `--seed <u64>` — generator seed (default 2015, the venue year);
//! * `--runs <usize>` — repetitions for stochastic experiments (default 10);
//! * `--full` — run the expensive variants (e.g. N = 25 in Tables 4–5);
//! * `--threads <usize>` — worker threads for the parallel hot paths
//!   (default: the `REVMAX_THREADS` env var, else available parallelism;
//!   results are bit-identical at any value, `DESIGN.md` §6);
//! * `--out <dir>` — results directory (default `results`).

use revmax_core::prelude::{Params, Threads};
use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    pub scale: Scale,
    pub seed: u64,
    pub runs: usize,
    pub full: bool,
    pub threads: Threads,
    pub out_dir: std::path::PathBuf,
}

/// Dataset scale presets (see `revmax_dataset::AmazonBooksConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
    Paper,
}

impl Scale {
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

impl BenchArgs {
    /// Parse `std::env::args`, with a per-binary default scale.
    pub fn parse(default_scale: Scale) -> Self {
        Self::from_iter(std::env::args().skip(1), default_scale)
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_iter(args: impl IntoIterator<Item = String>, default_scale: Scale) -> Self {
        let mut flags: HashMap<String, String> = HashMap::new();
        let mut full = false;
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => full = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale small|medium|paper  --seed <u64>  --runs <n>  --full  --threads <n>  --out <dir>"
                    );
                    std::process::exit(0);
                }
                key if key.starts_with("--") => {
                    let val = it.next().unwrap_or_else(|| {
                        panic!("flag {key} requires a value");
                    });
                    flags.insert(key.trim_start_matches("--").to_string(), val);
                }
                other => panic!("unrecognized argument '{other}'"),
            }
        }
        let scale = match flags.get("scale").map(String::as_str) {
            None => default_scale,
            Some("small") => Scale::Small,
            Some("medium") => Scale::Medium,
            Some("paper") => Scale::Paper,
            Some(other) => panic!("unknown scale '{other}' (small|medium|paper)"),
        };
        let threads = flags.get("threads").map_or(Threads::Auto, |s| {
            let n: usize = s.parse().expect("--threads must be a positive integer");
            assert!(n >= 1, "--threads must be >= 1");
            Threads::Fixed(n)
        });
        BenchArgs {
            scale,
            seed: flags.get("seed").map_or(2015, |s| s.parse().expect("--seed must be a u64")),
            runs: flags.get("runs").map_or(10, |s| s.parse().expect("--runs must be a usize")),
            full,
            threads,
            out_dir: flags.get("out").map_or_else(|| "results".into(), |s| s.into()),
        }
    }

    /// Paper-default [`Params`] carrying this invocation's thread knob —
    /// the base every experiment binary should build its markets from so
    /// `--threads` (and `REVMAX_THREADS`) reach the hot paths.
    pub fn params(&self) -> Params {
        Params::default().with_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = BenchArgs::from_iter(sv(&[]), Scale::Medium);
        assert_eq!(a.scale, Scale::Medium);
        assert_eq!(a.seed, 2015);
        assert_eq!(a.runs, 10);
        assert!(!a.full);
        assert_eq!(a.threads, Threads::Auto);
        assert_eq!(a.params().threads, Threads::Auto);
    }

    #[test]
    fn parses_threads_flag() {
        let a = BenchArgs::from_iter(sv(&["--threads", "4"]), Scale::Small);
        assert_eq!(a.threads, Threads::Fixed(4));
        assert_eq!(a.params().threads.get(), 4);
    }

    #[test]
    #[should_panic(expected = "--threads must be")]
    fn rejects_zero_threads() {
        BenchArgs::from_iter(sv(&["--threads", "0"]), Scale::Small);
    }

    #[test]
    fn parses_flags() {
        let a = BenchArgs::from_iter(
            sv(&["--scale", "paper", "--seed", "7", "--runs", "3", "--full", "--out", "/tmp/x"]),
            Scale::Small,
        );
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.seed, 7);
        assert_eq!(a.runs, 3);
        assert!(a.full);
        assert_eq!(a.out_dir, std::path::PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn rejects_bad_scale() {
        BenchArgs::from_iter(sv(&["--scale", "galactic"]), Scale::Small);
    }
}
