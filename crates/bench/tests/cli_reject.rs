//! Behavioral check of the bench binaries' `key=value` front doors: an
//! unknown key must be a hard error (exit 2) that names the key — never a
//! silently ignored flag benchmarking the wrong shape.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (i32, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn serve_bench_rejects_unknown_keys_by_name() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_serve_bench"), &["targetusers=1000"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("unknown key 'targetusers'"), "stderr: {stderr}");
    assert!(stderr.contains("did you mean 'target_users'?"), "stderr: {stderr}");
}

#[test]
fn serve_bench_rejects_non_key_value_arguments() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_serve_bench"), &["--scale"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("expected key=value"), "stderr: {stderr}");
}

#[test]
fn sweep_rejects_unknown_keys_with_a_suggestion() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_sweep"), &["objektives=mean"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("unknown spec key 'objektives'"), "stderr: {stderr}");
    assert!(stderr.contains("did you mean 'objectives'?"), "stderr: {stderr}");
}

#[test]
fn sweep_rejects_bad_objective_values_and_gates() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_sweep"), &["objective=cvar:1.5"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("CVaR level"), "stderr: {stderr}");
    let (code, stderr) = run(env!("CARGO_BIN_EXE_sweep"), &["gate=bogus"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("unknown gate 'bogus'"), "stderr: {stderr}");
}

#[test]
fn churn_bench_rejects_unknown_keys_by_name() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_churn_bench"), &["cohort=3"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("unknown key 'cohort'"), "stderr: {stderr}");
    assert!(stderr.contains("did you mean 'cohorts'?"), "stderr: {stderr}");
}

#[test]
fn churn_bench_rejects_bad_values_naming_the_key() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_churn_bench"), &["batch=2.0"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("batch must be in (0, 1]"), "stderr: {stderr}");
}
