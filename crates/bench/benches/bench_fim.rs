//! Criterion microbench: maximal frequent itemset mining over the
//! consumers-as-transactions view, across minimum supports (the substrate
//! of the FreqItemset baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_bench::args::Scale;
use revmax_bench::data;
use revmax_fim::{mine_maximal, relative_minsup, TransactionDb};

fn bench_fim(c: &mut Criterion) {
    let d = data::dataset(Scale::Medium, 2015);
    let transactions: Vec<Vec<u32>> = {
        let mut tx = vec![Vec::new(); d.n_users()];
        for r in d.ratings() {
            tx[r.user as usize].push(r.item);
        }
        tx
    };
    let db = TransactionDb::from_transactions(d.n_items(), &transactions);

    let mut g = c.benchmark_group("fim");
    g.sample_size(10);
    for minsup_frac in [0.01f64, 0.005, 0.001] {
        let minsup = relative_minsup(minsup_frac, db.n_transactions());
        g.bench_with_input(
            BenchmarkId::new("mine_maximal", format!("minsup{minsup_frac}")),
            &db,
            |b, db| {
                b.iter(|| mine_maximal(std::hint::black_box(db), minsup));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fim);
criterion_main!(benches);
