//! Criterion microbench: the blossom maximum-weight matching engine across
//! graph sizes/densities (the per-iteration substrate of Algorithm 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_matching::gain::GainGraph;
use revmax_matching::max_weight_matching;

fn random_graph(n: usize, avg_degree: usize, seed: u64) -> Vec<(usize, usize, i64)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let m = n * avg_degree / 2;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = (next() as usize) % n;
        let v = (next() as usize) % n;
        if u != v {
            edges.push((u, v, (next() % 1000) as i64));
        }
    }
    edges
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("blossom");
    g.sample_size(20);
    for (n, deg) in [(50usize, 8usize), (100, 8), (200, 8), (200, 32)] {
        let edges = random_graph(n, deg, 42);
        g.bench_with_input(
            BenchmarkId::new("max_weight_matching", format!("V{n}_deg{deg}")),
            &edges,
            |b, e| {
                b.iter(|| max_weight_matching(n, std::hint::black_box(e)));
            },
        );
    }
    g.finish();
}

/// The gain-graph reduction (self-loops + pair weights → matching over
/// positive gains), 1-thread vs 4-thread gain-matrix construction.
/// Results are identical across the variants (`DESIGN.md` §6).
fn bench_gain_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("gain_graph");
    g.sample_size(20);
    let n = 400usize;
    let mut graph = GainGraph::new((0..n as i64).map(|v| (v * 37) % 101).collect());
    for u in 0..n {
        for v in (u + 1)..n {
            if (u * 31 + v * 17) % 13 == 0 {
                graph.add_pair(u, v, ((u * 13 + v * 7) % 220) as i64);
            }
        }
    }
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("solve", format!("{threads}thread")),
            &graph,
            |b, gr| {
                b.iter(|| std::hint::black_box(gr).solve_with_threads(threads));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_matching, bench_gain_graph);
criterion_main!(benches);
