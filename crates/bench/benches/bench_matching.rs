//! Criterion microbench: the blossom maximum-weight matching engine across
//! graph sizes/densities (the per-iteration substrate of Algorithm 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_matching::max_weight_matching;

fn random_graph(n: usize, avg_degree: usize, seed: u64) -> Vec<(usize, usize, i64)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let m = n * avg_degree / 2;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = (next() as usize) % n;
        let v = (next() as usize) % n;
        if u != v {
            edges.push((u, v, (next() % 1000) as i64));
        }
    }
    edges
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("blossom");
    g.sample_size(20);
    for (n, deg) in [(50usize, 8usize), (100, 8), (200, 8), (200, 32)] {
        let edges = random_graph(n, deg, 42);
        g.bench_with_input(
            BenchmarkId::new("max_weight_matching", format!("V{n}_deg{deg}")),
            &edges,
            |b, e| {
                b.iter(|| max_weight_matching(n, std::hint::black_box(e)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
