//! Criterion macrobench: the four proposed configurators end to end on the
//! small synthetic market (paper-shape data at unit-test scale), plus
//! 1-thread vs 4-thread variants of the two matching configurators so the
//! parallel-execution-layer speedup is visible in the criterion output and
//! the BENCH_*.json trajectory. Results are bit-identical across the
//! thread variants (`DESIGN.md` §6) — only the wall clock may differ.

use criterion::{criterion_group, criterion_main, Criterion};
use revmax_bench::args::Scale;
use revmax_bench::data;
use revmax_core::prelude::*;

fn bench_endtoend(c: &mut Criterion) {
    let market = data::market(Scale::Small, 2015, Params::default());
    let mut g = c.benchmark_group("endtoend_small");
    g.sample_size(10);
    g.bench_function("components", |b| {
        b.iter(|| Components::optimal().run(std::hint::black_box(&market)))
    });
    g.bench_function("pure_matching", |b| {
        b.iter(|| PureMatching::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("pure_greedy", |b| {
        b.iter(|| PureGreedy::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("mixed_matching", |b| {
        b.iter(|| MixedMatching::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("mixed_greedy", |b| {
        b.iter(|| MixedGreedy::default().run(std::hint::black_box(&market)))
    });
    g.finish();
}

fn bench_endtoend_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend_small_threads");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let market = data::market(
            Scale::Small,
            2015,
            Params::default().with_threads(Threads::Fixed(threads)),
        );
        g.bench_function(format!("pure_matching_{threads}thread"), |b| {
            b.iter(|| PureMatching::default().run(std::hint::black_box(&market)))
        });
        g.bench_function(format!("mixed_matching_{threads}thread"), |b| {
            b.iter(|| MixedMatching::default().run(std::hint::black_box(&market)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_endtoend, bench_endtoend_threads);
criterion_main!(benches);
