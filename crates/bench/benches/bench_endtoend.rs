//! Criterion macrobench: the four proposed configurators end to end on the
//! small synthetic market (paper-shape data at unit-test scale).

use criterion::{criterion_group, criterion_main, Criterion};
use revmax_bench::args::Scale;
use revmax_bench::data;
use revmax_core::prelude::*;

fn bench_endtoend(c: &mut Criterion) {
    let market = data::market(Scale::Small, 2015, Params::default());
    let mut g = c.benchmark_group("endtoend_small");
    g.sample_size(10);
    g.bench_function("components", |b| {
        b.iter(|| Components::optimal().run(std::hint::black_box(&market)))
    });
    g.bench_function("pure_matching", |b| {
        b.iter(|| PureMatching::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("pure_greedy", |b| {
        b.iter(|| PureGreedy::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("mixed_matching", |b| {
        b.iter(|| MixedMatching::default().run(std::hint::black_box(&market)))
    });
    g.bench_function("mixed_greedy", |b| {
        b.iter(|| MixedGreedy::default().run(std::hint::black_box(&market)))
    });
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
