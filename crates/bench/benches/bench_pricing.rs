//! Criterion microbench: single-bundle price optimization (§4.2) across
//! consumer counts and search modes. The paper claims O(M) pricing; the
//! `M`-scaling here substantiates it for the grid mode (the exact mode pays
//! an O(M log M) sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_core::adoption::AdoptionModel;
use revmax_core::pricing::{optimize, PriceMode, PricingCtx};

fn synth_values(m: usize) -> Vec<f64> {
    // Five-level WTP mimicking the ratings-derived distribution.
    (0..m)
        .map(|k| {
            let level = match k % 100 {
                0..=2 => 0.25,
                3..=7 => 0.5,
                8..=20 => 0.75,
                21..=50 => 1.0,
                _ => 1.25,
            };
            level * (5.0 + (k % 17) as f64)
        })
        .collect()
}

fn ctx(mode: PriceMode, gamma: f64) -> PricingCtx {
    PricingCtx {
        adoption: AdoptionModel { gamma, alpha: 1.0, epsilon: 1e-6 },
        mode,
        levels: 100,
        objective_alpha: 1.0,
        unit_cost: 0.0,
        threads: 1,
        objective: revmax_core::objective::Objective::Mean,
    }
}

fn bench_pricing(c: &mut Criterion) {
    let mut g = c.benchmark_group("pricing");
    for m in [100usize, 1_000, 10_000] {
        let values = synth_values(m);
        g.bench_with_input(BenchmarkId::new("exact_step", m), &values, |b, v| {
            let cx = ctx(PriceMode::Exact, 1e6);
            b.iter(|| optimize(std::hint::black_box(v), &cx));
        });
        g.bench_with_input(BenchmarkId::new("grid_step", m), &values, |b, v| {
            let cx = ctx(PriceMode::Grid, 1e6);
            b.iter(|| optimize(std::hint::black_box(v), &cx));
        });
        g.bench_with_input(BenchmarkId::new("grid_sigmoid", m), &values, |b, v| {
            let cx = ctx(PriceMode::Grid, 1.0);
            b.iter(|| optimize(std::hint::black_box(v), &cx));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
