//! The compiled menu: a flat, read-optimized structure-of-arrays layout of
//! a solved [`BundleConfig`] (`DESIGN.md` §9).
//!
//! A [`MenuIndex`] freezes everything a query needs — the offer tree
//! flattened post-order into parallel arrays, per-item → offer postings,
//! the adoption model, and the (`Arc`-shared, zero-copy) WTP store — so
//! batched queries touch only contiguous memory and never chase the
//! pointer-y [`OfferNode`] trees the solvers produce.
//!
//! ## Layout
//!
//! Nodes are numbered in **post-order per root** (children before parents,
//! roots in configuration order), which gives two load-bearing properties:
//!
//! * a node's whole subtree is the contiguous range
//!   `subtree_start[n] ..= n`, so one forward scan with a small state
//!   stack evaluates a tree bottom-up without recursion;
//! * the children of node `n` are the top `n_children[n]` states on that
//!   stack, **in original child order**, so the holdings-combine step
//!   reproduces the solver's left-to-right `merge_states` fold exactly.
//!
//! The per-item postings CSR (`post_indptr`/`post_nodes`) inverts the
//! node→items map: scattering one consumer's WTP row through it fills the
//! per-node bundle sums in `O(row nnz × containing offers)` — the row is
//! item-ascending and every node's item list is ascending, so each node's
//! sum accumulates in exactly the order the solver's column-scatter
//! ([`Market::bundle_user_sums`]) uses, which is what makes per-user
//! results bit-identical to solver-side evaluation.

use crate::kernel::KernelKind;
use revmax_core::adoption::AdoptionModel;
use revmax_core::config::{BundleConfig, OfferNode, Strategy};
use revmax_core::market::Market;
use revmax_core::params::Params;
use revmax_core::wtp::WtpMatrix;
use std::sync::Arc;

/// The market-independent half of a compiled menu: the flattened offer
/// forest and its postings, a pure function of the [`BundleConfig`] and
/// the item universe. Rebinding the same menu to a churned market
/// ([`MenuIndex::rebind`]) shares this whole structure by `Arc` and only
/// swaps the market half.
#[derive(Debug)]
pub(crate) struct MenuShape {
    pub(crate) strategy: Strategy,
    pub(crate) n_items: usize,
    /// Node `n`'s items are `node_items[node_indptr[n]..node_indptr[n+1]]`,
    /// strictly ascending.
    pub(crate) node_indptr: Vec<usize>,
    pub(crate) node_items: Vec<u32>,
    /// Offer price per node.
    pub(crate) prices: Vec<f64>,
    /// Number of direct children per node (0 = leaf offer).
    pub(crate) n_children: Vec<u32>,
    /// First node index of `n`'s post-order subtree range.
    pub(crate) subtree_start: Vec<u32>,
    /// Top-level offers, in configuration root order (each is the last
    /// node of its subtree range).
    pub(crate) roots: Vec<u32>,
    /// Item `i`'s containing nodes are
    /// `post_nodes[post_indptr[i]..post_indptr[i+1]]`, ascending node ids.
    pub(crate) post_indptr: Vec<usize>,
    pub(crate) post_nodes: Vec<u32>,
}

/// The frozen read-side state shared by every clone of a [`MenuIndex`]:
/// the config-derived `MenuShape` plus the market half it is bound to.
#[derive(Debug)]
pub(crate) struct MenuStore {
    pub(crate) shape: Arc<MenuShape>,
    pub(crate) n_users: usize,
    /// Solve parameters (θ for set WTPs; everything else rides along).
    pub(crate) params: Params,
    /// The resolved §4.1 adoption model (γ, α, ε) of the compiled market.
    pub(crate) adoption: AdoptionModel,
    /// The market's WTP store — an `Arc`-shared arena (or zero-copy view
    /// or delta overlay), so binding an index never copies the matrix.
    pub(crate) wtp: WtpMatrix,
}

/// A read-optimized, `Arc`-shared index over one solved menu
/// ([`BundleConfig`]) and the market it was solved on. Cloning is cheap;
/// clones share all storage. Queries live in [`crate::query`]:
/// [`MenuIndex::assign`] and [`MenuIndex::expected_revenue`].
#[derive(Debug, Clone)]
pub struct MenuIndex {
    pub(crate) store: Arc<MenuStore>,
    /// Worker threads for batched queries (§6 contract: never affects
    /// results). Defaults to the compiled market's resolved count.
    pub(crate) threads: usize,
    /// Batched-query evaluation kernel (`DESIGN.md` §12). Results are
    /// bit-identical either way; defaults to the tile kernel.
    pub(crate) kernel: KernelKind,
    /// Tile-kernel user-block width (0 ⇒ [`crate::kernel::DEFAULT_BLOCK`]).
    /// Never affects results, only cache behavior.
    pub(crate) block: usize,
}

impl MenuIndex {
    /// Compile a solved configuration against the market it was solved on
    /// (or any market with the same item universe). Validates the
    /// configuration, flattens the offer forest, and builds the item
    /// postings; the WTP store is shared, never copied.
    pub fn compile(market: &Market, config: &BundleConfig) -> MenuIndex {
        config.validate(market.n_items());
        let n_items = market.n_items();

        // Flatten post-order per root (children before parents, original
        // child order preserved).
        let mut node_indptr = vec![0usize];
        let mut node_items: Vec<u32> = Vec::new();
        let mut prices: Vec<f64> = Vec::new();
        let mut n_children: Vec<u32> = Vec::new();
        let mut subtree_start: Vec<u32> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        fn flatten(
            node: &OfferNode,
            node_indptr: &mut Vec<usize>,
            node_items: &mut Vec<u32>,
            prices: &mut Vec<f64>,
            n_children: &mut Vec<u32>,
            subtree_start: &mut Vec<u32>,
        ) -> u32 {
            let start = prices.len() as u32;
            for c in &node.children {
                flatten(c, node_indptr, node_items, prices, n_children, subtree_start);
            }
            node_items.extend_from_slice(node.bundle.items());
            node_indptr.push(node_items.len());
            prices.push(node.price);
            n_children.push(node.children.len() as u32);
            subtree_start.push(start);
            prices.len() as u32 - 1
        }
        for r in &config.roots {
            roots.push(flatten(
                r,
                &mut node_indptr,
                &mut node_items,
                &mut prices,
                &mut n_children,
                &mut subtree_start,
            ));
        }

        // Item → containing nodes, counting scatter. Nodes are visited in
        // ascending id order, so each item's posting list is ascending.
        let n_nodes = prices.len();
        let mut post_indptr = vec![0usize; n_items + 1];
        for &i in &node_items {
            post_indptr[i as usize + 1] += 1;
        }
        for i in 0..n_items {
            post_indptr[i + 1] += post_indptr[i];
        }
        let mut cursor = post_indptr[..n_items].to_vec();
        let mut post_nodes = vec![0u32; node_items.len()];
        for n in 0..n_nodes {
            for &i in &node_items[node_indptr[n]..node_indptr[n + 1]] {
                let slot = &mut cursor[i as usize];
                post_nodes[*slot] = n as u32;
                *slot += 1;
            }
        }

        MenuIndex {
            threads: market.threads(),
            kernel: KernelKind::Tiled,
            block: 0,
            store: Arc::new(MenuStore {
                shape: Arc::new(MenuShape {
                    strategy: config.strategy,
                    n_items,
                    node_indptr,
                    node_items,
                    prices,
                    n_children,
                    subtree_start,
                    roots,
                    post_indptr,
                    post_nodes,
                }),
                n_users: market.n_users(),
                params: *market.params(),
                adoption: market.pricing_ctx().adoption,
                wtp: market.wtp().clone(),
            }),
        }
    }

    /// Re-bind this compiled menu to a churned market with the **same item
    /// universe** (same items, any consumers): the flattened offer forest
    /// and postings (`MenuShape`) are shared by `Arc`, only the market
    /// half (consumers, params, adoption, WTP matrix) is replaced. This is
    /// the cheap serve-side path after a churn batch whose re-solve kept
    /// the menu configuration unchanged.
    pub fn rebind(&self, market: &Market) -> MenuIndex {
        assert_eq!(
            market.n_items(),
            self.store.shape.n_items,
            "rebind requires the compiled item universe"
        );
        MenuIndex {
            threads: market.threads(),
            kernel: self.kernel,
            block: self.block,
            store: Arc::new(MenuStore {
                shape: Arc::clone(&self.store.shape),
                n_users: market.n_users(),
                params: *market.params(),
                adoption: market.pricing_ctx().adoption,
                wtp: market.wtp().clone(),
            }),
        }
    }

    /// Override the worker-thread count used by batched queries. Results
    /// are bit-identical at any value (`DESIGN.md` §6/§9); this only
    /// changes who computes what.
    pub fn with_threads(mut self, threads: usize) -> MenuIndex {
        self.threads = threads.max(1);
        self
    }

    /// Resolved worker-thread count for batched queries.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Select the batched-query evaluation kernel (`DESIGN.md` §12).
    /// Results are bit-identical for any choice — [`KernelKind::Rows`] is
    /// the row-at-a-time reference, [`KernelKind::Tiled`] (the default)
    /// the cache-blocked tile kernel.
    pub fn with_kernel(mut self, kernel: KernelKind) -> MenuIndex {
        self.kernel = kernel;
        self
    }

    /// The active evaluation kernel.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Override the tile kernel's user-block width (0 restores
    /// [`crate::kernel::DEFAULT_BLOCK`]). Never affects results, only
    /// cache behavior; ignored by [`KernelKind::Rows`].
    pub fn with_block(mut self, block: usize) -> MenuIndex {
        self.block = block;
        self
    }

    /// The resolved tile block width.
    pub fn block(&self) -> usize {
        if self.block == 0 {
            crate::kernel::DEFAULT_BLOCK
        } else {
            self.block
        }
    }

    /// The compiled configuration's strategy.
    pub fn strategy(&self) -> Strategy {
        self.store.shape.strategy
    }

    /// Number of consumers in the compiled market.
    pub fn n_users(&self) -> usize {
        self.store.n_users
    }

    /// Number of items in the compiled market.
    pub fn n_items(&self) -> usize {
        self.store.shape.n_items
    }

    /// Total number of offer nodes (all tree nodes; under pure bundling
    /// every node is a root).
    pub fn n_nodes(&self) -> usize {
        self.store.shape.prices.len()
    }

    /// Number of offers actually on sale: roots under pure bundling,
    /// every node under mixed bundling.
    pub fn n_offers(&self) -> usize {
        match self.store.shape.strategy {
            Strategy::Pure => self.store.shape.roots.len(),
            Strategy::Mixed => self.n_nodes(),
        }
    }

    /// Top-level offer node ids, in configuration root order.
    pub fn roots(&self) -> &[u32] {
        &self.store.shape.roots
    }

    /// Item ids of offer node `node`, strictly ascending.
    pub fn items(&self, node: u32) -> &[u32] {
        let (lo, hi) = (
            self.store.shape.node_indptr[node as usize],
            self.store.shape.node_indptr[node as usize + 1],
        );
        &self.store.shape.node_items[lo..hi]
    }

    /// Price of offer node `node`.
    pub fn price(&self, node: u32) -> f64 {
        self.store.shape.prices[node as usize]
    }

    /// Every user id of the compiled market, ascending — the canonical
    /// "all users" batch.
    pub fn all_users(&self) -> Vec<u32> {
        (0..self.store.n_users as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::bundle::Bundle;
    use revmax_core::config::OfferNode;

    fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    fn mixed_config() -> BundleConfig {
        BundleConfig {
            strategy: Strategy::Mixed,
            roots: vec![OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price: 12.0,
                children: vec![
                    OfferNode::leaf(Bundle::single(0), 8.0),
                    OfferNode::leaf(Bundle::single(1), 11.0),
                ],
            }],
        }
    }

    #[test]
    fn flattening_is_postorder_with_contiguous_subtrees() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &mixed_config());
        assert_eq!(idx.n_nodes(), 3);
        assert_eq!(idx.roots(), &[2]); // children 0, 1 come first
        assert_eq!(idx.items(0), &[0]);
        assert_eq!(idx.items(1), &[1]);
        assert_eq!(idx.items(2), &[0, 1]);
        assert_eq!(idx.price(0), 8.0);
        assert_eq!(idx.price(1), 11.0);
        assert_eq!(idx.price(2), 12.0);
        assert_eq!(idx.store.shape.subtree_start, vec![0, 1, 0]);
        assert_eq!(idx.store.shape.n_children, vec![0, 0, 2]);
        assert_eq!(idx.n_offers(), 3); // mixed: every node on sale
    }

    #[test]
    fn postings_invert_the_node_item_map() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &mixed_config());
        let post = |i: usize| {
            &idx.store.shape.post_nodes
                [idx.store.shape.post_indptr[i]..idx.store.shape.post_indptr[i + 1]]
        };
        assert_eq!(post(0), &[0, 2]); // item 0 ∈ leaf 0 and the bundle
        assert_eq!(post(1), &[1, 2]);
    }

    #[test]
    fn pure_menu_counts_roots_as_offers() {
        let m = table1();
        let config = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        };
        let idx = MenuIndex::compile(&m, &config);
        assert_eq!(idx.n_offers(), 2);
        assert_eq!(idx.n_nodes(), 2);
        assert_eq!(idx.roots(), &[0, 1]);
        assert_eq!(idx.strategy(), Strategy::Pure);
        assert_eq!(idx.all_users(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cover all items")]
    fn compile_validates_the_configuration() {
        let m = table1();
        let config = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![OfferNode::leaf(Bundle::single(0), 8.0)],
        };
        MenuIndex::compile(&m, &config);
    }

    #[test]
    fn clones_share_the_store() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &mixed_config());
        let clone = idx.clone().with_threads(7);
        assert!(Arc::ptr_eq(&idx.store, &clone.store));
        assert_eq!(clone.threads(), 7);
        assert_eq!(MenuIndex::compile(&m, &mixed_config()).with_threads(0).threads(), 1);
    }
}
