//! `revmax-served` — the long-running serving daemon (`DESIGN.md` §11).
//!
//! Everything below is `std`-only (`std::net` blocking sockets,
//! `std::thread`, `Mutex`/`Condvar`), matching the workspace's `vendor/`
//! philosophy. The process is four kinds of thread around two shared
//! structures:
//!
//! * **Connection threads** (one per accepted socket) read
//!   [`proto`] frames, decode them totally (a malformed
//!   frame gets an error response, never a panic), and either answer
//!   inline (`SwapStats`, `MutateMarket` enqueue, `Shutdown`) or push a
//!   query job into the **bounded request queue** and relay the reply.
//! * **Worker threads** drain the queue. A worker pops one job and then
//!   **coalesces**: it keeps popping while the queue front is the same
//!   kind of point query, concatenates the id batches, executes ONE
//!   batched [`MenuIndex`] call in the shapes `serve_bench` proves fast,
//!   and splits the results back per request. Coalescing is invisible in
//!   the results: per-user evaluation is independent, and a revenue
//!   request's fold is re-applied per request via
//!   [`chunked_payment_fold`], which is bit-identical to
//!   [`MenuIndex::try_expected_revenue`] on that request alone.
//! * **The churn thread** owns the [`MarketLog`] and the retained
//!   [`LiveEngine`]: mutation batches are applied off the request path,
//!   re-solved incrementally, compiled, and [`ServeHandle::swap`]ped in
//!   atomically — queries never wait on a solve, and the PR-6 churn
//!   parity guarantees hold end to end.
//! * **The accept thread** hands sockets to connection threads until
//!   shutdown.
//!
//! **Admission control:** the request queue is bounded
//! ([`DaemonConfig::queue_cap`]). When it is full the connection thread
//! answers [`ErrorCode::Overloaded`] immediately instead of queueing
//! unbounded latency — the client retries; the daemon's tail stays flat.
//! Per-endpoint latency (enqueue → reply) lands in a log₂-bucketed
//! [`LatencyHistogram`] whose quantiles export through
//! [`Request::SwapStats`] and, in the `loadgen` bin, BENCH_JSON.

use crate::index::MenuIndex;
use crate::proto::{self, DaemonStats, ErrorCode, Request, Response, UserSel, MAX_FRAME};
use crate::query::chunked_payment_fold;
use crate::swap::ServeHandle;
use revmax_core::market::Market;
use revmax_core::marketlog::{Event, MarketLog};
use revmax_engine::LiveEngine;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Knobs of a [`Daemon`]. `Default` is sized for tests and small hosts;
/// the `revmax-served` bin maps its CLI keys onto these.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Query worker threads draining the request queue.
    pub workers: usize,
    /// Bounded request-queue capacity — the admission-control knob.
    /// Requests beyond it are shed with [`ErrorCode::Overloaded`].
    pub queue_cap: usize,
    /// Maximum number of *extra* same-kind requests a worker folds into
    /// one batched call (0 disables coalescing).
    pub coalesce: usize,
    /// `revmax-par` threads per batched query (workers are the daemon's
    /// parallelism, so 1 is the right default; results are bit-identical
    /// at any value).
    pub query_threads: usize,
    /// Configurator methods for the churn thread's incremental re-solves
    /// (registry names/aliases; the first method's whole-market cell is
    /// the served menu).
    pub methods: Vec<String>,
    /// Activity-cohort count of the churn thread's resolves.
    pub cohorts: usize,
    /// `MarketLog::maybe_compact` threshold (0 disables compaction).
    pub compact_at: f64,
    /// Per-frame payload cap for this daemon's connections.
    pub max_frame: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 2,
            queue_cap: 1024,
            coalesce: 16,
            query_threads: 1,
            methods: vec!["components".into()],
            cohorts: 0,
            compact_at: 0.10,
            max_frame: MAX_FRAME,
        }
    }
}

/// A fixed 64-bucket log₂ latency histogram on atomics: `record` is one
/// `fetch_add`, wait-free from any thread; quantiles resolve to the upper
/// bound of the containing power-of-two bucket (≤ 2× overestimate, which
/// is the right bias for a latency gate).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Record one observation in nanoseconds.
    pub fn record(&self, ns: u64) {
        let bucket = 63 - (ns | 1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds: the upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q · total)`.
    /// 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if k >= 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
            }
        }
        u64::MAX
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryKind {
    Assign,
    Revenue,
    Marginal,
}

/// One admitted point query waiting for a worker.
struct Job {
    kind: QueryKind,
    /// `None` = whole market (the allocation-free `*_all` paths);
    /// `Some` = an explicit id batch.
    ids: Option<Vec<u32>>,
    /// `Marginal` only: the (offer, dprice) perturbation. Marginal jobs
    /// never coalesce — two what-ifs rarely share a perturbation, and a
    /// mixed batch would need one tile re-walk per distinct price table.
    marginal: Option<(u32, f64)>,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
}

/// Bounded MPMC queue on `Mutex<VecDeque>` + `Condvar`. `try_push` is the
/// admission decision; `pop_coalesced` is the worker side, returning a
/// same-kind run of jobs from the queue front.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new(), cap: cap.max(1) }
    }

    /// Admit `job` unless the queue is at capacity. Returns the job back
    /// on refusal so the caller can answer `Overloaded`.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= self.cap {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the front job plus up to `max_extra` directly-following jobs
    /// that can share one batched call: same kind, and only explicit-id
    /// batches coalesce (an `All` query runs alone on the allocation-free
    /// whole-market path). Blocks until a job arrives; returns `None` once
    /// the queue is empty *and* `stop` is set — pending jobs are always
    /// drained before workers exit.
    fn pop_coalesced(&self, max_extra: usize, stop: &AtomicBool) -> Option<Vec<Job>> {
        let mut q = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(first) = q.pop_front() {
                let mut batch = vec![first];
                if batch[0].ids.is_some() && batch[0].marginal.is_none() {
                    while batch.len() <= max_extra {
                        match q.front() {
                            Some(j)
                                if j.kind == batch[0].kind
                                    && j.ids.is_some()
                                    && j.marginal.is_none() =>
                            {
                                batch.push(q.pop_front().expect("front just probed"));
                            }
                            _ => break,
                        }
                    }
                }
                return Some(batch);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// Monotonic counters shared by every thread (one cache line each is not
/// worth chasing at these rates; plain relaxed adds).
#[derive(Debug, Default)]
struct Counters {
    served_assign: AtomicU64,
    served_revenue: AtomicU64,
    served_marginal: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    mutations_applied: AtomicU64,
    mutations_rejected: AtomicU64,
    resolve_hits: AtomicU64,
    resolve_misses: AtomicU64,
}

struct Shared {
    handle: ServeHandle,
    queue: JobQueue,
    shutdown: AtomicBool,
    counters: Counters,
    assign_hist: LatencyHistogram,
    revenue_hist: LatencyHistogram,
}

impl Shared {
    fn stats(&self) -> DaemonStats {
        let index = self.handle.current();
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        DaemonStats {
            generation: self.handle.generation(),
            n_users: index.n_users() as u64,
            n_items: index.n_items() as u64,
            served_assign: load(&c.served_assign),
            served_revenue: load(&c.served_revenue),
            served_marginal: load(&c.served_marginal),
            coalesced: load(&c.coalesced),
            shed: load(&c.shed),
            malformed: load(&c.malformed),
            mutations_applied: load(&c.mutations_applied),
            mutations_rejected: load(&c.mutations_rejected),
            resolve_hits: load(&c.resolve_hits),
            resolve_misses: load(&c.resolve_misses),
            assign_p50_ns: self.assign_hist.quantile(0.50),
            assign_p99_ns: self.assign_hist.quantile(0.99),
            revenue_p50_ns: self.revenue_hist.quantile(0.50),
            revenue_p99_ns: self.revenue_hist.quantile(0.99),
        }
    }
}

enum ChurnMsg {
    Batch(Vec<Event>),
    Stop,
}

/// A running serving daemon. Construct with [`Daemon::spawn`]; it serves
/// until a [`Request::Shutdown`] frame arrives (or
/// [`Daemon::request_shutdown`] is called) and [`Daemon::join`] returns.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    churn_tx: mpsc::Sender<ChurnMsg>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    churn: JoinHandle<()>,
}

impl Daemon {
    /// Solve `market` with the configured methods, compile the winning
    /// whole-market menu, bind `bind_addr` (use port 0 for an ephemeral
    /// port), and start serving. Blocks for the initial solve only; once
    /// this returns the daemon answers queries.
    pub fn spawn(
        bind_addr: impl ToSocketAddrs,
        market: Market,
        cfg: DaemonConfig,
    ) -> Result<Daemon, String> {
        let methods: Vec<&str> = cfg.methods.iter().map(String::as_str).collect();
        let mut live = LiveEngine::new(&methods, cfg.cohorts)?;
        let initial = live.resolve(&market)?;
        let cell = initial.whole_cell().ok_or("initial resolve produced no cells")?;
        let index =
            MenuIndex::compile(&market, &cell.outcome.config).with_threads(cfg.query_threads);
        let handle = ServeHandle::new(index);

        let listener = TcpListener::bind(bind_addr).map_err(|e| format!("bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shared = Arc::new(Shared {
            handle: handle.clone(),
            queue: JobQueue::new(cfg.queue_cap),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            assign_hist: LatencyHistogram::new(),
            revenue_hist: LatencyHistogram::new(),
        });
        shared.counters.resolve_misses.fetch_add(initial.stats.misses as u64, Ordering::Relaxed);
        shared.counters.resolve_hits.fetch_add(initial.stats.hits as u64, Ordering::Relaxed);

        let (churn_tx, churn_rx) = mpsc::channel::<ChurnMsg>();
        let churn = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || churn_loop(market, live, churn_rx, shared, cfg))
        };

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let coalesce = cfg.coalesce;
                std::thread::spawn(move || worker_loop(shared, coalesce))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let churn_tx = churn_tx.clone();
            let max_frame = cfg.max_frame;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // One request per frame: Nagle would hold every
                    // sub-MSS response hostage to the client's delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::clone(&shared);
                    let churn_tx = churn_tx.clone();
                    std::thread::spawn(move || {
                        connection_loop(stream, addr, shared, churn_tx, max_frame)
                    });
                }
            })
        };

        Ok(Daemon { addr, shared, churn_tx, accept, workers, churn })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-swap slot the daemon serves through (e.g. for in-process
    /// inspection in tests).
    pub fn handle(&self) -> &ServeHandle {
        &self.shared.handle
    }

    /// Snapshot the daemon's counters — the same numbers a
    /// [`Request::SwapStats`] frame returns.
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats()
    }

    /// Trigger shutdown from the process side (equivalent to a
    /// [`Request::Shutdown`] frame).
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shared, &self.churn_tx, self.addr);
    }

    /// Block until the daemon has shut down (a [`Request::Shutdown`]
    /// frame arrived or [`Daemon::request_shutdown`] was called) and all
    /// worker/churn/accept threads have drained and exited.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.churn.join();
    }
}

/// Flip the shutdown flag and unblock every parked thread: workers (via
/// the queue condvar), the churn thread (via a `Stop` message), and the
/// accept loop (via a wake-up connection to ourselves).
fn initiate_shutdown(shared: &Shared, churn_tx: &mpsc::Sender<ChurnMsg>, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::Release);
    shared.queue.wake_all();
    let _ = churn_tx.send(ChurnMsg::Stop);
    drop(TcpStream::connect(addr));
}

// ---------------------------------------------------------------------
// Connection threads
// ---------------------------------------------------------------------

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    proto::write_frame(stream, &proto::encode_response(resp)).is_ok()
}

fn connection_loop(
    mut stream: TcpStream,
    daemon_addr: SocketAddr,
    shared: Arc<Shared>,
    churn_tx: mpsc::Sender<ChurnMsg>,
    max_frame: usize,
) {
    loop {
        let payload = match proto::read_frame(&mut stream, max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => return, // peer closed cleanly
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized length prefix: the stream offset is gone, so
                // answer and hang up.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut stream,
                    &Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                );
                return;
            }
            Err(_) => return,
        };
        let req = match proto::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Frame boundaries are intact — report and keep serving
                // this connection.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                if !send(
                    &mut stream,
                    &Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                ) {
                    return;
                }
                continue;
            }
        };
        let keep_going = match req {
            Request::Assign(sel) => {
                handle_query(&mut stream, &shared, QueryKind::Assign, sel, None)
            }
            Request::ExpectedRevenue(sel) => {
                handle_query(&mut stream, &shared, QueryKind::Revenue, sel, None)
            }
            Request::MarginalRevenue { offer, dprice, sel } => {
                handle_query(&mut stream, &shared, QueryKind::Marginal, sel, Some((offer, dprice)))
            }
            Request::MutateMarket(events) => {
                let n = events.len() as u64;
                let generation = shared.handle.generation();
                if shared.shutdown.load(Ordering::Acquire)
                    || churn_tx.send(ChurnMsg::Batch(events)).is_err()
                {
                    send(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "daemon is shutting down".into(),
                        },
                    )
                } else {
                    send(&mut stream, &Response::MutateAck { accepted: n, generation })
                }
            }
            Request::SwapStats => send(&mut stream, &Response::Stats(shared.stats())),
            Request::Shutdown => {
                // Bye goes out BEFORE the teardown starts: once the flag
                // flips, the main thread may join and exit the process
                // ahead of this (detached) connection thread's write.
                send(&mut stream, &Response::Bye);
                initiate_shutdown(&shared, &churn_tx, daemon_addr);
                return;
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Admit one point query (or shed it), wait for the worker's reply, and
/// write it back. Returns false when the connection died.
fn handle_query(
    stream: &mut TcpStream,
    shared: &Shared,
    kind: QueryKind,
    sel: UserSel,
    marginal: Option<(u32, f64)>,
) -> bool {
    if shared.shutdown.load(Ordering::Acquire) {
        return send(
            stream,
            &Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "daemon is shutting down".into(),
            },
        );
    }
    let (tx, rx) = mpsc::channel();
    let ids = match sel {
        UserSel::All => None,
        UserSel::Ids(ids) => Some(ids),
    };
    // audit: allow(wall-clock) queue-latency histogram timestamp; responses never read it
    let job = Job { kind, ids, marginal, reply: tx, enqueued: Instant::now() };
    if shared.queue.try_push(job).is_err() {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        return send(
            stream,
            &Response::Error {
                code: ErrorCode::Overloaded,
                message: "request queue full, retry".into(),
            },
        );
    }
    match rx.recv() {
        Ok(resp) => send(stream, &resp),
        Err(_) => false, // workers dropped the job during shutdown drain
    }
}

// ---------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------

fn worker_loop(shared: Arc<Shared>, coalesce: usize) {
    while let Some(jobs) = shared.queue.pop_coalesced(coalesce, &shared.shutdown) {
        execute_batch(&shared, jobs);
    }
}

/// Execute one coalesced run of same-kind jobs against a single snapshot
/// of the served index, split the results back per request, reply, and
/// record per-endpoint latency.
///
/// Coalescing is result-invisible: per-user evaluation is independent, so
/// a combined `assign` batch answers every constituent request with
/// exactly the assignments a solo call would produce, and a revenue
/// request's total is re-folded from the shared per-user payments with
/// [`chunked_payment_fold`] — bit-identical to
/// [`MenuIndex::try_expected_revenue`] on that request alone.
fn execute_batch(shared: &Shared, mut jobs: Vec<Job>) {
    let index = shared.handle.current();
    let kind = jobs[0].kind;
    if jobs.len() > 1 {
        shared.counters.coalesced.fetch_add(jobs.len() as u64 - 1, Ordering::Relaxed);
    }

    // A marginal what-if runs alone (it never coalesces): one call does
    // its own validation and answers either selector shape.
    if kind == QueryKind::Marginal {
        debug_assert_eq!(jobs.len(), 1);
        let mut job = jobs.pop().expect("one marginal job");
        let (offer, dprice) = job.marginal.take().expect("marginal job carries its perturbation");
        let result = match &job.ids {
            None => index.try_marginal_revenue_all(offer, dprice),
            Some(ids) => index.try_marginal_revenue(offer, dprice, ids),
        };
        let resp = match result {
            Ok(m) => {
                served(shared, kind);
                Response::Marginal(m)
            }
            Err(e) => Response::Error { code: ErrorCode::Query, message: e.to_string() },
        };
        finish(shared, job, resp);
        return;
    }

    // A whole-market query runs alone on the allocation-free `*_all`
    // paths (the queue never coalesces an `All` job).
    if jobs[0].ids.is_none() {
        debug_assert_eq!(jobs.len(), 1);
        let job = jobs.pop().expect("one whole-market job");
        let resp = match kind {
            QueryKind::Assign => Response::Assignments(index.assign_all()),
            QueryKind::Revenue => Response::Revenue(index.expected_revenue_all()),
            QueryKind::Marginal => unreachable!("handled above"),
        };
        served(shared, kind);
        finish(shared, job, resp);
        return;
    }

    // Validate every id batch up front so one bad request cannot spoil
    // the shared evaluation: invalid jobs answer a typed Query error,
    // valid ones proceed into the combined call.
    let mut valid: Vec<(Job, Vec<u32>)> = Vec::with_capacity(jobs.len());
    for mut job in jobs {
        let ids = job.ids.take().expect("only id batches coalesce");
        match index.validate_users(&ids) {
            Ok(()) => valid.push((job, ids)),
            Err(e) => finish(
                shared,
                job,
                Response::Error { code: ErrorCode::Query, message: e.to_string() },
            ),
        }
    }
    if valid.is_empty() {
        return;
    }
    let combined: Vec<u32> = valid.iter().flat_map(|(_, ids)| ids.iter().copied()).collect();
    match kind {
        QueryKind::Assign => {
            let all = index.try_assign(&combined).expect("batches validated above");
            let mut results = all.into_iter();
            for (job, ids) in valid {
                let part: Vec<_> = results.by_ref().take(ids.len()).collect();
                served(shared, kind);
                finish(shared, job, Response::Assignments(part));
            }
        }
        QueryKind::Revenue => {
            let payments = index.try_payments(&combined).expect("batches validated above");
            let mut offset = 0usize;
            for (job, ids) in valid {
                let total = chunked_payment_fold(&payments[offset..offset + ids.len()]);
                offset += ids.len();
                served(shared, kind);
                finish(shared, job, Response::Revenue(total));
            }
        }
        QueryKind::Marginal => unreachable!("handled above"),
    }
}

fn served(shared: &Shared, kind: QueryKind) {
    match kind {
        QueryKind::Assign => shared.counters.served_assign.fetch_add(1, Ordering::Relaxed),
        QueryKind::Revenue => shared.counters.served_revenue.fetch_add(1, Ordering::Relaxed),
        QueryKind::Marginal => shared.counters.served_marginal.fetch_add(1, Ordering::Relaxed),
    };
}

/// Reply to one job and record its endpoint latency (enqueue → reply).
/// Marginal requests keep no exported histogram — the 17-field stats
/// frame carries only the two steady-state endpoints' quantiles.
fn finish(shared: &Shared, job: Job, resp: Response) {
    let ns = job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    match job.kind {
        QueryKind::Assign => shared.assign_hist.record(ns),
        QueryKind::Revenue => shared.revenue_hist.record(ns),
        QueryKind::Marginal => {}
    }
    let _ = job.reply.send(resp);
}

// ---------------------------------------------------------------------
// Churn thread
// ---------------------------------------------------------------------

fn churn_loop(
    market: Market,
    mut live: LiveEngine,
    rx: mpsc::Receiver<ChurnMsg>,
    shared: Arc<Shared>,
    cfg: DaemonConfig,
) {
    let mut log = MarketLog::new(market);
    'outer: while let Ok(msg) = rx.recv() {
        let mut batches = match msg {
            ChurnMsg::Stop => break,
            ChurnMsg::Batch(events) => vec![events],
        };
        // Coalesce whatever else is already queued into one re-solve.
        let mut stop_after = false;
        while let Ok(more) = rx.try_recv() {
            match more {
                ChurnMsg::Stop => {
                    stop_after = true;
                    break;
                }
                ChurnMsg::Batch(events) => batches.push(events),
            }
        }

        // Per-event application: an invalid event is counted and skipped,
        // the rest of the batch still lands (the MarketLog validates each
        // event against the current post-churn dimensions).
        let mut applied = 0u64;
        for ev in batches.into_iter().flatten() {
            match log.apply(ev) {
                Ok(()) => applied += 1,
                Err(_) => {
                    shared.counters.mutations_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if applied > 0 {
            if cfg.compact_at > 0.0 {
                log.maybe_compact(cfg.compact_at);
            }
            let churned = log.snapshot();
            match live.resolve(&churned) {
                Ok(report) => {
                    shared
                        .counters
                        .resolve_hits
                        .fetch_add(report.stats.hits as u64, Ordering::Relaxed);
                    shared
                        .counters
                        .resolve_misses
                        .fetch_add(report.stats.misses as u64, Ordering::Relaxed);
                    let Some(cell) = report.whole_cell() else {
                        continue;
                    };
                    let index = MenuIndex::compile(&churned, &cell.outcome.config)
                        .with_threads(cfg.query_threads);
                    shared.handle.swap(index);
                    shared.counters.mutations_applied.fetch_add(applied, Ordering::Relaxed);
                }
                Err(e) => {
                    // Leave the previous generation serving; the events
                    // stay in the log for the next batch's resolve.
                    eprintln!("revmax-served: churn resolve failed: {e}");
                    shared.counters.mutations_rejected.fetch_add(applied, Ordering::Relaxed);
                }
            }
        }
        if stop_after {
            break 'outer;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        for ns in [1u64, 2, 3, 1000, 1000, 1_000_000] {
            h.record(ns);
        }
        h.record(0); // degenerate observation lands in bucket 0
        assert_eq!(h.count(), 7);
        // Median of {0,1,2,3,1000,1000,1e6}: the 4th observation (3) sits
        // in bucket ⌊log2 3⌋ = 1, upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 resolves to the top observation's bucket upper bound.
        let p99 = h.quantile(0.99);
        assert!((1_000_000..2_097_152).contains(&p99), "p99 = {p99}");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        // The extreme bucket saturates rather than overflowing.
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    fn job(kind: QueryKind, ids: Option<Vec<u32>>) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (Job { kind, ids, marginal: None, reply: tx, enqueued: Instant::now() }, rx)
    }

    #[test]
    fn queue_sheds_beyond_capacity_and_pops_fifo() {
        let q = JobQueue::new(2);
        let stop = AtomicBool::new(false);
        let (a, _ra) = job(QueryKind::Assign, Some(vec![1]));
        let (b, _rb) = job(QueryKind::Assign, Some(vec![2]));
        let (c, _rc) = job(QueryKind::Assign, Some(vec![3]));
        assert!(q.try_push(a).is_ok());
        assert!(q.try_push(b).is_ok());
        // Admission control: the third is refused, not queued.
        assert!(q.try_push(c).is_err());
        let batch = q.pop_coalesced(0, &stop).unwrap(); // coalescing off
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].ids, Some(vec![1]));
        let batch = q.pop_coalesced(0, &stop).unwrap();
        assert_eq!(batch[0].ids, Some(vec![2]));
        // Empty + stop => workers exit.
        stop.store(true, Ordering::Release);
        assert!(q.pop_coalesced(0, &stop).is_none());
    }

    #[test]
    fn queue_coalesces_same_kind_id_runs_only() {
        let q = JobQueue::new(16);
        let stop = AtomicBool::new(false);
        let keep: Vec<_> = [
            (QueryKind::Revenue, Some(vec![1u32])),
            (QueryKind::Revenue, Some(vec![2])),
            (QueryKind::Revenue, Some(vec![3])),
            (QueryKind::Assign, Some(vec![4])), // kind change breaks the run
            (QueryKind::Assign, None),          // All never joins a batch
            (QueryKind::Assign, Some(vec![5])),
        ]
        .into_iter()
        .map(|(kind, ids)| {
            let (j, rx) = job(kind, ids);
            assert!(q.try_push(j).is_ok());
            rx
        })
        .collect();

        let batch = q.pop_coalesced(16, &stop).unwrap();
        assert_eq!(batch.len(), 3, "three revenue id-jobs coalesce");
        assert!(batch.iter().all(|j| j.kind == QueryKind::Revenue));
        let batch = q.pop_coalesced(16, &stop).unwrap();
        assert_eq!(batch.len(), 1, "assign job stops at the All job");
        assert_eq!(batch[0].ids, Some(vec![4]));
        let batch = q.pop_coalesced(16, &stop).unwrap();
        assert_eq!(batch.len(), 1, "All runs alone");
        assert!(batch[0].ids.is_none());
        let batch = q.pop_coalesced(16, &stop).unwrap();
        assert_eq!(batch[0].ids, Some(vec![5]));
        drop(keep);
    }

    #[test]
    fn coalesce_budget_caps_the_run() {
        let q = JobQueue::new(16);
        let stop = AtomicBool::new(false);
        let keep: Vec<_> = (0..5)
            .map(|k| {
                let (j, rx) = job(QueryKind::Assign, Some(vec![k]));
                assert!(q.try_push(j).is_ok());
                rx
            })
            .collect();
        let batch = q.pop_coalesced(2, &stop).unwrap();
        assert_eq!(batch.len(), 3, "1 + max_extra");
        let batch = q.pop_coalesced(2, &stop).unwrap();
        assert_eq!(batch.len(), 2);
        drop(keep);
    }
}
