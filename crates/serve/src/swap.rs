//! Hot-swapping the serving index under live traffic (`DESIGN.md` §10).
//!
//! A [`MenuIndex`] is immutable once compiled; churn produces a *new*
//! index (via [`MenuIndex::rebind`] when only the market moved, or a full
//! [`MenuIndex::compile`] when the re-solve changed the menu). The
//! [`ServeHandle`] is the indirection serving threads read through: they
//! grab an `Arc` snapshot per batch ([`ServeHandle::current`]) and keep
//! serving it even while a writer [`ServeHandle::swap`]s in the successor
//! — no query is ever torn across two menu generations, and a swap never
//! blocks readers for longer than one `RwLock` clone of an `Arc`.

use crate::index::MenuIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A shared, swappable slot holding the currently-served [`MenuIndex`].
///
/// Clone the handle freely (clones share the slot); call
/// [`ServeHandle::current`] once per query batch and use that snapshot for
/// the whole batch.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    slot: Arc<RwLock<Arc<MenuIndex>>>,
    generation: Arc<AtomicU64>,
}

impl ServeHandle {
    /// Start serving `index` as generation 0.
    pub fn new(index: MenuIndex) -> ServeHandle {
        ServeHandle {
            slot: Arc::new(RwLock::new(Arc::new(index))),
            generation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Snapshot the currently-served index. The snapshot stays valid (and
    /// bit-stable) for as long as the caller holds it, across any number
    /// of concurrent swaps.
    ///
    /// Lock poisoning is recovered, not propagated: the slot holds a
    /// single `Arc` that is only ever replaced wholesale under the write
    /// guard, so even if a writer panicked mid-[`ServeHandle::swap`] the
    /// stored value is internally consistent (either the old index or the
    /// new one) — a daemon must not let one panicking deploy thread kill
    /// every subsequent reader.
    pub fn current(&self) -> Arc<MenuIndex> {
        Arc::clone(&self.slot.read().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    /// Atomically replace the served index with its successor and bump the
    /// generation. In-flight readers keep their snapshot; new readers see
    /// `index`. Returns the new generation number. Recovers a poisoned
    /// slot the same way [`ServeHandle::current`] does.
    pub fn swap(&self, index: MenuIndex) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(index);
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// How many swaps have happened (0 = still serving the initial index).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::prelude::*;

    /// Table 1's market with every WTP scaled — distinct scales give
    /// distinct optimal prices, hence distinguishable served revenues.
    fn table1_index(scale: f64) -> (Market, MenuIndex) {
        let w = WtpMatrix::from_rows(vec![
            vec![12.0 * scale, 4.0 * scale],
            vec![8.0 * scale, 2.0 * scale],
            vec![5.0 * scale, 11.0 * scale],
        ]);
        let market = Market::new(w, Params::default().with_theta(-0.05));
        let solved = MixedMatching::default().run(&market);
        let index = MenuIndex::compile(&market, &solved.config);
        (market, index)
    }

    #[test]
    fn swap_replaces_the_served_index_and_bumps_generation() {
        let (_, a) = table1_index(1.0);
        let (_, b) = table1_index(2.0);
        let handle = ServeHandle::new(a);
        assert_eq!(handle.generation(), 0);
        let rev_a = handle.current().expected_revenue_all();

        let held = handle.current(); // in-flight reader
        assert_eq!(handle.swap(b), 1);
        assert_eq!(handle.generation(), 1);

        // The held snapshot is bit-stable across the swap; new readers see
        // the successor.
        assert_eq!(held.expected_revenue_all().to_bits(), rev_a.to_bits());
        assert_ne!(handle.current().expected_revenue_all().to_bits(), rev_a.to_bits());
    }

    #[test]
    fn clones_share_the_slot() {
        let (_, a) = table1_index(1.0);
        let (_, b) = table1_index(2.0);
        let handle = ServeHandle::new(a);
        let clone = handle.clone();
        handle.swap(b);
        assert_eq!(clone.generation(), 1);
        assert_eq!(
            clone.current().expected_revenue_all().to_bits(),
            handle.current().expected_revenue_all().to_bits()
        );
    }

    #[test]
    fn poisoned_slot_recovers_for_readers_and_writers() {
        let (_, a) = table1_index(1.0);
        let (_, b) = table1_index(2.0);
        let rev_a = a.expected_revenue_all();
        let rev_b = b.expected_revenue_all();
        let handle = ServeHandle::new(a);

        // Poison the slot: a thread panics while holding the write guard.
        // (Poisoning is set by the guard dropping during the panic, so the
        // recovery-form acquisition poisons just the same — and keeps this
        // test itself clean under the lock-unwrap audit rule.)
        let writer = handle.clone();
        let t = std::thread::spawn(move || {
            let _guard = writer.slot.write().unwrap_or_else(|p| p.into_inner());
            panic!("deploy thread dies mid-swap");
        });
        assert!(t.join().is_err());
        assert!(handle.slot.is_poisoned());

        // Readers recover the (still-consistent) stored index...
        assert_eq!(handle.current().expected_revenue_all().to_bits(), rev_a.to_bits());
        // ...and writers can still deploy successors over the poison.
        assert_eq!(handle.swap(b), 1);
        assert_eq!(handle.current().expected_revenue_all().to_bits(), rev_b.to_bits());
    }

    #[test]
    fn swaps_are_visible_across_threads() {
        let (_, a) = table1_index(1.0);
        let (_, b) = table1_index(2.0);
        let rev_b = b.expected_revenue_all();
        let handle = ServeHandle::new(a);
        let writer = handle.clone();
        let t = std::thread::spawn(move || writer.swap(b));
        assert_eq!(t.join().unwrap(), 1);
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.current().expected_revenue_all().to_bits(), rev_b.to_bits());
    }
}
