//! # revmax-serve — the batched menu-serving layer
//!
//! The solvers end at a priced bundle *menu*; production starts at the
//! question "given this consumer, which menu entry do they adopt and at
//! what expected revenue?" asked millions of times. This crate answers it
//! (`DESIGN.md` §9):
//!
//! * [`MenuIndex`] — a read-optimized, `Arc`-shared **compiled menu**:
//!   the solved [`BundleConfig`](revmax_core::config::BundleConfig)
//!   flattened into structure-of-arrays node tables plus per-item → offer
//!   postings, next to the market's zero-copy dual-CSR WTP store.
//! * [`MenuIndex::assign`] / [`MenuIndex::expected_revenue`] — batched
//!   queries evaluating the §4.1 adoption model (step and sigmoid γ)
//!   user-major from [`SparseSlice`](revmax_core::wtp::SparseSlice) rows,
//!   fanned out on [`revmax_par`] under the §6 determinism contract:
//!   fixed chunks, ordered reduction, **bit-identical at any thread
//!   count** — and per-user bit-identical to solver-side evaluation.
//! * [`MenuIndex::rebind`] / [`ServeHandle`] — the churn path
//!   (`DESIGN.md` §10): re-bind a compiled menu to a churned market
//!   (sharing the flattened offer forest by `Arc`) and hot-swap it under
//!   live traffic without tearing in-flight query batches.
//! * [`compile_sweep_cell`] — one call from any sweep cell of a
//!   [`SweepReport`] (whole-market or
//!   cohort) to a servable index: the engine rebuilds the cell's exact
//!   (fingerprint-checked) market and the winning configuration compiles
//!   against it.
//!
//! ```
//! use revmax_core::prelude::*;
//! use revmax_serve::MenuIndex;
//!
//! // Solve Table 1's market, then serve the menu.
//! let w = WtpMatrix::from_rows(vec![
//!     vec![12.0, 4.0],
//!     vec![8.0, 2.0],
//!     vec![5.0, 11.0],
//! ]);
//! let market = Market::new(w, Params::default().with_theta(-0.05));
//! let solved = MixedMatching::default().run(&market);
//!
//! let index = MenuIndex::compile(&market, &solved.config);
//! let assignments = index.assign(&index.all_users());
//! assert_eq!(assignments.len(), 3);
//! let revenue = index.expected_revenue_all();
//! assert!((revenue - solved.revenue).abs() < 1e-9);
//! ```

pub mod daemon;
pub mod index;
pub mod kernel;
pub mod proto;
pub mod query;
pub mod swap;

pub use daemon::{Daemon, DaemonConfig, LatencyHistogram};
pub use index::MenuIndex;
pub use kernel::{KernelKind, DEFAULT_BLOCK};
pub use proto::{DaemonStats, ErrorCode, ProtoError, Request, Response, UserSel};
pub use query::{
    chunked_payment_fold, solver_user_revenue, Assignment, MarginalRevenue, QueryError,
};
pub use swap::ServeHandle;

use revmax_core::market::Market;
use revmax_engine::report::SweepReport;
use revmax_engine::spec::SweepSpec;

/// Compile one sweep cell's winning configuration into a servable
/// [`MenuIndex`], in one call: the engine regenerates the cell's dataset
/// and (sub-)market — verifying the rebuilt market's content fingerprint
/// against the one recorded in the cell — and the cell's solved
/// configuration compiles against it. Returns the rebuilt market too, so
/// callers can keep solving / inspecting it.
///
/// `spec` must be the spec the report was produced from (the cohort
/// partitioning is a function of its `cohorts` knob).
pub fn compile_sweep_cell(
    spec: &SweepSpec,
    report: &SweepReport,
    cell: usize,
) -> Result<(Market, MenuIndex), String> {
    let cell = report
        .cells
        .get(cell)
        .ok_or_else(|| format!("cell {cell} out of range ({} cells)", report.cells.len()))?;
    let market = revmax_engine::rebuild_cell_market(spec, cell)?;
    let index = MenuIndex::compile(&market, &cell.config);
    Ok((market, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_engine::{run_sweep, Cohort};

    #[test]
    fn sweep_cell_compiles_into_a_servable_index() {
        let mut spec = SweepSpec::default();
        spec.apply("methods", "components,mixed_greedy").unwrap();
        spec.apply("scales", "tiny").unwrap();
        spec.apply("cohorts", "2").unwrap();
        spec.apply("threads", "1").unwrap();
        let report = run_sweep(&spec).unwrap();

        // Every cell — whole-market and cohorts alike — round-trips into
        // an index whose batched revenue matches the cell's solve.
        for (k, cell) in report.cells.iter().enumerate() {
            let (market, index) = compile_sweep_cell(&spec, &report, k).unwrap();
            assert_eq!(market.fingerprint(), cell.fingerprint);
            assert_eq!(index.n_users(), cell.n_users);
            assert_eq!(index.n_items(), cell.n_items);
            let served = index.expected_revenue_all();
            assert!(
                (served - cell.revenue).abs() <= 1e-9 * cell.revenue.abs().max(1.0),
                "cell {k} ({} {}): served {served} vs solved {}",
                cell.method,
                cell.cohort,
                cell.revenue
            );
        }
        assert!(report.cells.iter().any(|c| c.cohort != Cohort::Whole));
    }

    #[test]
    fn out_of_range_cell_is_an_error() {
        let mut spec = SweepSpec::default();
        spec.apply("methods", "components").unwrap();
        spec.apply("scales", "tiny").unwrap();
        spec.apply("threads", "1").unwrap();
        let report = run_sweep(&spec).unwrap();
        let err = compile_sweep_cell(&spec, &report, 99).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
