//! The cache-blocked user×offer tile kernel (`DESIGN.md` §12).
//!
//! [`crate::query`]'s historical evaluation is row-at-a-time: scatter one
//! consumer's WTP row into a per-node accumulator, walk the offer tables,
//! reset, repeat. Every node's metadata (price, size, child count,
//! subtree range) is re-loaded per user, the mixed walk allocates a
//! holdings `Vec` per adopted node, and nothing vectorizes. This module
//! evaluates a **block** of users at once instead:
//!
//! * **Tile accumulator** — `acc[node × stride + lane]`, node-major, so
//!   the walk loads one contiguous lane row per node and the whole tile
//!   (`n_nodes × block × 8` bytes) stays cache-resident across the walk.
//! * **Lane determinism** — lane assignment is a pure function of index
//!   (lane `l` of a block holds the block's `l`-th user, blocks split a
//!   §6 chunk front to back), and every lane's arithmetic is exactly the
//!   row-walk's: per-user results are bit-identical to [`KernelKind::Rows`]
//!   at any block size and thread count.
//! * **Branchless step adoption** — in the step regime (γ ≥
//!   `Params::STEP_GAMMA`) adoption decisions become sign masks and the
//!   per-lane state updates compile to selects, with two bit-safety
//!   guards: an adoption mask always includes `s != 0.0` (a zero-sum lane
//!   must not adopt a zero-priced offer through the ε tie-break), and
//!   skipped lanes contribute `price * 0.0 = +0.0` to payment folds that
//!   start at `+0.0` and only ever add non-negative terms — so "evaluate
//!   everything, mask the result" produces the very bits the row-walk's
//!   `continue` produces. The soft-sigmoid pure path keeps its zero-skip
//!   branch (an *included* zero-WTP lane would contribute a positive
//!   probability).
//! * **Structural tile stack** — the mixed walk's stack evolution (push a
//!   leaf, drain `k` children, push the parent) is the same for every
//!   lane, so one stack of SoA entries (`sum/paid/count` per lane) serves
//!   the whole block; a lane with no holdings is the all-zero state,
//!   which makes the child combine an unconditional add (`x + 0.0 = x`
//!   bitwise for the non-negative sums involved).
//! * **Adoption bitmaps** — collect mode records each (node, lane)
//!   adoption decision as one branchless OR into a per-lane bitmap
//!   (`⌈n_nodes/64⌉` words), so the collect walk stays as tight as the
//!   payment-only walk. The held-offer list is reconstructed afterwards
//!   by `TileScratch::take_offers`: adopting a node wipes every
//!   holding in its subtree, so the final list is exactly the adopted
//!   nodes without an adopted ancestor — a descending bit-scan that
//!   masks off each emitted node's subtree in O(held) word ops.
//!
//! The walk is price-parameterized (`TileScratch::walk_block` takes the
//! price table as a slice) so a marginal-revenue query can re-walk the
//! same scattered tile under a perturbed price without re-scattering —
//! the scatter is the only part that touches the WTP matrix.

use crate::index::MenuStore;
use revmax_core::config::Strategy;

/// Which batched-query evaluation the index uses. Results are
/// bit-identical either way (pinned by the proptest parity suite and the
/// `serve_bench kernel=both` CI leg); the knob exists for A/B timing and
/// as a reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Row-at-a-time reference evaluation (one user per pass).
    Rows,
    /// Cache-blocked tile kernel (this module) — the default.
    Tiled,
}

impl KernelKind {
    /// Lower-case knob name (bench CLI, logs).
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Rows => "rows",
            KernelKind::Tiled => "tiled",
        }
    }

    /// Parse a knob value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "rows" => Ok(KernelKind::Rows),
            "tiled" => Ok(KernelKind::Tiled),
            other => Err(format!("unknown kernel '{other}' (rows|tiled)")),
        }
    }
}

/// Default user-block width. 512 lanes × 8 bytes = 4 KiB per node row —
/// a ~100-node tile is ~430 KiB, past L1 but L2-resident, and the sweep
/// in `EXPERIMENTS.md` shows throughput climbing to a plateau at
/// 512–1024 lanes (node metadata and per-root dispatch amortize over
/// more lanes) before collapsing at 2048 when the tile spills L2.
pub const DEFAULT_BLOCK: usize = 512;

/// Unroll width of the lane loops: the inner loops process lanes in
/// chunks of 4 independent accumulators (`chunks_exact(LANES)`), which
/// the compiler turns into SIMD blends; the remainder lanes run scalar.
/// Lane math is identical either way, so the unroll never affects bits.
pub const LANES: usize = 4;

/// One level of the tile stack: every lane's holdings at this tree
/// position, SoA. "No holding" is the all-zero state (`count == 0`), so
/// combining children is an unconditional lane-wise add.
struct TileEntry {
    /// Raw Σ of item WTPs over held items, per lane.
    sum: Vec<f64>,
    /// Amount paid, per lane.
    paid: Vec<f64>,
    /// Held item count, per lane (0 = no holding).
    count: Vec<u32>,
}

impl TileEntry {
    fn new(stride: usize) -> Self {
        TileEntry { sum: vec![0.0; stride], paid: vec![0.0; stride], count: vec![0; stride] }
    }
}

/// Reusable per-worker tile state. One `TileScratch` serves every block
/// of a §6 chunk; nothing here escapes, results are read out of
/// [`TileScratch::payments`] / [`TileScratch::take_offers`] after
/// [`TileScratch::eval_block`].
pub(crate) struct TileScratch {
    /// Lane capacity (the resolved block size).
    block: usize,
    /// Row pitch of `acc` in `f64`s: `block` rounded up so each node row
    /// spans an **odd** number of cache lines. A power-of-two pitch (e.g.
    /// 64 lanes × 8 B = 8 lines) would map every node's row for a given
    /// lane into the same handful of L1 sets — the scatter's
    /// fixed-lane/varying-node writes then conflict-miss on ~4 sets
    /// instead of using the whole cache. Layout only; never affects bits.
    stride: usize,
    /// Node-major bundle-sum tile: `acc[n * stride + lane]`.
    acc: Vec<f64>,
    /// Per-lane expected payment of the last evaluated block.
    pub(crate) payments: Vec<f64>,
    /// Words per lane of `flag_words`: `⌈n_nodes / 64⌉`.
    wpl: usize,
    /// Collect mode: per-lane adoption bitmap of the last walk,
    /// lane-major — node `n`'s decision for lane `l` is bit `n % 64` of
    /// `flag_words[l * wpl + n / 64]`. Recording a decision is one
    /// branchless OR, so the collect walk stays as tight as the
    /// payment-only walk, and a lane's whole outcome sits in `wpl` words
    /// for [`TileScratch::take_offers`]. Cleared per collect walk.
    flag_words: Vec<u64>,
    /// Readout scratch: one lane's `wpl` flag words, consumed bit by bit.
    readout: Vec<u64>,
    /// Stack arena, reused across nodes/blocks (`sp` live entries).
    entries: Vec<TileEntry>,
    sp: usize,
    /// Lanes of the current block interested in the current root
    /// (compacted per root: interest per block is sparse, and a 64-lane
    /// union would otherwise walk every tree for every block).
    active: Vec<u32>,
}

impl TileScratch {
    /// Scratch for `store` at block width `block` (0 ⇒ [`DEFAULT_BLOCK`]).
    pub(crate) fn new(store: &MenuStore, block: usize) -> Self {
        let block = if block == 0 { DEFAULT_BLOCK } else { block };
        // Odd number of 64-byte lines per row (see `stride`): round up to
        // a whole line, then pad one more if the line count came out even.
        let mut stride = block.next_multiple_of(8);
        if (stride / 8) % 2 == 0 {
            stride += 8;
        }
        let wpl = store.shape.prices.len().div_ceil(64);
        TileScratch {
            block,
            stride,
            acc: vec![0.0; store.shape.prices.len() * stride],
            payments: vec![0.0; block],
            wpl,
            flag_words: vec![0; block * wpl],
            readout: vec![0; wpl],
            entries: Vec::new(),
            sp: 0,
            active: Vec::with_capacity(block),
        }
    }

    /// The resolved block width.
    pub(crate) fn block(&self) -> usize {
        self.block
    }

    /// Evaluate one block of users (`users.len() ≤ block`): scatter the
    /// lanes' WTP rows into the tile, then walk the menu at its compiled
    /// prices. Per-lane payments land in `self.payments[..users.len()]`;
    /// with `collect`, per-lane held offers are readable via
    /// [`TileScratch::take_offers`].
    pub(crate) fn eval_block(&mut self, store: &MenuStore, users: &[u32], collect: bool) {
        self.scatter_block(store, users);
        self.walk_block(store, &store.shape.prices, users.len(), collect, true);
    }

    /// Scatter each lane's WTP row through the item→offer postings into
    /// the node-major tile. Per lane, each node's bundle sum accumulates
    /// in ascending item order — exactly the row-walk's (and the
    /// solver's) accumulation order, which is what keeps lane results
    /// bit-identical to [`KernelKind::Rows`].
    ///
    /// The tile is **not** cleared here: a consuming walk
    /// ([`TileScratch::walk_block`] with `consume`) zeroes every lane it
    /// read, and lanes it never visits are provably still zero (a root
    /// with no interested lane has an all-zero subtree, since validated
    /// child bundles nest in their parents) — so the tile re-zeroes
    /// itself for free instead of paying a `n_nodes × block` memset per
    /// block.
    pub(crate) fn scatter_block(&mut self, store: &MenuStore, users: &[u32]) {
        let shape = &store.shape;
        let stride = self.stride;
        debug_assert!(users.len() <= self.block);
        debug_assert!(self.acc.iter().all(|&x| x == 0.0), "tile not consumed by prior walk");
        for (lane, &u) in users.iter().enumerate() {
            debug_assert!((u as usize) < store.n_users);
            let row = store.wtp.row(u);
            for (i, w) in row.iter() {
                let (lo, hi) = (shape.post_indptr[i as usize], shape.post_indptr[i as usize + 1]);
                for &n in &shape.post_nodes[lo..hi] {
                    self.acc[n as usize * stride + lane] += w;
                }
            }
        }
    }

    /// Walk the already-scattered tile against a price table (the
    /// compiled `shape.prices`, or a perturbed copy for marginal-revenue
    /// queries — same code path, so perturbed results are bit-identical
    /// to a recompile at the perturbed price). Fills `payments[..b]` and,
    /// with `collect`, the per-(node, lane) adoption flags behind
    /// [`TileScratch::take_offers`].
    ///
    /// Every offer (pure) / tree (mixed) is walked only for the compacted
    /// list of lanes interested in it — per-block interest is sparse, and
    /// the union of 64 lanes' interests would otherwise visit nearly
    /// every node for nearly every block. Skipped lanes contribute the
    /// same bits as the row-walk's skipped users (`+0.0` payments, no
    /// offers), so compaction never shows up in results.
    ///
    /// With `consume`, every tile lane the walk reads is zeroed behind
    /// it, restoring the all-zero tile for the next scatter (see
    /// [`TileScratch::scatter_block`]); pass `false` to keep the tile for
    /// a second walk at a different price table (marginal queries).
    pub(crate) fn walk_block(
        &mut self,
        store: &MenuStore,
        prices: &[f64],
        b: usize,
        collect: bool,
        consume: bool,
    ) {
        let TileScratch {
            block, stride, acc, payments, wpl, flag_words, entries, sp, active, ..
        } = self;
        let (block, stride, wpl) = (*block, *stride, *wpl);
        debug_assert!(b <= block);
        let shape = &store.shape;
        let adoption = &store.adoption;
        let alpha = adoption.alpha;
        let eps = adoption.epsilon;
        let bundle_factor = 1.0 + store.params.theta;
        let node_size = |n: u32| shape.node_indptr[n as usize + 1] - shape.node_indptr[n as usize];
        payments[..b].fill(0.0);
        if collect {
            flag_words.fill(0);
        }

        match shape.strategy {
            Strategy::Pure => {
                let step = adoption.is_step();
                for &root in shape.roots.iter() {
                    let rbase = root as usize * stride;
                    let (rw, rb) = (root as usize >> 6, root as usize & 63);
                    active.clear();
                    for l in 0..b {
                        if acc[rbase + l] != 0.0 {
                            active.push(l as u32);
                        }
                    }
                    if active.is_empty() {
                        continue;
                    }
                    let price = prices[root as usize];
                    // `set_wtp` bitwise: (1+θ)·s for bundles, 1.0·s == s
                    // for singletons — one hoisted factor either way.
                    let factor = if node_size(root) >= 2 { bundle_factor } else { 1.0 };
                    if step {
                        // Branchless over the active lanes, in unrolled
                        // 4-wide groups of independent accumulators. An
                        // `adopt` mask always includes `s != 0.0` (here
                        // by construction of `active`), and a declining
                        // lane adds `price * 0.0 = +0.0` — the very bits
                        // the row-walk's skip produces.
                        let mut it = active.chunks_exact(LANES);
                        for l4 in &mut it {
                            for &l in l4 {
                                let l = l as usize;
                                let s = acc[rbase + l];
                                let margin = alpha * (factor * s) - price + eps;
                                payments[l] += price * ((margin >= 0.0) as u32 as f64);
                            }
                        }
                        for &l in it.remainder() {
                            let l = l as usize;
                            let s = acc[rbase + l];
                            let margin = alpha * (factor * s) - price + eps;
                            payments[l] += price * ((margin >= 0.0) as u32 as f64);
                        }
                        if collect {
                            for &l in active.iter() {
                                let l = l as usize;
                                let s = acc[rbase + l];
                                let a = (alpha * (factor * s) - price + eps >= 0.0) as u64;
                                flag_words[l * wpl + rw] |= a << rb;
                            }
                        }
                    } else {
                        // Soft sigmoid: only interested lanes contribute
                        // (an *included* zero-WTP lane would add a
                        // positive probability), exactly as in the
                        // row-walk — `active` is that restriction.
                        for &l in active.iter() {
                            let l = l as usize;
                            let s = acc[rbase + l];
                            let w = factor * s;
                            payments[l] += price * adoption.probability(w, price);
                            if collect {
                                let a = (adoption.margin(w, price) >= 0.0) as u64;
                                flag_words[l * wpl + rw] |= a << rb;
                            }
                        }
                    }
                    if consume {
                        for &l in active.iter() {
                            acc[rbase + l as usize] = 0.0;
                        }
                    }
                }
            }
            Strategy::Mixed => {
                for &root in shape.roots.iter() {
                    let rbase = root as usize * stride;
                    // Compact the lanes interested in this tree. For any
                    // *validated* menu, child bundles nest in their
                    // parents, so a lane with a zero root sum has zero
                    // sums across the subtree and would walk to the
                    // all-zero state contributing +0.0 — restricting the
                    // walk to interested lanes is therefore bit-identical
                    // to the row-walk's per-user skip.
                    active.clear();
                    for l in 0..b {
                        if acc[rbase + l] != 0.0 {
                            active.push(l as u32);
                        }
                    }
                    if active.is_empty() {
                        continue;
                    }
                    // Adaptive lane traversal: a mostly-interested block
                    // runs the full-width loops (contiguous, bounds-free,
                    // auto-vectorizable; uninterested lanes walk to the
                    // all-zero state and contribute `+0.0`, the same bits
                    // as being skipped), a sparse block the compacted
                    // gather loops. Pure perf dispatch — both bodies do
                    // the row-walk's arithmetic verbatim.
                    let dense = active.len() * 2 >= b;
                    debug_assert_eq!(*sp, 0);
                    for n in shape.subtree_start[root as usize]..=root {
                        let k = shape.n_children[n as usize] as usize;
                        let price = prices[n as usize];
                        let size = node_size(n);
                        let nbase = n as usize * stride;
                        let (nw, nb) = (n as usize >> 6, n as usize & 63);
                        if k == 0 {
                            // Leaf offer: plain take-it-or-leave-it per
                            // lane; a declined/uninterested lane is the
                            // all-zero state. Collect mode records the
                            // adoption mask as a flag byte — still
                            // branchless.
                            if *sp == entries.len() {
                                entries.push(TileEntry::new(block));
                            }
                            let e = &mut entries[*sp];
                            *sp += 1;
                            let factor = if size >= 2 { bundle_factor } else { 1.0 };
                            if dense {
                                let row = &acc[nbase..nbase + b];
                                let sums = &mut e.sum[..b];
                                let paid = &mut e.paid[..b];
                                let count = &mut e.count[..b];
                                for l in 0..b {
                                    let s = row[l];
                                    let margin = alpha * (factor * s) - price + eps;
                                    let adopt = (margin >= 0.0) & (s != 0.0);
                                    sums[l] = if adopt { s } else { 0.0 };
                                    paid[l] = if adopt { price } else { 0.0 };
                                    count[l] = if adopt { size as u32 } else { 0 };
                                }
                                if collect {
                                    // Re-derive the mask (same pure
                                    // arithmetic, same bits) in a second
                                    // pass so the hot loop above keeps
                                    // vectorizing without the strided
                                    // bitmap read-modify-write.
                                    for l in 0..b {
                                        let s = row[l];
                                        let margin = alpha * (factor * s) - price + eps;
                                        let adopt = (margin >= 0.0) & (s != 0.0);
                                        flag_words[l * wpl + nw] |= (adopt as u64) << nb;
                                    }
                                }
                            } else {
                                for &l in active.iter() {
                                    let l = l as usize;
                                    let s = acc[nbase + l];
                                    let margin = alpha * (factor * s) - price + eps;
                                    let adopt = (margin >= 0.0) & (s != 0.0);
                                    e.sum[l] = if adopt { s } else { 0.0 };
                                    e.paid[l] = if adopt { price } else { 0.0 };
                                    e.count[l] = if adopt { size as u32 } else { 0 };
                                    if collect {
                                        flag_words[l * wpl + nw] |= (adopt as u64) << nb;
                                    }
                                }
                            }
                        } else {
                            // Combine the top k children into the base
                            // entry, lane-wise, in child order — the
                            // solver's left-to-right merge fold. Unheld
                            // children are all-zero, so the add is
                            // unconditional and bit-preserving.
                            let base = *sp - k;
                            let (head, tail) = entries.split_at_mut(base + 1);
                            let dst = &mut head[base];
                            for src in &tail[..k - 1] {
                                if dense {
                                    let (ds, ss) = (&mut dst.sum[..b], &src.sum[..b]);
                                    for l in 0..b {
                                        ds[l] += ss[l];
                                    }
                                    let (dp, sq) = (&mut dst.paid[..b], &src.paid[..b]);
                                    for l in 0..b {
                                        dp[l] += sq[l];
                                    }
                                    let (dc, sc) = (&mut dst.count[..b], &src.count[..b]);
                                    for l in 0..b {
                                        dc[l] += sc[l];
                                    }
                                } else {
                                    for &l in active.iter() {
                                        let l = l as usize;
                                        dst.sum[l] += src.sum[l];
                                        dst.paid[l] += src.paid[l];
                                        dst.count[l] += src.count[l];
                                    }
                                }
                            }
                            // Upgrade decision per lane. The combined
                            // holdings already sit in `dst`, so "keep
                            // holdings" and "no holdings" are no-ops;
                            // only adoption rewrites the lane, via
                            // branchless selects.
                            if dense && !collect {
                                let row = &acc[nbase..nbase + b];
                                let sums = &mut dst.sum[..b];
                                let paid = &mut dst.paid[..b];
                                let count = &mut dst.count[..b];
                                for l in 0..b {
                                    let s_b = row[l];
                                    let s_held = sums[l];
                                    let q = paid[l];
                                    let c_held = count[l] as usize;
                                    let addon_count = size.saturating_sub(c_held).max(1);
                                    let afactor =
                                        if addon_count >= 2 { bundle_factor } else { 1.0 };
                                    let addon_wtp = afactor * (s_b - s_held).max(0.0);
                                    let margin = alpha * addon_wtp - (price - q) + eps;
                                    let adopt = (margin >= 0.0) & (s_b != 0.0);
                                    sums[l] = if adopt { s_b } else { s_held };
                                    paid[l] = if adopt { price } else { q };
                                    count[l] = if adopt { size as u32 } else { c_held as u32 };
                                }
                            } else {
                                // Collect-mode bodies also stay
                                // branchless — the decision lands in a
                                // flag byte; only the lane source
                                // differs between dense and compact.
                                macro_rules! decide {
                                    ($l:expr, $record:literal) => {{
                                        let l = $l;
                                        let s_b = acc[nbase + l];
                                        let s_held = dst.sum[l];
                                        let q = dst.paid[l];
                                        let c_held = dst.count[l] as usize;
                                        let addon_count = size.saturating_sub(c_held).max(1);
                                        let afactor =
                                            if addon_count >= 2 { bundle_factor } else { 1.0 };
                                        let addon_wtp = afactor * (s_b - s_held).max(0.0);
                                        let margin = alpha * addon_wtp - (price - q) + eps;
                                        let adopt = (margin >= 0.0) & (s_b != 0.0);
                                        dst.sum[l] = if adopt { s_b } else { s_held };
                                        dst.paid[l] = if adopt { price } else { q };
                                        dst.count[l] =
                                            if adopt { size as u32 } else { c_held as u32 };
                                        if $record {
                                            flag_words[l * wpl + nw] |= (adopt as u64) << nb;
                                        }
                                    }};
                                }
                                if dense {
                                    // dense ∧ ¬collect took the arm above.
                                    for l in 0..b {
                                        decide!(l, true);
                                    }
                                } else if collect {
                                    for &l in active.iter() {
                                        decide!(l as usize, true);
                                    }
                                } else {
                                    for &l in active.iter() {
                                        decide!(l as usize, false);
                                    }
                                }
                            }
                            *sp = base + 1;
                        }
                        if consume {
                            if dense {
                                acc[nbase..nbase + b].fill(0.0);
                            } else {
                                for &l in active.iter() {
                                    acc[nbase + l as usize] = 0.0;
                                }
                            }
                        }
                    }
                    // Pop the root: lanes with no holdings pay +0.0
                    // (bit-preserving).
                    *sp -= 1;
                    let e = &entries[*sp];
                    if dense {
                        let paid = &e.paid[..b];
                        for l in 0..b {
                            payments[l] += paid[l];
                        }
                    } else {
                        for &l in active.iter() {
                            payments[l as usize] += e.paid[l as usize];
                        }
                    }
                }
            }
        }
    }

    /// Reconstruct one lane's held-offer list (menu order) from the last
    /// collect walk's adoption bitmap. Adopting an offer node drops
    /// every holding inside its subtree, so the final list is exactly
    /// the adopted nodes without an adopted ancestor. Scanning set bits
    /// highest-first visits ancestors before descendants (post-order ids
    /// grow rootward) and later trees before earlier ones; each emitted
    /// node masks off its whole subtree `[subtree_start[n], n]` in O(1)
    /// word ops, so what survives is the maximal adopted set. Emitted
    /// subtree intervals are pairwise disjoint and ids are tree-segment
    /// ordered, so one global reverse yields the row-walk's menu-order
    /// list.
    pub(crate) fn take_offers(&mut self, store: &MenuStore, lane: usize) -> Vec<u32> {
        let shape = &store.shape;
        let wpl = self.wpl;
        self.readout.copy_from_slice(&self.flag_words[lane * wpl..(lane + 1) * wpl]);
        let buf = &mut self.readout[..];
        let mut out = Vec::new();
        let mut wi = wpl;
        while wi > 0 {
            wi -= 1;
            while buf[wi] != 0 {
                let bit = 63 - buf[wi].leading_zeros() as usize;
                let n = wi * 64 + bit;
                out.push(n as u32);
                let s = shape.subtree_start[n] as usize;
                let sw = s >> 6;
                if sw == wi {
                    buf[wi] &= !((!0u64 << (s & 63)) & (!0u64 >> (63 - bit)));
                } else {
                    buf[wi] &= !(!0u64 >> (63 - bit));
                    for w in &mut buf[sw + 1..wi] {
                        *w = 0;
                    }
                    buf[sw] &= !(!0u64 << (s & 63));
                }
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod profiling {
    use super::*;
    use revmax_core::algorithms::MixedGreedy;
    use revmax_core::market::Market;
    use revmax_core::params::Params;
    use revmax_core::wtp::WtpMatrix;

    /// Scatter-vs-walk phase split on a bench-shaped market. Not a test of
    /// behavior — run on demand with
    /// `cargo test --release -p revmax-serve -- --ignored profile_tile --nocapture`.
    #[test]
    #[ignore]
    fn profile_tile_phases() {
        let n_users = 200_000usize;
        let n_items = 60usize;
        let mut state = 0x2015_2015u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut gen_rows = |n: usize| -> Vec<Vec<f64>> {
            (0..n)
                .map(|_| {
                    let mut row = vec![0.0; n_items];
                    for _ in 0..8 {
                        row[next() as usize % n_items] = 1.0 + (next() % 1000) as f64 / 100.0;
                    }
                    row
                })
                .collect()
        };
        // Solve the menu on a small base market (like serve_bench does),
        // then serve a large independently-drawn consumer population.
        let base = Market::new(WtpMatrix::from_rows(gen_rows(120)), Params::default());
        let outcome = revmax_core::algorithms::Configurator::run(&MixedGreedy::default(), &base);
        let market = Market::new(WtpMatrix::from_rows(gen_rows(n_users)), Params::default());
        let index = crate::MenuIndex::compile(&market, &outcome.config);
        let store = &index.store;
        println!("menu: {} nodes, {} roots", store.shape.prices.len(), store.shape.roots.len());
        let users: Vec<u32> = (0..n_users as u32).collect();
        for &block in &[64usize, 128, 256] {
            let mut tile = TileScratch::new(store, block);
            // Scatter + manual un-consumed clear (walk skipped).
            let t = std::time::Instant::now();
            for blk in users.chunks(block) {
                tile.scatter_block(store, blk);
                tile.acc.iter_mut().for_each(|x| *x = 0.0);
            }
            let scatter_clear = t.elapsed();
            // memset-only baseline, to subtract the clear cost.
            let t = std::time::Instant::now();
            for _ in users.chunks(block) {
                tile.acc.iter_mut().for_each(|x| *x = 0.0);
            }
            let clear = t.elapsed();
            // Full eval (scatter + consuming walk), no collect.
            let t = std::time::Instant::now();
            let mut total = 0.0;
            for blk in users.chunks(block) {
                tile.eval_block(store, blk, false);
                for &p in &tile.payments[..blk.len()] {
                    total += p;
                }
            }
            let full = t.elapsed();
            println!(
                "block={block:>4}: scatter {:>7.1?} (clear {clear:.1?})  full {full:>7.1?}  walk ≈ {:?}  [total {total:.2}]",
                scatter_clear - clear,
                full - (scatter_clear - clear),
            );
        }
    }
}
