//! Batched menu queries: per-user adoption assignment and expected
//! revenue, evaluated user-major against the compiled [`MenuIndex`].
//!
//! ## Semantics (`DESIGN.md` §9)
//!
//! Every query evaluates the §4.1 adoption model exactly as the solver
//! does, per user:
//!
//! * **Pure** menus: a consumer considers each top-level offer
//!   independently; their expected payment for offer `r` is
//!   `p_r · P(adopt | w_{u,r}, p_r)` — exact under step adoption, the
//!   expectation under a soft sigmoid. The reported offer set is the
//!   threshold (modal) adoption set `{r : α·w − p + ε ≥ 0}`.
//! * **Mixed** menus: the solver's incremental-upgrade policy
//!   ([`revmax_core::mixed`]): leaves adopt bottom-up, holdings combine in
//!   child order, and a consumer upgrades to a parent exactly when the
//!   implicit add-on price does not exceed the add-on WTP. This is the
//!   same deterministic (threshold) evaluation
//!   [`revmax_core::config::BundleConfig::expected_revenue`] uses — exact
//!   under step adoption, the modal outcome under a soft sigmoid.
//!
//! ## Determinism
//!
//! Per-user results are **bit-identical to solver-side evaluation**: the
//! postings scatter accumulates each offer's bundle sum in the same
//! (ascending-item) order as [`Market::bundle_user_sums`], and the tree
//! walk reproduces the solver's fold order, so
//! `assign(&[u])[0].payment` equals
//! `config.expected_revenue(&market.view(None, Some(&[u])))` to the bit
//! (pinned by `crates/serve/tests/proptest_serve.rs`).
//!
//! Batched totals follow the §6 contract: users are split at **fixed
//! chunk boundaries** (a pure function of the batch length, via
//! [`revmax_par::effective_chunk_size`]) and chunk partials reduce **in
//! chunk order** on the calling thread — so `expected_revenue` is
//! bit-identical at any thread count, equal to the sequential chunked
//! fold of the per-user payments.

use crate::index::{MenuIndex, MenuStore};
use crate::kernel::{KernelKind, TileScratch};
use revmax_core::config::Strategy;
use revmax_core::market::Market;
use revmax_par::{effective_chunk_size, par_chunks_map_reduce, par_index_map};

/// A query rejected before evaluation. The serving daemon turns these
/// into protocol error responses; nothing in the query path panics on
/// malformed input (`DESIGN.md` §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// A queried user id is not a consumer of the compiled market.
    UserOutOfRange {
        /// The first offending id of the batch.
        user: u32,
        /// Consumer count of the compiled market.
        n_users: usize,
    },
    /// A marginal-revenue query named an offer node the menu doesn't have.
    OfferOutOfRange {
        /// The offending offer node id.
        offer: u32,
        /// Offer node count of the compiled menu.
        n_nodes: usize,
    },
    /// A marginal-revenue perturbation would make the offer price
    /// non-finite or negative — outside the model's price domain.
    PerturbedPriceInvalid,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range for a {n_users}-consumer market")
            }
            QueryError::OfferOutOfRange { offer, n_nodes } => {
                write!(f, "offer {offer} out of range for a {n_nodes}-node menu")
            }
            QueryError::PerturbedPriceInvalid => {
                write!(f, "perturbed offer price must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Expected revenue of the menu with one offer's price perturbed, next
/// to the unperturbed baseline — the marginal-analysis view of a price
/// move ("A Tale of Two Monopolies"): `delta / dprice` approximates
/// ∂R/∂p at the offer. Computed by [`MenuIndex::try_marginal_revenue`]
/// from a single WTP scatter per user block (the tile is walked twice,
/// once per price table), so `perturbed` is bit-identical to recompiling
/// the menu at the perturbed price and `base` to
/// [`MenuIndex::try_expected_revenue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginalRevenue {
    /// Expected revenue at the compiled prices.
    pub base: f64,
    /// Expected revenue with the offer's price moved by `dprice`.
    pub perturbed: f64,
    /// `perturbed - base`.
    pub delta: f64,
}

/// One consumer's menu outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The queried consumer.
    pub user: u32,
    /// Expected payment across the menu (exact in the step regime; the
    /// expectation for pure / modal outcome for mixed under a sigmoid).
    pub payment: f64,
    /// Offer node ids held under the threshold (modal) outcome, in menu
    /// order. Resolve them via [`MenuIndex::items`] / [`MenuIndex::price`].
    pub offers: Vec<u32>,
}

/// One consumer's holdings while walking a mixed offer tree — the
/// single-user mirror of [`revmax_core::mixed::UserState`].
#[derive(Debug, Clone, Copy)]
struct Hold {
    /// Raw Σ of item WTPs over held items.
    sum: f64,
    /// Amount paid.
    paid: f64,
    /// Number of held items.
    count: u32,
}

/// Reusable per-worker buffers: the per-node bundle-sum accumulator, the
/// touched-node reset list, and the tree-walk state stack.
struct ServeScratch {
    acc: Vec<f64>,
    touched: Vec<u32>,
    stack: Vec<(Option<Hold>, Vec<u32>)>,
}

impl ServeScratch {
    fn new(store: &MenuStore) -> Self {
        ServeScratch {
            acc: vec![0.0; store.shape.prices.len()],
            touched: Vec::new(),
            stack: Vec::new(),
        }
    }
}

impl MenuIndex {
    /// Reject any queried id that is not a consumer of the compiled
    /// market, naming the first offender. The scan is separate from the
    /// evaluation loops (which stay branch-free for valid batches): a
    /// single branch-free max-fold over the batch, and only on failure a
    /// second pass to find the first offending id for the error.
    pub fn validate_users(&self, users: &[u32]) -> Result<(), QueryError> {
        let n_users = self.store.n_users;
        let max = users.iter().copied().fold(0u32, u32::max);
        if users.is_empty() || (max as usize) < n_users {
            return Ok(());
        }
        let user = users.iter().copied().find(|&u| u as usize >= n_users).unwrap_or(max);
        Err(QueryError::UserOutOfRange { user, n_users })
    }

    /// Batched assignment: for every queried user, which menu entries they
    /// adopt (threshold outcome) and their expected payment. Users are
    /// evaluated independently over fixed-size blocks
    /// ([`revmax_par::effective_chunk_size`]) fanned out on `revmax-par`;
    /// results are returned in query order and are bit-identical at any
    /// thread count. Out-of-range ids are rejected up front as a typed
    /// [`QueryError`] — a malformed batch never panics the serving path.
    pub fn try_assign(&self, users: &[u32]) -> Result<Vec<Assignment>, QueryError> {
        self.validate_users(users)?;
        let store = &*self.store;
        if users.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = effective_chunk_size(users.len(), 0);
        let n_chunks = users.len().div_ceil(chunk);
        let kernel = self.kernel;
        let block = self.block;
        let parts: Vec<Vec<Assignment>> = par_index_map(self.threads, n_chunks, |k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(users.len());
            match kernel {
                KernelKind::Rows => {
                    let mut scratch = ServeScratch::new(store);
                    users[lo..hi]
                        .iter()
                        .map(|&u| {
                            let (payment, offers) = eval_user(store, &mut scratch, u, true);
                            Assignment { user: u, payment, offers }
                        })
                        .collect()
                }
                KernelKind::Tiled => {
                    let mut tile = TileScratch::new(store, block);
                    let mut out = Vec::with_capacity(hi - lo);
                    for blk in users[lo..hi].chunks(tile.block()) {
                        tile.eval_block(store, blk, true);
                        for (lane, &u) in blk.iter().enumerate() {
                            out.push(Assignment {
                                user: u,
                                payment: tile.payments[lane],
                                offers: tile.take_offers(store, lane),
                            });
                        }
                    }
                    out
                }
            }
        });
        Ok(parts.into_iter().flatten().collect())
    }

    /// [`MenuIndex::try_assign`], panicking on an invalid batch. Prefer
    /// the fallible variant anywhere input is not trusted.
    pub fn assign(&self, users: &[u32]) -> Vec<Assignment> {
        self.try_assign(users).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Per-user expected payments of the queried users, in query order —
    /// [`MenuIndex::try_assign`] without materializing the held-offer
    /// lists. `try_expected_revenue(users)` is exactly
    /// [`chunked_payment_fold`] over this vector; the daemon's coalesced
    /// revenue path relies on that identity (`DESIGN.md` §11).
    pub fn try_payments(&self, users: &[u32]) -> Result<Vec<f64>, QueryError> {
        self.validate_users(users)?;
        let store = &*self.store;
        if users.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = effective_chunk_size(users.len(), 0);
        let n_chunks = users.len().div_ceil(chunk);
        let kernel = self.kernel;
        let block = self.block;
        let parts: Vec<Vec<f64>> = par_index_map(self.threads, n_chunks, |k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(users.len());
            match kernel {
                KernelKind::Rows => {
                    let mut scratch = ServeScratch::new(store);
                    users[lo..hi]
                        .iter()
                        .map(|&u| eval_user(store, &mut scratch, u, false).0)
                        .collect()
                }
                KernelKind::Tiled => {
                    let mut tile = TileScratch::new(store, block);
                    let mut out = Vec::with_capacity(hi - lo);
                    for blk in users[lo..hi].chunks(tile.block()) {
                        tile.eval_block(store, blk, false);
                        out.extend_from_slice(&tile.payments[..blk.len()]);
                    }
                    out
                }
            }
        });
        Ok(parts.into_iter().flatten().collect())
    }

    /// Batched expected revenue of the menu over the queried users: the
    /// fixed-chunk ordered fold of the per-user expected payments (each
    /// bit-identical to solver-side evaluation of that single consumer).
    /// Bit-identical at any thread count (`DESIGN.md` §6/§9); rejects
    /// out-of-range ids as a typed [`QueryError`] instead of panicking.
    pub fn try_expected_revenue(&self, users: &[u32]) -> Result<f64, QueryError> {
        self.validate_users(users)?;
        let store = &*self.store;
        let kernel = self.kernel;
        let block = self.block;
        Ok(par_chunks_map_reduce(
            self.threads,
            users,
            0,
            |chunk| match kernel {
                KernelKind::Rows => {
                    let mut scratch = ServeScratch::new(store);
                    let mut total = 0.0;
                    for &u in chunk {
                        total += eval_user(store, &mut scratch, u, false).0;
                    }
                    total
                }
                KernelKind::Tiled => {
                    let mut tile = TileScratch::new(store, block);
                    let mut total = 0.0;
                    for blk in chunk.chunks(tile.block()) {
                        tile.eval_block(store, blk, false);
                        // Same ordered left-to-right fold as the row-walk:
                        // blocks split the chunk front to back, lanes are
                        // in user order.
                        for &p in &tile.payments[..blk.len()] {
                            total += p;
                        }
                    }
                    total
                }
            },
            0.0f64,
            |a, s| a + s,
        ))
    }

    /// [`MenuIndex::try_expected_revenue`], panicking on an invalid
    /// batch. Prefer the fallible variant anywhere input is not trusted.
    pub fn expected_revenue(&self, users: &[u32]) -> f64 {
        self.try_expected_revenue(users).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`MenuIndex::expected_revenue`] over every consumer of the
    /// compiled market, without materializing the id batch: chunk
    /// boundaries are computed directly over `0..n_users`, reproducing
    /// `expected_revenue(&all_users())` bit for bit (same
    /// [`effective_chunk_size`] boundaries, same ordered fold) with zero
    /// per-call allocation — the daemon's hottest whole-market path.
    pub fn expected_revenue_all(&self) -> f64 {
        let store = &*self.store;
        let n = store.n_users;
        if n == 0 {
            return 0.0;
        }
        let chunk = effective_chunk_size(n, 0);
        let n_chunks = n.div_ceil(chunk);
        let kernel = self.kernel;
        let block = self.block;
        let partials = par_index_map(self.threads, n_chunks, |k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(n);
            match kernel {
                KernelKind::Rows => {
                    let mut scratch = ServeScratch::new(store);
                    let mut total = 0.0;
                    for u in lo..hi {
                        total += eval_user(store, &mut scratch, u as u32, false).0;
                    }
                    total
                }
                KernelKind::Tiled => {
                    let ids: Vec<u32> = (lo as u32..hi as u32).collect();
                    let mut tile = TileScratch::new(store, block);
                    let mut total = 0.0;
                    for blk in ids.chunks(tile.block()) {
                        tile.eval_block(store, blk, false);
                        for &p in &tile.payments[..blk.len()] {
                            total += p;
                        }
                    }
                    total
                }
            }
        });
        partials.into_iter().fold(0.0f64, |a, s| a + s)
    }

    /// [`MenuIndex::assign`] over every consumer of the compiled market,
    /// without materializing the id batch (same boundary/fold identity as
    /// [`MenuIndex::expected_revenue_all`]).
    pub fn assign_all(&self) -> Vec<Assignment> {
        let store = &*self.store;
        let n = store.n_users;
        if n == 0 {
            return Vec::new();
        }
        let chunk = effective_chunk_size(n, 0);
        let n_chunks = n.div_ceil(chunk);
        let kernel = self.kernel;
        let block = self.block;
        let parts: Vec<Vec<Assignment>> = par_index_map(self.threads, n_chunks, |k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(n);
            match kernel {
                KernelKind::Rows => {
                    let mut scratch = ServeScratch::new(store);
                    (lo..hi)
                        .map(|u| {
                            let (payment, offers) = eval_user(store, &mut scratch, u as u32, true);
                            Assignment { user: u as u32, payment, offers }
                        })
                        .collect()
                }
                KernelKind::Tiled => {
                    let ids: Vec<u32> = (lo as u32..hi as u32).collect();
                    let mut tile = TileScratch::new(store, block);
                    let mut out = Vec::with_capacity(hi - lo);
                    for blk in ids.chunks(tile.block()) {
                        tile.eval_block(store, blk, true);
                        for (lane, &u) in blk.iter().enumerate() {
                            out.push(Assignment {
                                user: u,
                                payment: tile.payments[lane],
                                offers: tile.take_offers(store, lane),
                            });
                        }
                    }
                    out
                }
            }
        });
        parts.into_iter().flatten().collect()
    }

    /// Marginal revenue of moving offer node `offer`'s price by `dprice`,
    /// over the queried users: one tile scatter per user block, two walks
    /// (compiled and perturbed price tables). `base` is bit-identical to
    /// [`MenuIndex::try_expected_revenue`] on the same batch, `perturbed`
    /// to recompiling the menu with the single price changed and querying
    /// that — so `delta` is an *exact* finite difference, not an estimate.
    /// Always evaluated by the tile kernel (the perturbation reuses its
    /// retained surplus state); the kernel knob only affects which kernel
    /// answers the ordinary query paths, whose bits agree anyway.
    pub fn try_marginal_revenue(
        &self,
        offer: u32,
        dprice: f64,
        users: &[u32],
    ) -> Result<MarginalRevenue, QueryError> {
        self.validate_users(users)?;
        let store = &*self.store;
        let perturbed = self.perturbed_prices(offer, dprice)?;
        let block = self.block;
        let (base, perturbed) = par_chunks_map_reduce(
            self.threads,
            users,
            0,
            |chunk| {
                let mut tile = TileScratch::new(store, block);
                marginal_chunk(store, &mut tile, &perturbed, chunk)
            },
            (0.0f64, 0.0f64),
            |a, s| (a.0 + s.0, a.1 + s.1),
        );
        Ok(MarginalRevenue { base, perturbed, delta: perturbed - base })
    }

    /// [`MenuIndex::try_marginal_revenue`] over every consumer of the
    /// compiled market, without materializing the id batch (same §6 chunk
    /// boundaries and ordered fold as
    /// [`MenuIndex::expected_revenue_all`], so `base` matches its bits).
    pub fn try_marginal_revenue_all(
        &self,
        offer: u32,
        dprice: f64,
    ) -> Result<MarginalRevenue, QueryError> {
        let store = &*self.store;
        let perturbed = self.perturbed_prices(offer, dprice)?;
        let n = store.n_users;
        if n == 0 {
            return Ok(MarginalRevenue { base: 0.0, perturbed: 0.0, delta: 0.0 });
        }
        let chunk = effective_chunk_size(n, 0);
        let n_chunks = n.div_ceil(chunk);
        let block = self.block;
        let partials = par_index_map(self.threads, n_chunks, |k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(n);
            let ids: Vec<u32> = (lo as u32..hi as u32).collect();
            let mut tile = TileScratch::new(store, block);
            marginal_chunk(store, &mut tile, &perturbed, &ids)
        });
        let (base, perturbed) =
            partials.into_iter().fold((0.0f64, 0.0f64), |a, s| (a.0 + s.0, a.1 + s.1));
        Ok(MarginalRevenue { base, perturbed, delta: perturbed - base })
    }

    /// The perturbed price table of a marginal-revenue query, or the
    /// typed error when the offer id or resulting price is out of domain.
    fn perturbed_prices(&self, offer: u32, dprice: f64) -> Result<Vec<f64>, QueryError> {
        let shape = &self.store.shape;
        let n_nodes = shape.prices.len();
        if offer as usize >= n_nodes {
            return Err(QueryError::OfferOutOfRange { offer, n_nodes });
        }
        let moved = shape.prices[offer as usize] + dprice;
        if !(moved.is_finite() && moved >= 0.0) {
            return Err(QueryError::PerturbedPriceInvalid);
        }
        let mut prices = shape.prices.clone();
        prices[offer as usize] = moved;
        Ok(prices)
    }
}

/// One §6 chunk of a marginal-revenue query: per block, scatter once and
/// walk twice. Both totals fold left to right in user order — the base
/// fold is operation-for-operation the [`MenuIndex::try_expected_revenue`]
/// fold, the perturbed fold the same thing at the perturbed price table.
fn marginal_chunk(
    store: &MenuStore,
    tile: &mut TileScratch,
    perturbed: &[f64],
    users: &[u32],
) -> (f64, f64) {
    let mut base_total = 0.0f64;
    let mut pert_total = 0.0f64;
    for blk in users.chunks(tile.block()) {
        tile.scatter_block(store, blk);
        tile.walk_block(store, &store.shape.prices, blk.len(), false, false);
        for &p in &tile.payments[..blk.len()] {
            base_total += p;
        }
        tile.walk_block(store, perturbed, blk.len(), false, true);
        for &p in &tile.payments[..blk.len()] {
            pert_total += p;
        }
    }
    (base_total, pert_total)
}

/// The exact reduction [`MenuIndex::expected_revenue`] applies to the
/// per-user payments of a batch: fixed [`effective_chunk_size`] blocks,
/// each summed left to right from `+0.0`, block partials folded left to
/// right from `+0.0`. Given `payments = try_payments(users)?`, this
/// returns `try_expected_revenue(users)?` to the bit — which is what lets
/// the daemon answer several coalesced revenue requests from one shared
/// evaluation pass without perturbing any request's result.
pub fn chunked_payment_fold(payments: &[f64]) -> f64 {
    if payments.is_empty() {
        return 0.0;
    }
    let chunk = effective_chunk_size(payments.len(), 0);
    payments
        .chunks(chunk)
        .map(|c| {
            let mut total = 0.0f64;
            for &p in c {
                total += p;
            }
            total
        })
        .fold(0.0f64, |a, s| a + s)
}

/// Evaluate one consumer against the menu. Returns their expected payment
/// and (when `collect` is set) the threshold-held offer node ids. The
/// arithmetic mirrors the solver evaluation operation for operation — see
/// the module docs for why that yields bit-identical results.
fn eval_user(
    store: &MenuStore,
    scratch: &mut ServeScratch,
    user: u32,
    collect: bool,
) -> (f64, Vec<u32>) {
    // Public entry points validate the batch up front (`validate_users`),
    // so the hot loop carries no per-user bounds branch in release builds.
    debug_assert!(
        (user as usize) < store.n_users,
        "user {user} out of range for a {}-consumer market",
        store.n_users
    );
    // Scatter the user's WTP row through the item→offer postings: each
    // touched node's bundle sum accumulates in ascending item order,
    // matching the solver's column scatter exactly.
    let row = store.wtp.row(user);
    for (i, w) in row.iter() {
        let (lo, hi) =
            (store.shape.post_indptr[i as usize], store.shape.post_indptr[i as usize + 1]);
        for &n in &store.shape.post_nodes[lo..hi] {
            let slot = &mut scratch.acc[n as usize];
            if *slot == 0.0 {
                scratch.touched.push(n);
            }
            *slot += w;
        }
    }

    let adoption = &store.adoption;
    let params = &store.params;
    let node_size =
        |n: u32| store.shape.node_indptr[n as usize + 1] - store.shape.node_indptr[n as usize];
    let mut payment = 0.0f64;
    let mut offers: Vec<u32> = Vec::new();
    match store.shape.strategy {
        Strategy::Pure => {
            // Independent take-it-or-leave-it offers. The zero-sum skip
            // is bit-safe because the solver never sees zero-sum users
            // either: `bundle_user_sums` excludes them from an offer's
            // consumer list outright (crucial under a soft sigmoid, where
            // an *included* zero-WTP consumer would contribute a positive
            // probability, not 0.0), and a single-user view of an
            // uninterested consumer yields `price * 0.0 = +0.0`, which
            // `x + 0.0 = x` makes equivalent to skipping.
            for &root in &store.shape.roots {
                let s = scratch.acc[root as usize];
                if s == 0.0 {
                    continue;
                }
                let price = store.shape.prices[root as usize];
                let w = params.set_wtp(s, node_size(root));
                payment += price * adoption.probability(w, price);
                if collect && adoption.margin(w, price) >= 0.0 {
                    offers.push(root);
                }
            }
        }
        Strategy::Mixed => {
            // Bottom-up incremental-upgrade walk of each interested tree.
            // Post-order layout: one forward scan per subtree range, the
            // stack holding each node's (holdings, held-offer) state.
            for &root in &store.shape.roots {
                if scratch.acc[root as usize] == 0.0 {
                    continue; // no WTP on any item of this tree
                }
                debug_assert!(scratch.stack.is_empty());
                for n in store.shape.subtree_start[root as usize]..=root {
                    let k = store.shape.n_children[n as usize] as usize;
                    let price = store.shape.prices[n as usize];
                    let size = node_size(n);
                    let state = if k == 0 {
                        let s = scratch.acc[n as usize];
                        if s == 0.0 {
                            (None, Vec::new())
                        } else {
                            let w = params.set_wtp(s, size);
                            if adoption.margin(w, price) >= 0.0 {
                                let held = Hold { sum: s, paid: price, count: size as u32 };
                                (Some(held), if collect { vec![n] } else { Vec::new() })
                            } else {
                                (None, Vec::new())
                            }
                        }
                    } else {
                        // Combine the children's holdings in child order —
                        // the solver's left-to-right merge_states fold.
                        let base = scratch.stack.len() - k;
                        let mut combined = Hold { sum: 0.0, paid: 0.0, count: 0 };
                        let mut any = false;
                        let mut held_offers: Vec<u32> = Vec::new();
                        for (h, v) in scratch.stack.drain(base..) {
                            if let Some(h) = h {
                                combined.sum += h.sum;
                                combined.paid += h.paid;
                                combined.count += h.count;
                                any = true;
                                if collect {
                                    held_offers.extend(v);
                                }
                            }
                        }
                        let s_b = scratch.acc[n as usize];
                        if s_b == 0.0 {
                            (None, Vec::new())
                        } else {
                            let (s_held, q, c_held) = if any {
                                (combined.sum, combined.paid, combined.count as usize)
                            } else {
                                (0.0, 0.0, 0)
                            };
                            let addon_count = size.saturating_sub(c_held);
                            let addon_wtp =
                                params.set_wtp((s_b - s_held).max(0.0), addon_count.max(1));
                            let margin =
                                adoption.alpha * addon_wtp - (price - q) + adoption.epsilon;
                            if margin >= 0.0 {
                                let held = Hold { sum: s_b, paid: price, count: size as u32 };
                                (Some(held), if collect { vec![n] } else { Vec::new() })
                            } else if any {
                                (Some(combined), held_offers)
                            } else {
                                (None, Vec::new())
                            }
                        }
                    };
                    scratch.stack.push(state);
                }
                let (state, held_offers) = scratch.stack.pop().expect("root state");
                if let Some(h) = state {
                    payment += h.paid;
                    if collect {
                        offers.extend(held_offers);
                    }
                }
            }
        }
    }

    // Reset the accumulator for the next user.
    for &n in &scratch.touched {
        scratch.acc[n as usize] = 0.0;
    }
    scratch.touched.clear();
    (payment, offers)
}

/// Solver-side single-consumer reference evaluation: the menu's expected
/// revenue restricted to one user, computed **entirely by core**
/// ([`revmax_core::config::BundleConfig::expected_revenue`] on a
/// single-user [`Market::view`]). The parity suites compare serve results
/// against this bit for bit; it is exported so benches and acceptance
/// tests can reuse the same oracle.
pub fn solver_user_revenue(
    market: &Market,
    config: &revmax_core::config::BundleConfig,
    user: u32,
) -> f64 {
    let view = market.view(None, Some(&[user]));
    config.expected_revenue(&view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::bundle::Bundle;
    use revmax_core::config::{BundleConfig, OfferNode};
    use revmax_core::params::Params;
    use revmax_core::wtp::WtpMatrix;

    fn table1() -> Market {
        let w = WtpMatrix::from_rows(vec![vec![12.0, 4.0], vec![8.0, 2.0], vec![5.0, 11.0]]);
        Market::new(w, Params::default().with_theta(-0.05))
    }

    fn components() -> BundleConfig {
        BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![
                OfferNode::leaf(Bundle::single(0), 8.0),
                OfferNode::leaf(Bundle::single(1), 11.0),
            ],
        }
    }

    fn mixed_tree() -> BundleConfig {
        // Table 1's §4.2 mixed menu: components at $8/$11, bundle at $12.
        BundleConfig {
            strategy: Strategy::Mixed,
            roots: vec![OfferNode {
                bundle: Bundle::new(vec![0, 1]),
                price: 12.0,
                children: vec![
                    OfferNode::leaf(Bundle::single(0), 8.0),
                    OfferNode::leaf(Bundle::single(1), 11.0),
                ],
            }],
        }
    }

    #[test]
    fn pure_assignments_match_table1() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &components());
        let assignments = idx.assign(&idx.all_users());
        // u1 and u2 buy A at $8; u3 buys B at $11 (Table 1, Components).
        assert_eq!(assignments.len(), 3);
        assert_eq!(assignments[0].offers, vec![0]);
        assert!((assignments[0].payment - 8.0).abs() < 1e-12);
        assert_eq!(assignments[1].offers, vec![0]);
        assert!((assignments[1].payment - 8.0).abs() < 1e-12);
        assert_eq!(assignments[2].offers, vec![1]);
        assert!((assignments[2].payment - 11.0).abs() < 1e-12);
        assert!((idx.expected_revenue_all() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_assignments_follow_the_upgrade_policy() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &mixed_tree());
        let a = idx.assign(&idx.all_users());
        // u1: holds A ($8), add-on B worth 4 ≥ implicit price 4 → upgrades
        // to the $12 bundle. u2: holds A, add-on worth 2 < 4 → stays at $8.
        // u3: holds B ($11), add-on A worth 5 ≥ implicit price 1 → upgrades.
        assert_eq!(a[0].offers, vec![2]);
        assert!((a[0].payment - 12.0).abs() < 1e-12);
        assert_eq!(a[1].offers, vec![0]);
        assert!((a[1].payment - 8.0).abs() < 1e-12);
        assert_eq!(a[2].offers, vec![2]);
        assert!((a[2].payment - 12.0).abs() < 1e-12);
        // Σ = 32, the §4.2 mixed revenue of Table 1.
        assert!((idx.expected_revenue_all() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn per_user_payments_equal_solver_side_evaluation_bitwise() {
        let m = table1();
        for config in [components(), mixed_tree()] {
            let idx = MenuIndex::compile(&m, &config);
            for u in 0..3u32 {
                let serve = idx.assign(&[u])[0].payment;
                let solver = solver_user_revenue(&m, &config, u);
                assert_eq!(serve.to_bits(), solver.to_bits(), "user {u}");
            }
            // Whole-batch total matches the solver's whole-market menu
            // evaluation (reassociation-tolerant comparison).
            let total = idx.expected_revenue_all();
            assert!((total - config.expected_revenue(&m)).abs() < 1e-9);
        }
    }

    #[test]
    fn batched_revenue_is_bit_identical_at_any_thread_count() {
        let m = table1();
        let idx = MenuIndex::compile(&m, &mixed_tree());
        let users = idx.all_users();
        let base = idx.clone().with_threads(1).expected_revenue(&users);
        for threads in [2, 3, 8] {
            let t = idx.clone().with_threads(threads);
            assert_eq!(t.expected_revenue(&users).to_bits(), base.to_bits(), "threads={threads}");
            assert_eq!(t.assign(&users), idx.clone().with_threads(1).assign(&users));
        }
    }

    #[test]
    fn uninterested_and_repeated_users_are_fine() {
        let w = WtpMatrix::from_triples(4, 2, vec![(0, 0, 9.0), (2, 1, 6.0)], None);
        let m = Market::new(w, Params::default());
        let idx = MenuIndex::compile(&m, &components());
        // Users 1 and 3 rated nothing: zero payment, no offers.
        let a = idx.assign(&[1, 3]);
        assert!(a.iter().all(|x| x.payment == 0.0 && x.offers.is_empty()));
        // Batches may repeat users; each occurrence is evaluated afresh.
        let r = idx.expected_revenue(&[0, 0, 2]);
        let one = idx.expected_revenue(&[0]);
        assert!((r - (2.0 * one + idx.expected_revenue(&[2]))).abs() < 1e-9);
        assert_eq!(idx.expected_revenue(&[]), 0.0);
        assert!(idx.assign(&[]).is_empty());
    }

    #[test]
    fn sigmoid_pure_payments_are_expectations() {
        let w = WtpMatrix::from_rows(vec![vec![10.0, 0.0], vec![0.0, 10.0]]);
        let m = Market::new(w, Params::default().with_gamma(1.0));
        let config = BundleConfig {
            strategy: Strategy::Pure,
            roots: vec![
                OfferNode::leaf(Bundle::single(0), 10.0),
                OfferNode::leaf(Bundle::single(1), 5.0),
            ],
        };
        let idx = MenuIndex::compile(&m, &config);
        let a = idx.assign(&idx.all_users());
        // u0 at p = w = 10: P ≈ 0.5 (ε nudges it just above) → expected
        // payment ≈ 5; still a modal adopter.
        assert!((a[0].payment - 5.0).abs() < 0.01);
        assert_eq!(a[0].offers, vec![0]);
        // u1 at p 5 < w 10: P ≈ 0.993 → expected payment ≈ 4.97.
        assert!(a[1].payment < 5.0 && a[1].payment > 4.9);
        for u in 0..2u32 {
            let solver = solver_user_revenue(&m, &config, u);
            assert_eq!(idx.assign(&[u])[0].payment.to_bits(), solver.to_bits());
        }
    }

    #[test]
    fn deep_tree_evaluates_bottom_up() {
        // The ((A,B),C) case-study shape from core's config tests.
        let w = WtpMatrix::from_rows(vec![vec![10.0, 10.0, 2.0], vec![1.0, 1.0, 9.0]]);
        let m = Market::new(w, Params::default());
        let tree = OfferNode {
            bundle: Bundle::new(vec![0, 1, 2]),
            price: 11.0,
            children: vec![
                OfferNode {
                    bundle: Bundle::new(vec![0, 1]),
                    price: 10.0,
                    children: vec![
                        OfferNode::leaf(Bundle::single(0), 8.0),
                        OfferNode::leaf(Bundle::single(1), 8.0),
                    ],
                },
                OfferNode::leaf(Bundle::single(2), 7.0),
            ],
        };
        let config = BundleConfig { strategy: Strategy::Mixed, roots: vec![tree] };
        let idx = MenuIndex::compile(&m, &config);
        let a = idx.assign(&idx.all_users());
        // u0 consolidates {A,B} then upgrades to the triple at $11;
        // u1 stays on C at $7 (see config.rs::three_level_mixed_tree...).
        assert!((a[0].payment - 11.0).abs() < 1e-9);
        assert_eq!(a[0].offers, vec![idx.roots()[0]]);
        assert!((a[1].payment - 7.0).abs() < 1e-9);
        assert_eq!(a[1].offers.len(), 1);
        assert_eq!(idx.items(a[1].offers[0]), &[2]);
        assert!((idx.expected_revenue_all() - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "user 9 out of range")]
    fn out_of_range_user_is_rejected() {
        let idx = MenuIndex::compile(&table1(), &components());
        idx.expected_revenue(&[9]);
    }

    #[test]
    fn out_of_range_user_is_a_typed_error_not_a_panic() {
        let idx = MenuIndex::compile(&table1(), &components());
        // The daemon's edge: a malformed batch must come back as a value.
        let err = idx.try_assign(&[0, 2, 9, 11]).unwrap_err();
        assert_eq!(err, QueryError::UserOutOfRange { user: 9, n_users: 3 });
        assert_eq!(err.to_string(), "user 9 out of range for a 3-consumer market");
        assert_eq!(
            idx.try_expected_revenue(&[3]),
            Err(QueryError::UserOutOfRange { user: 3, n_users: 3 })
        );
        assert_eq!(
            idx.try_payments(&[u32::MAX]).unwrap_err(),
            QueryError::UserOutOfRange { user: u32::MAX, n_users: 3 }
        );
        // Valid batches (including empty) still pass.
        assert!(idx.validate_users(&[]).is_ok());
        assert!(idx.validate_users(&[2, 0, 1]).is_ok());
        assert_eq!(idx.try_expected_revenue(&[0]).unwrap(), idx.expected_revenue(&[0]));
    }

    #[test]
    fn whole_market_paths_skip_the_id_batch_but_keep_the_bits() {
        let m = table1();
        for config in [components(), mixed_tree()] {
            let idx = MenuIndex::compile(&m, &config);
            let users = idx.all_users();
            assert_eq!(
                idx.expected_revenue_all().to_bits(),
                idx.expected_revenue(&users).to_bits()
            );
            assert_eq!(idx.assign_all(), idx.assign(&users));
        }
        // Degenerate: a zero-consumer market serves zero revenue.
        let empty = Market::new(
            revmax_core::wtp::WtpMatrix::from_triples(0, 2, vec![], None),
            Params::default(),
        );
        let idx = MenuIndex::compile(&empty, &components());
        assert_eq!(idx.expected_revenue_all(), 0.0);
        assert!(idx.assign_all().is_empty());
    }

    #[test]
    fn payment_fold_reproduces_expected_revenue_bitwise() {
        let w = WtpMatrix::from_rows(
            (0..257).map(|k| vec![(k % 13) as f64 + 0.25, (k % 7) as f64 * 0.5]).collect(),
        );
        let m = Market::new(w, Params::default().with_gamma(1.5));
        let idx = MenuIndex::compile(&m, &mixed_tree());
        let users = idx.all_users();
        let payments = idx.try_payments(&users).unwrap();
        assert_eq!(payments.len(), users.len());
        assert_eq!(
            chunked_payment_fold(&payments).to_bits(),
            idx.expected_revenue(&users).to_bits()
        );
        // Sub-batch identity — the coalescing rule: any request's revenue
        // folds from the shared per-user payments of the combined batch.
        let sub = &users[19..193];
        let sub_payments = &payments[19..193];
        assert_eq!(
            chunked_payment_fold(sub_payments).to_bits(),
            idx.expected_revenue(sub).to_bits()
        );
        assert_eq!(chunked_payment_fold(&[]), 0.0);
    }
}
