//! The `revmax-served` wire protocol: length-prefixed binary frames over
//! TCP (`DESIGN.md` §11).
//!
//! Zero-dep by design (hand-rolled little-endian encoding on `std` only,
//! matching the workspace's `vendor/` philosophy). Every frame is
//!
//! ```text
//! [u32 LE payload length][payload]
//! payload = [u8 opcode][body…]
//! ```
//!
//! Requests carry opcodes `0x01..=0x06`, responses `0x81..=0x87`. The
//! decoders are **total**: truncated, oversized, or garbage payloads come
//! back as a typed [`ProtoError`] — never a panic and never an
//! attacker-controlled allocation (element counts are validated against
//! the bytes actually present before any `Vec` is sized). The daemon
//! turns decode failures into [`Response::Error`] frames; a malformed
//! client cannot take the process down.
//!
//! Floating-point values travel as IEEE-754 bit patterns
//! ([`f64::to_bits`], little-endian), so a served revenue crosses the
//! wire bit-exactly — the end-to-end parity suites compare
//! `to_bits()` equality straight through a socket.

use crate::query::{Assignment, MarginalRevenue};
use revmax_core::marketlog::Event;
use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (16 MiB — comfortably above a
/// 4M-user id batch, far below anything that could exhaust the host).
pub const MAX_FRAME: usize = 16 << 20;

// Wire opcodes. Requests live below 0x80, responses at or above it, and
// every `REQ_<NAME>` has its `RESP_<NAME>` counterpart (`RESP_ERROR` is
// the unpaired extra: any request can fail). The audit's `opcode-totality`
// rule parses these tables and fails the build if a new opcode ships
// half-wired — missing from a codec arm, unpaired, or on the wrong side
// of 0x80. The decode test-vectors below intentionally keep raw bytes, so
// the on-wire values stay pinned independently of these names.
pub const REQ_ASSIGN: u8 = 0x01;
pub const REQ_REVENUE: u8 = 0x02;
pub const REQ_MUTATE: u8 = 0x03;
pub const REQ_STATS: u8 = 0x04;
pub const REQ_SHUTDOWN: u8 = 0x05;
pub const REQ_MARGINAL: u8 = 0x06;
pub const RESP_ASSIGN: u8 = 0x81;
pub const RESP_REVENUE: u8 = 0x82;
pub const RESP_MUTATE: u8 = 0x83;
pub const RESP_STATS: u8 = 0x84;
pub const RESP_ERROR: u8 = 0x85;
pub const RESP_SHUTDOWN: u8 = 0x86;
pub const RESP_MARGINAL: u8 = 0x87;

/// A frame that failed to decode. Carries a human-readable reason; the
/// daemon echoes it inside a [`Response::Error`] with
/// [`ErrorCode::Malformed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// Which consumers a query addresses: an explicit id batch, or every
/// consumer of the currently-served market (`All` keeps million-user
/// whole-market queries off the wire — and lets the daemon use the
/// allocation-free `*_all` paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserSel {
    /// Every consumer of the currently-served index.
    All,
    /// An explicit batch of user ids (any order, repeats allowed).
    Ids(Vec<u32>),
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Per-user menu assignments ([`crate::MenuIndex::try_assign`]).
    Assign(UserSel),
    /// Expected revenue over the selection
    /// ([`crate::MenuIndex::try_expected_revenue`]).
    ExpectedRevenue(UserSel),
    /// Marginal revenue of nudging one offer's price by `dprice` over the
    /// selection ([`crate::MenuIndex::try_marginal_revenue`]) — the
    /// repricing what-if, answered from the already-scattered tiles
    /// without recompiling the menu.
    MarginalRevenue { offer: u32, dprice: f64, sel: UserSel },
    /// Append churn events to the daemon's `MarketLog`; applied off the
    /// request path by the churn thread, which re-solves incrementally
    /// and hot-swaps the served index.
    MutateMarket(Vec<Event>),
    /// Snapshot the daemon's counters, generation, and latency quantiles.
    SwapStats,
    /// Drain and stop the daemon. Acknowledged with [`Response::Bye`].
    Shutdown,
}

/// Machine-readable reason on a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode; the connection stays up.
    Malformed = 1,
    /// The query was well-formed but invalid (e.g. user id out of range).
    Query = 2,
    /// A mutation event was rejected by the `MarketLog`.
    Mutation = 3,
    /// Admission control shed the request (queue full). Retry later;
    /// nothing was executed.
    Overloaded = 4,
    /// The daemon is shutting down.
    ShuttingDown = 5,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Result<ErrorCode, ProtoError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Query,
            3 => ErrorCode::Mutation,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::ShuttingDown,
            other => return err(format!("unknown error code {other}")),
        })
    }
}

/// One snapshot of the daemon's counters (the [`Response::Stats`] body,
/// 17 `u64`s on the wire, field order below).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Swap generation of the served index (0 = initial solve).
    pub generation: u64,
    /// Consumers of the currently-served index.
    pub n_users: u64,
    /// Items of the currently-served index.
    pub n_items: u64,
    /// Assign requests answered (not counting shed ones).
    pub served_assign: u64,
    /// Expected-revenue requests answered.
    pub served_revenue: u64,
    /// Marginal-revenue requests answered.
    pub served_marginal: u64,
    /// Requests that rode along in another request's coalesced batch.
    pub coalesced: u64,
    /// Requests refused by admission control (bounded queue full).
    pub shed: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Churn events applied to the `MarketLog`.
    pub mutations_applied: u64,
    /// Churn events rejected by the `MarketLog`.
    pub mutations_rejected: u64,
    /// Retained-cache hits across the churn thread's incremental resolves.
    pub resolve_hits: u64,
    /// Retained-cache misses (cells actually re-solved).
    pub resolve_misses: u64,
    /// Server-side p50 latency of assign requests, ns (queue + execute).
    pub assign_p50_ns: u64,
    /// Server-side p99 latency of assign requests, ns.
    pub assign_p99_ns: u64,
    /// Server-side p50 latency of expected-revenue requests, ns.
    pub revenue_p50_ns: u64,
    /// Server-side p99 latency of expected-revenue requests, ns.
    pub revenue_p99_ns: u64,
}

impl DaemonStats {
    fn fields(&self) -> [u64; 17] {
        [
            self.generation,
            self.n_users,
            self.n_items,
            self.served_assign,
            self.served_revenue,
            self.served_marginal,
            self.coalesced,
            self.shed,
            self.malformed,
            self.mutations_applied,
            self.mutations_rejected,
            self.resolve_hits,
            self.resolve_misses,
            self.assign_p50_ns,
            self.assign_p99_ns,
            self.revenue_p50_ns,
            self.revenue_p99_ns,
        ]
    }

    fn from_fields(f: [u64; 17]) -> DaemonStats {
        DaemonStats {
            generation: f[0],
            n_users: f[1],
            n_items: f[2],
            served_assign: f[3],
            served_revenue: f[4],
            served_marginal: f[5],
            coalesced: f[6],
            shed: f[7],
            malformed: f[8],
            mutations_applied: f[9],
            mutations_rejected: f[10],
            resolve_hits: f[11],
            resolve_misses: f[12],
            assign_p50_ns: f[13],
            assign_p99_ns: f[14],
            revenue_p50_ns: f[15],
            revenue_p99_ns: f[16],
        }
    }
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Assign`].
    Assignments(Vec<Assignment>),
    /// Answer to [`Request::ExpectedRevenue`] (bit-exact f64).
    Revenue(f64),
    /// Answer to [`Request::MarginalRevenue`] (all three f64s bit-exact).
    Marginal(MarginalRevenue),
    /// Mutation batch accepted for off-request-path application.
    /// `generation` is the served generation at enqueue time — poll
    /// [`Request::SwapStats`] until it moves past this to observe the
    /// resulting hot swap.
    MutateAck { accepted: u64, generation: u64 },
    /// Answer to [`Request::SwapStats`].
    Stats(DaemonStats),
    /// The request was refused or failed; nothing (for queries) was
    /// executed. The connection stays usable.
    Error { code: ErrorCode, message: String },
    /// Shutdown acknowledged; the daemon is draining.
    Bye,
}

// ---------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------

/// Write one `[u32 LE length][payload]` frame.
///
/// Prefix and payload go out in a **single** write: two small writes per
/// frame make Nagle's algorithm and delayed ACKs conspire into ~40 ms
/// stalls per request on loopback, which is the difference between a
/// µs-scale and a ms-scale daemon.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", payload.len()),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame boundary
/// (the peer hung up); `ErrorKind::InvalidData` when the announced length
/// exceeds `max_frame` (the connection is unrecoverable after that — the
/// stream offset is unknown); `UnexpectedEof` on a truncated frame.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame length {len} exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn ids(&mut self, ids: &[u32]) {
        self.u32(ids.len() as u32);
        for &id in ids {
            self.u32(id);
        }
    }
    fn user_sel(&mut self, sel: &UserSel) {
        match sel {
            UserSel::All => self.u8(1),
            UserSel::Ids(ids) => {
                self.u8(0);
                self.ids(ids);
            }
        }
    }
}

/// Cursor over a payload with bounds-checked reads — the decoding side
/// never indexes past the buffer, whatever the bytes claim.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return err(format!("truncated: wanted {n} bytes, {} left", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// An element count that claims at least `min_bytes` per element:
    /// rejected unless the bytes are actually present, so garbage counts
    /// can never size an allocation.
    fn count(&mut self, min_bytes: usize, what: &str) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.remaining() {
            return err(format!(
                "{what} count {n} needs {} bytes but only {} remain",
                n * min_bytes,
                self.remaining()
            ));
        }
        Ok(n)
    }
    fn ids(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.count(4, "user id")?;
        (0..n).map(|_| self.u32()).collect()
    }
    fn user_sel(&mut self) -> Result<UserSel, ProtoError> {
        match self.u8()? {
            1 => Ok(UserSel::All),
            0 => Ok(UserSel::Ids(self.ids()?)),
            other => err(format!("bad user selector tag {other}")),
        }
    }
    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return err(format!("{} trailing bytes after the message", self.remaining()));
        }
        Ok(())
    }
}

fn encode_event(e: &mut Enc, ev: &Event) {
    match *ev {
        Event::UpsertWtp { user, item, wtp } => {
            e.u8(0);
            e.u32(user);
            e.u32(item);
            e.f64(wtp);
        }
        Event::DeleteWtp { user, item } => {
            e.u8(1);
            e.u32(user);
            e.u32(item);
        }
        Event::AddUser => e.u8(2),
        Event::AddItem { listed_price } => {
            e.u8(3);
            match listed_price {
                Some(p) => {
                    e.u8(1);
                    e.f64(p);
                }
                None => e.u8(0),
            }
        }
        Event::RetireUser { user } => {
            e.u8(4);
            e.u32(user);
        }
        Event::RetireItem { item } => {
            e.u8(5);
            e.u32(item);
        }
    }
}

fn decode_event(d: &mut Dec<'_>) -> Result<Event, ProtoError> {
    Ok(match d.u8()? {
        0 => Event::UpsertWtp { user: d.u32()?, item: d.u32()?, wtp: d.f64()? },
        1 => Event::DeleteWtp { user: d.u32()?, item: d.u32()? },
        2 => Event::AddUser,
        3 => Event::AddItem {
            listed_price: match d.u8()? {
                1 => Some(d.f64()?),
                0 => None,
                other => return err(format!("bad AddItem price tag {other}")),
            },
        },
        4 => Event::RetireUser { user: d.u32()? },
        5 => Event::RetireItem { item: d.u32()? },
        other => err(format!("unknown event tag {other}"))?,
    })
}

/// Encode a request payload (prefix it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match req {
        Request::Assign(sel) => {
            e.u8(REQ_ASSIGN);
            e.user_sel(sel);
        }
        Request::ExpectedRevenue(sel) => {
            e.u8(REQ_REVENUE);
            e.user_sel(sel);
        }
        Request::MutateMarket(events) => {
            e.u8(REQ_MUTATE);
            e.u32(events.len() as u32);
            for ev in events {
                encode_event(&mut e, ev);
            }
        }
        Request::SwapStats => e.u8(REQ_STATS),
        Request::Shutdown => e.u8(REQ_SHUTDOWN),
        Request::MarginalRevenue { offer, dprice, sel } => {
            e.u8(REQ_MARGINAL);
            e.u32(*offer);
            e.f64(*dprice);
            e.user_sel(sel);
        }
    }
    e.0
}

/// Decode a request payload. Total: any byte sequence yields `Ok` or a
/// [`ProtoError`], never a panic.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut d = Dec::new(payload);
    let req = match d.u8().map_err(|_| ProtoError("empty payload".into()))? {
        REQ_ASSIGN => Request::Assign(d.user_sel()?),
        REQ_REVENUE => Request::ExpectedRevenue(d.user_sel()?),
        REQ_MUTATE => {
            let n = d.count(1, "event")?;
            let events = (0..n).map(|_| decode_event(&mut d)).collect::<Result<Vec<_>, _>>()?;
            Request::MutateMarket(events)
        }
        REQ_STATS => Request::SwapStats,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_MARGINAL => {
            Request::MarginalRevenue { offer: d.u32()?, dprice: d.f64()?, sel: d.user_sel()? }
        }
        other => return err(format!("unknown request opcode {other:#04x}")),
    };
    d.finish()?;
    Ok(req)
}

/// Encode a response payload (prefix it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match resp {
        Response::Assignments(assignments) => {
            e.u8(RESP_ASSIGN);
            e.u32(assignments.len() as u32);
            for a in assignments {
                e.u32(a.user);
                e.f64(a.payment);
                e.ids(&a.offers);
            }
        }
        Response::Revenue(r) => {
            e.u8(RESP_REVENUE);
            e.f64(*r);
        }
        Response::Marginal(m) => {
            e.u8(RESP_MARGINAL);
            e.f64(m.base);
            e.f64(m.perturbed);
            e.f64(m.delta);
        }
        Response::MutateAck { accepted, generation } => {
            e.u8(RESP_MUTATE);
            e.u64(*accepted);
            e.u64(*generation);
        }
        Response::Stats(stats) => {
            e.u8(RESP_STATS);
            for v in stats.fields() {
                e.u64(v);
            }
        }
        Response::Error { code, message } => {
            e.u8(RESP_ERROR);
            e.u16(*code as u16);
            let bytes = message.as_bytes();
            e.u32(bytes.len() as u32);
            e.0.extend_from_slice(bytes);
        }
        Response::Bye => e.u8(RESP_SHUTDOWN),
    }
    e.0
}

/// Decode a response payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8().map_err(|_| ProtoError("empty payload".into()))? {
        RESP_ASSIGN => {
            // Each assignment is ≥ 16 bytes (user + payment + offer count).
            let n = d.count(16, "assignment")?;
            let assignments = (0..n)
                .map(|_| Ok(Assignment { user: d.u32()?, payment: d.f64()?, offers: d.ids()? }))
                .collect::<Result<Vec<_>, ProtoError>>()?;
            Response::Assignments(assignments)
        }
        RESP_REVENUE => Response::Revenue(d.f64()?),
        RESP_MARGINAL => Response::Marginal(MarginalRevenue {
            base: d.f64()?,
            perturbed: d.f64()?,
            delta: d.f64()?,
        }),
        RESP_MUTATE => Response::MutateAck { accepted: d.u64()?, generation: d.u64()? },
        RESP_STATS => {
            let mut f = [0u64; 17];
            for slot in &mut f {
                *slot = d.u64()?;
            }
            Response::Stats(DaemonStats::from_fields(f))
        }
        RESP_ERROR => {
            let code = ErrorCode::from_u16(d.u16()?)?;
            let n = d.count(1, "message byte")?;
            let message = String::from_utf8(d.bytes(n)?.to_vec())
                .map_err(|_| ProtoError("error message is not UTF-8".into()))?;
            Response::Error { code, message }
        }
        RESP_SHUTDOWN => Response::Bye,
        other => return err(format!("unknown response opcode {other:#04x}")),
    };
    d.finish()?;
    Ok(resp)
}

/// One blocking request/response exchange over a stream — the client-side
/// helper `loadgen` and the integration suites use.
pub fn roundtrip(stream: &mut (impl Read + Write), req: &Request) -> io::Result<Response> {
    write_frame(stream, &encode_request(req))?;
    let payload = read_frame(stream, MAX_FRAME)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
    decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Assign(UserSel::All),
            Request::Assign(UserSel::Ids(vec![3, 1, 1, 0, u32::MAX])),
            Request::ExpectedRevenue(UserSel::Ids(Vec::new())),
            Request::ExpectedRevenue(UserSel::All),
            Request::MutateMarket(vec![
                Event::UpsertWtp { user: 7, item: 2, wtp: 12.5 },
                Event::DeleteWtp { user: 0, item: 0 },
                Event::AddUser,
                Event::AddItem { listed_price: Some(3.25) },
                Event::AddItem { listed_price: None },
                Event::RetireUser { user: 9 },
                Event::RetireItem { item: 4 },
            ]),
            Request::SwapStats,
            Request::Shutdown,
            Request::MarginalRevenue { offer: 5, dprice: -0.25, sel: UserSel::All },
            Request::MarginalRevenue { offer: 0, dprice: 0.0, sel: UserSel::Ids(vec![2, 2, 0]) },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Assignments(vec![
                Assignment { user: 0, payment: 12.0, offers: vec![2] },
                Assignment { user: 9, payment: 0.0, offers: Vec::new() },
                Assignment { user: 1, payment: -0.0, offers: vec![0, 1, 5] },
            ]),
            Response::Assignments(Vec::new()),
            Response::Revenue(1234.5678e-3),
            Response::Revenue(f64::NAN),
            Response::Marginal(MarginalRevenue { base: 100.0, perturbed: 99.25, delta: -0.75 }),
            Response::MutateAck { accepted: 42, generation: 7 },
            Response::Stats(DaemonStats {
                generation: 3,
                n_users: 1_000_000,
                served_assign: 17,
                assign_p99_ns: u64::MAX,
                ..DaemonStats::default()
            }),
            Response::Error { code: ErrorCode::Overloaded, message: "queue full".into() },
            Response::Error { code: ErrorCode::Malformed, message: String::new() },
            Response::Bye,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in responses() {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).unwrap();
            // NaN payloads compare by bits, not PartialEq.
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
            if let (Response::Revenue(a), Response::Revenue(b)) = (&back, &resp) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn truncations_are_errors_not_panics() {
        for req in requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "{req:?} cut at {cut}");
            }
        }
        for resp in responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(decode_response(&bytes[..cut]).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for req in requests() {
            let mut bytes = encode_request(&req);
            bytes.push(0);
            assert!(decode_request(&bytes).is_err(), "{req:?}");
        }
    }

    #[test]
    fn hostile_counts_cannot_size_allocations() {
        // Assign with an id count claiming 2^32-1 entries but no bytes.
        let mut bytes = vec![0x01, 0x00];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_request(&bytes).unwrap_err();
        assert!(e.0.contains("count"), "{e}");
        // MutateMarket claiming a billion events backed by one byte.
        let mut bytes = vec![0x03];
        bytes.extend_from_slice(&1_000_000_000u32.to_le_bytes());
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn unknown_opcodes_and_tags_are_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x77]).is_err());
        assert!(decode_response(&[0x01]).is_err()); // request opcode to decode_response
        assert!(decode_request(&[0x01, 9]).is_err()); // bad selector tag
        let mut bad_event = vec![0x03];
        bad_event.extend_from_slice(&1u32.to_le_bytes());
        bad_event.push(99);
        assert!(decode_request(&bad_event).is_err());
        // Error response with a bad code.
        let mut bytes = vec![0x85];
        bytes.extend_from_slice(&999u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn frame_io_round_trips_and_rejects_oversize() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none()); // clean EOF

        // An announced length beyond the cap is InvalidData, not an
        // attempted allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);

        // A truncated frame is UnexpectedEof.
        let mut cut = Vec::new();
        write_frame(&mut cut, b"abcdef").unwrap();
        cut.truncate(7);
        let e = read_frame(&mut &cut[..], MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
        // EOF inside the length prefix itself.
        let e = read_frame(&mut &cut[..2], MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }
}
