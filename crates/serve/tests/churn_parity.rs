//! End-to-end churn parity (`DESIGN.md` §10, the PR's tentpole guarantee):
//! apply a ~1% churn batch through the `MarketLog`, re-solve incrementally
//! (`LiveEngine` over the delta-overlay snapshot), re-bind/compile the
//! serving index and hot-swap it — and get **bit-identical** serving
//! results to the cold path (compact to a fresh arena, solve everything
//! from scratch, compile a fresh index).

use revmax_core::marketlog::{Event, MarketLog};
use revmax_core::prelude::*;
use revmax_engine::{market_from_data, Cohort, LiveEngine, ScaleSpec};
use revmax_serve::{MenuIndex, ServeHandle};

fn tiny_market() -> Market {
    market_from_data(&ScaleSpec::Tiny.config().generate(2015), 0.05)
}

/// A deterministic ~1% churn batch: bump the first-rated item of every
/// 100th consumer (at least one).
fn churn_batch(market: &Market) -> Vec<Event> {
    let w = market.wtp();
    let n = market.n_users();
    let step = 100.min(n).max(1);
    (0..n)
        .step_by(step)
        .filter_map(|u| {
            let row = w.row(u as u32);
            row.ids.first().map(|&item| Event::UpsertWtp {
                user: u as u32,
                item,
                wtp: row.values[0] * 1.25,
            })
        })
        .collect()
}

#[test]
fn incremental_churn_serves_bit_identical_to_cold_rebuild() {
    let market = tiny_market();
    let methods = &["components", "mixed_greedy"];

    // Warm path: retained engine + live serve handle.
    let mut live = LiveEngine::new(methods, 2).unwrap();
    let initial = live.resolve(&market).unwrap();
    let initial_whole = &initial.cells[0];
    assert_eq!(initial_whole.cohort, Cohort::Whole);
    let handle = ServeHandle::new(MenuIndex::compile(&market, &initial_whole.outcome.config));
    let gen0 = handle.generation();

    // Churn ~1% of consumers through the log; snapshot is a delta overlay
    // over the shared arena (no rebuild).
    let mut log = MarketLog::new(market);
    let batch = churn_batch(log.base());
    assert!(!batch.is_empty());
    log.apply_batch(batch.iter().copied()).unwrap();
    let churned = log.snapshot();
    assert!(churned.wtp().has_delta(), "snapshot must read through the overlay");

    // Incremental re-solve: untouched cohorts must hit the retained cache.
    let inc = live.resolve(&churned).unwrap();
    assert!(inc.stats.hits + inc.stats.misses == inc.cells.len());
    let inc_whole = &inc.cells[0];
    let inc_index = MenuIndex::compile(&churned, &inc_whole.outcome.config);
    handle.swap(inc_index);
    assert_eq!(handle.generation(), gen0 + 1);

    // Cold path: compact to a fresh arena, solve everything from scratch.
    let cold_market = churned.with_wtp(churned.wtp().compact());
    assert!(!cold_market.wtp().has_delta());
    assert_eq!(
        cold_market.fingerprint(),
        churned.fingerprint(),
        "compaction must preserve the content fingerprint"
    );
    let mut cold_engine = LiveEngine::new(methods, 2).unwrap();
    let cold = cold_engine.resolve(&cold_market).unwrap();
    assert_eq!(cold.stats.hits, 0);

    // Engine parity: every cell bit-identical (fingerprints, revenues,
    // diagnostics, full configurations).
    assert_eq!(inc.canonical(), cold.canonical());

    // Serve parity: the swapped index answers every query bit-identically
    // to a cold-compiled index over the compacted market.
    let cold_index = MenuIndex::compile(&cold_market, &cold.cells[0].outcome.config);
    let served = handle.current();
    assert_eq!(
        served.expected_revenue_all().to_bits(),
        cold_index.expected_revenue_all().to_bits()
    );
    let users: Vec<u32> = (0..churned.n_users() as u32).collect();
    let a = served.assign(&users);
    let b = cold_index.assign(&users);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(format!("{x:?}"), format!("{y:?}"));
    }
}

#[test]
fn rebind_shares_the_shape_and_matches_a_fresh_compile() {
    let market = tiny_market();
    let solved = Components::default().run(&market);
    let index = MenuIndex::compile(&market, &solved.config);

    // Churn values only — the menu configuration is re-used, so the serve
    // layer may rebind instead of recompiling.
    let mut log = MarketLog::new(market);
    log.apply_batch(churn_batch(log.base())).unwrap();
    let churned = log.snapshot();

    let rebound = index.rebind(&churned);
    let fresh = MenuIndex::compile(&churned, &solved.config);
    assert_eq!(rebound.expected_revenue_all().to_bits(), fresh.expected_revenue_all().to_bits());
    assert_eq!(rebound.n_items(), fresh.n_items());
    assert_eq!(rebound.n_users(), fresh.n_users());
}

#[test]
#[should_panic(expected = "item universe")]
fn rebind_rejects_a_different_item_universe() {
    let market = tiny_market();
    let solved = Components::default().run(&market);
    let index = MenuIndex::compile(&market, &solved.config);

    let mut log = MarketLog::new(market);
    log.apply(Event::AddItem { listed_price: Some(1.0) }).unwrap();
    index.rebind(&log.snapshot());
}
