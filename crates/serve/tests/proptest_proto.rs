//! Property tests for the wire protocol (`DESIGN.md` §11): every
//! request/response survives an encode → decode → encode round trip
//! **byte-identical** (f64 payloads travel as raw bits, so NaN payments
//! and negative zeros are preserved too), and no input — truncated,
//! bit-flipped, or pure garbage — makes a decoder panic or allocate past
//! the frame it was handed. The daemon's crash-proof-edges guarantee
//! starts here: a connection thread may feed these decoders anything a
//! hostile peer writes.

use proptest::collection::vec;
use proptest::prelude::*;
use revmax_core::marketlog::Event;
use revmax_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DaemonStats, ErrorCode, Request, Response, UserSel, MAX_FRAME,
};
use revmax_serve::{Assignment, MarginalRevenue};
use std::io::Cursor;

/// Raw bit patterns: hits NaNs, infinities, subnormals, -0.0 — the wire
/// must carry all of them unchanged.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn arb_user_sel() -> impl Strategy<Value = UserSel> {
    (0u8..2).prop_flat_map(|tag| {
        vec(0u32..=u32::MAX, 0..20).prop_map(move |ids| {
            if tag == 0 {
                UserSel::All
            } else {
                UserSel::Ids(ids)
            }
        })
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u8..6, 0u32..=u32::MAX, 0u32..=u32::MAX, arb_f64(), 0u8..2).prop_map(
        |(tag, user, item, wtp, opt)| match tag {
            0 => Event::UpsertWtp { user, item, wtp },
            1 => Event::DeleteWtp { user, item },
            2 => Event::AddUser,
            3 => Event::AddItem { listed_price: (opt == 1).then_some(wtp) },
            4 => Event::RetireUser { user },
            _ => Event::RetireItem { item },
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..6, arb_user_sel(), vec(arb_event(), 0..12), 0u32..=u32::MAX, arb_f64()).prop_map(
        |(tag, sel, events, offer, dprice)| match tag {
            0 => Request::Assign(sel),
            1 => Request::ExpectedRevenue(sel),
            2 => Request::MutateMarket(events),
            3 => Request::SwapStats,
            4 => Request::MarginalRevenue { offer, dprice, sel },
            _ => Request::Shutdown,
        },
    )
}

fn arb_assignment() -> impl Strategy<Value = Assignment> {
    (0u32..=u32::MAX, arb_f64(), vec(0u32..=u32::MAX, 0..6))
        .prop_map(|(user, payment, offers)| Assignment { user, payment, offers })
}

fn arb_message() -> impl Strategy<Value = String> {
    // Printable ASCII; the codec length-prefixes raw UTF-8 bytes.
    vec(0x20u8..0x7F, 0..60).prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

fn arb_response() -> impl Strategy<Value = Response> {
    let code = (0u8..5).prop_map(|c| match c {
        0 => ErrorCode::Malformed,
        1 => ErrorCode::Query,
        2 => ErrorCode::Mutation,
        3 => ErrorCode::Overloaded,
        _ => ErrorCode::ShuttingDown,
    });
    (
        0u8..7,
        vec(arb_assignment(), 0..10),
        (arb_f64(), (0u64..=u64::MAX, 0u64..=u64::MAX), (arb_f64(), arb_f64(), arb_f64())),
        vec(0u64..=u64::MAX, 17..=17),
        (code, arb_message()),
    )
        .prop_map(
            |(
                tag,
                assignments,
                (revenue, (accepted, generation), (base, perturbed, delta)),
                stats,
                (code, message),
            )| {
                match tag {
                    0 => Response::Assignments(assignments),
                    1 => Response::Revenue(revenue),
                    2 => Response::MutateAck { accepted, generation },
                    3 => Response::Stats(DaemonStats {
                        generation: stats[0],
                        n_users: stats[1],
                        n_items: stats[2],
                        served_assign: stats[3],
                        served_revenue: stats[4],
                        served_marginal: stats[5],
                        coalesced: stats[6],
                        shed: stats[7],
                        malformed: stats[8],
                        mutations_applied: stats[9],
                        mutations_rejected: stats[10],
                        resolve_hits: stats[11],
                        resolve_misses: stats[12],
                        assign_p50_ns: stats[13],
                        assign_p99_ns: stats[14],
                        revenue_p50_ns: stats[15],
                        revenue_p99_ns: stats[16],
                    }),
                    4 => Response::Error { code, message },
                    5 => Response::Marginal(MarginalRevenue { base, perturbed, delta }),
                    _ => Response::Bye,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode → encode is the identity on bytes (and therefore
    /// decode is lossless, NaN payloads included).
    #[test]
    fn request_roundtrip_is_byte_identical(req in arb_request()) {
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode_request(&back), bytes);
    }

    #[test]
    fn response_roundtrip_is_byte_identical(resp in arb_response()) {
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode_response(&back), bytes);
    }

    /// Every strict prefix of a valid encoding is rejected as an error —
    /// never a panic, never a silent partial decode.
    #[test]
    fn truncated_request_is_an_error_not_a_panic(req in arb_request(), cut in 0usize..1_000_000) {
        let bytes = encode_request(&req);
        if bytes.len() > 1 {
            let cut = cut % (bytes.len() - 1);
            prop_assert!(decode_request(&bytes[..cut]).is_err());
        }
    }

    /// A single flipped byte decodes to *something* or errors — the
    /// decoder must stay total either way.
    #[test]
    fn bitflipped_frames_never_panic(
        req in arb_request(),
        pos in 0usize..1_000_000,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_request(&req);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Pure garbage never panics either decoder — including hostile
    /// length/count fields that would otherwise drive allocations.
    #[test]
    fn garbage_never_panics(bytes in vec(0u8..=255, 0..200)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Frame IO round trip through a buffer; truncating the framed bytes
    /// anywhere yields a clean EOF (`Ok(None)`) only at the zero mark,
    /// an error everywhere inside the frame.
    #[test]
    fn frame_io_roundtrip_and_truncation(payload in vec(0u8..=255, 0..300)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("in-memory write");
        let got = read_frame(&mut Cursor::new(&buf), MAX_FRAME).expect("frame reads back");
        prop_assert_eq!(got, Some(payload));

        for cut in 0..buf.len() {
            match read_frame(&mut Cursor::new(&buf[..cut]), MAX_FRAME) {
                Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
                Err(_) => {}
            }
        }
    }
}
