//! Property tests for the serving layer (`DESIGN.md` §9):
//!
//! 1. For random markets and solver-produced menus (pure and mixed,
//!    step and sigmoid γ), every consumer's served payment is
//!    **bit-identical** to the solver-side menu evaluation of that
//!    consumer (`BundleConfig::expected_revenue` on a single-user
//!    [`revmax_core::market::Market::view`]).
//! 2. Batched `expected_revenue(all_users)` is **bit-identical at 1/2/8
//!    serve threads** and equals the fixed-chunk ordered fold of the
//!    per-user solver-side payments — the §6 contract applied to serving.
//! 3. The batched total agrees with the solver's whole-market menu
//!    evaluation up to summation reassociation (tolerance-checked).

use proptest::prelude::*;
use revmax_core::algorithms::{by_name, registry};
use revmax_core::config::{BundleConfig, OfferNode};
use revmax_core::market::Market;
use revmax_core::params::{Params, Threads};
use revmax_core::wtp::WtpMatrix;
use revmax_par::effective_chunk_size;
use revmax_serve::{solver_user_revenue, KernelKind, MenuIndex};

/// A random dense WTP matrix (entries 0 with ~3/8 probability) plus θ.
fn arb_dense() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..80u32).prop_map(|raw| if raw < 30 { 0.0 } else { raw as f64 * 0.25 })
    }
    let dims = (2usize..8, 1usize..7);
    dims.prop_flat_map(move |(m, n)| {
        (proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m), -20i32..=20)
            .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
    })
}

fn market_of(dense: &[Vec<f64>], theta: f64, gamma: f64) -> Option<Market> {
    if dense.iter().all(|row| row.iter().all(|&w| w == 0.0)) {
        return None; // empty markets have no menu to serve
    }
    let params =
        Params::default().with_theta(theta).with_gamma(gamma).with_threads(Threads::Fixed(1));
    Some(Market::new(WtpMatrix::from_rows(dense.to_vec()), params))
}

/// The configurators exercised per case: a pure and a mixed method so
/// both serving semantics (independent offers, upgrade trees) run.
const METHODS: [&str; 3] = ["Components", "Pure Greedy", "Mixed Greedy"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn served_payments_equal_solver_side_evaluation_bitwise(
        (dense, theta) in arb_dense(),
        sigmoid in 0u8..2,
    ) {
        // Step regime by default; soft sigmoid on half the cases.
        let gamma = if sigmoid == 1 { 1.5 } else { 1e6 };
        let Some(market) = market_of(&dense, theta, gamma) else { return };
        for method in METHODS {
            let outcome = by_name(method).unwrap().run(&market);
            let index = MenuIndex::compile(&market, &outcome.config);
            let users = index.all_users();
            let assignments = index.assign(&users);
            prop_assert_eq!(assignments.len(), users.len());

            // (1) Per-user bitwise parity with the solver-side menu
            // evaluation of that single consumer.
            for a in &assignments {
                let solver = solver_user_revenue(&market, &outcome.config, a.user);
                prop_assert_eq!(
                    a.payment.to_bits(),
                    solver.to_bits(),
                    "{}: user {} served {} vs solver {}",
                    method, a.user, a.payment, solver
                );
            }

            // (2) The batched total is the fixed-chunk ordered fold of the
            // per-user payments, bit-identical at 1/2/8 serve threads.
            let chunk = effective_chunk_size(users.len(), 0);
            let reference: f64 = assignments
                .chunks(chunk)
                .map(|c| c.iter().map(|a| a.payment).sum::<f64>())
                .fold(0.0f64, |acc, s| acc + s);
            for threads in [1usize, 2, 8] {
                let served = index.clone().with_threads(threads).expected_revenue(&users);
                prop_assert_eq!(
                    served.to_bits(),
                    reference.to_bits(),
                    "{} at {} threads: {} vs chunked fold {}",
                    method, threads, served, reference
                );
            }

            // (3) ... and agrees with the solver's whole-market menu
            // evaluation up to summation reassociation.
            let solver_total = outcome.config.expected_revenue(&market);
            let tol = 1e-9 * solver_total.abs().max(1.0);
            prop_assert!(
                (index.expected_revenue(&users) - solver_total).abs() <= tol,
                "{}: served {} vs solver {}",
                method, index.expected_revenue(&users), solver_total
            );
        }
    }

    #[test]
    fn subset_batches_serve_any_user_mix(
        (dense, theta) in arb_dense(),
        mask in 1u32..255,
    ) {
        let Some(market) = market_of(&dense, theta, 1e6) else { return };
        let outcome = by_name("Mixed Greedy").unwrap().run(&market);
        let index = MenuIndex::compile(&market, &outcome.config);
        // An arbitrary (non-contiguous, possibly repeating) batch.
        let mut users: Vec<u32> =
            (0..market.n_users() as u32).filter(|u| mask & (1 << (u % 8)) != 0).collect();
        users.extend(users.clone()); // repeats are legal
        let total = index.expected_revenue(&users);
        for threads in [2usize, 8] {
            let t = index.clone().with_threads(threads);
            prop_assert_eq!(t.expected_revenue(&users).to_bits(), total.to_bits());
        }
        // Assignments line up one-to-one with the queried batch.
        let assignments = index.assign(&users);
        prop_assert_eq!(assignments.len(), users.len());
        for (a, &u) in assignments.iter().zip(&users) {
            prop_assert_eq!(a.user, u);
            prop_assert_eq!(
                a.payment.to_bits(),
                solver_user_revenue(&market, &outcome.config, u).to_bits()
            );
        }
    }

    /// The tile kernel is bit-identical to the row-walk — payments AND
    /// held-offer lists — for every registry configurator (all seven
    /// methods, pure and mixed), at degenerate (1), ragged (3), default
    /// (64), and whole-batch (n) block sizes, at 1/2/8 threads.
    /// `arb_dense` routinely produces all-zero consumer rows, so the
    /// empty/uninterested-lane paths are exercised throughout.
    #[test]
    fn tile_kernel_is_bit_identical_to_row_walk(
        (dense, theta) in arb_dense(),
        sigmoid in 0u8..2,
    ) {
        let gamma = if sigmoid == 1 { 1.5 } else { 1e6 };
        let Some(market) = market_of(&dense, theta, gamma) else { return };
        let n = market.n_users();
        for (method, configurator) in registry() {
            let outcome = configurator.run(&market);
            let index = MenuIndex::compile(&market, &outcome.config);
            let users = index.all_users();
            let rows = index.clone().with_kernel(KernelKind::Rows).assign(&users);
            for block in [1usize, 3, 64, n] {
                let tiled_index =
                    index.clone().with_kernel(KernelKind::Tiled).with_block(block);
                let tiled = tiled_index.assign(&users);
                prop_assert_eq!(tiled.len(), rows.len());
                for (t, r) in tiled.iter().zip(&rows) {
                    prop_assert_eq!(t.user, r.user);
                    prop_assert_eq!(
                        t.payment.to_bits(), r.payment.to_bits(),
                        "{} block {}: user {} tiled {} vs rows {}",
                        method, block, t.user, t.payment, r.payment
                    );
                    prop_assert_eq!(
                        &t.offers, &r.offers,
                        "{} block {}: user {} offer lists diverge", method, block, t.user
                    );
                    // ... and both equal the solver-side bits.
                    prop_assert_eq!(
                        t.payment.to_bits(),
                        solver_user_revenue(&market, &outcome.config, t.user).to_bits()
                    );
                }
                let total = tiled_index.expected_revenue(&users);
                for threads in [2usize, 8] {
                    let t = tiled_index.clone().with_threads(threads);
                    prop_assert_eq!(t.expected_revenue(&users).to_bits(), total.to_bits());
                }
            }
        }
    }

    /// `try_marginal_revenue` against ground truth: its `base` is the
    /// unperturbed batched revenue bit-for-bit, and its `perturbed` total
    /// is bit-identical to serving an index compiled from a config whose
    /// corresponding offer price was actually moved — the walk runs the
    /// same code over the same table either way. Thread count and the
    /// `_all` path change nothing.
    #[test]
    fn marginal_revenue_matches_a_perturbed_recompile(
        (dense, theta) in arb_dense(),
        pick in 0usize..64,
        dp in -40i32..=40,
    ) {
        let Some(market) = market_of(&dense, theta, 1e6) else { return };
        let outcome = by_name("Mixed Greedy").unwrap().run(&market);
        let index = MenuIndex::compile(&market, &outcome.config);
        let users = index.all_users();

        // Perturb the k-th offer (pre-order) of the solved config.
        let n_offers: usize = outcome.config.roots.iter().map(OfferNode::node_count).sum();
        let k = pick % n_offers;
        let mut perturbed_cfg = outcome.config.clone();
        let slot = nth_offer_mut(&mut perturbed_cfg, k).expect("k < n_offers");
        let mut dprice = dp as f64 * 0.05;
        if slot.price + dprice < 0.0 {
            dprice = -slot.price; // clamp to the validity boundary
        }
        slot.price += dprice;
        let perturbed_index = MenuIndex::compile(&market, &perturbed_cfg);

        // Locate the node the mutation landed on by diffing price tables.
        let moved: Vec<u32> = (0..index.n_nodes() as u32)
            .filter(|&nd| index.price(nd).to_bits() != perturbed_index.price(nd).to_bits())
            .collect();

        let base = index.expected_revenue(&users);
        if moved.is_empty() {
            // dprice == 0 (or clamped to 0): the query is still legal and
            // must report a bitwise no-op.
            let m = index.try_marginal_revenue(0, dprice, &users).unwrap();
            prop_assert_eq!(m.base.to_bits(), base.to_bits());
            prop_assert_eq!(m.perturbed.to_bits(), base.to_bits());
            prop_assert_eq!(m.delta, 0.0);
            return;
        }
        prop_assert_eq!(moved.len(), 1, "one offer moved ⇒ one node moved");
        let offer = moved[0];

        let m = index.try_marginal_revenue(offer, dprice, &users).unwrap();
        prop_assert_eq!(m.base.to_bits(), base.to_bits());
        let truth = perturbed_index.expected_revenue(&users);
        prop_assert_eq!(
            m.perturbed.to_bits(), truth.to_bits(),
            "marginal perturbed {} vs recompiled {}", m.perturbed, truth
        );
        prop_assert_eq!(m.delta.to_bits(), (m.perturbed - m.base).to_bits());

        // The `_all` path and any thread count answer identically.
        let all = index.try_marginal_revenue_all(offer, dprice).unwrap();
        prop_assert_eq!(all.perturbed.to_bits(), m.perturbed.to_bits());
        prop_assert_eq!(all.base.to_bits(), m.base.to_bits());
        for threads in [2usize, 8] {
            let t = index.clone().with_threads(threads);
            let mt = t.try_marginal_revenue(offer, dprice, &users).unwrap();
            prop_assert_eq!(mt.perturbed.to_bits(), m.perturbed.to_bits());
        }

        // Out-of-range offers and price-invalidating nudges are typed
        // errors, not panics.
        prop_assert!(index.try_marginal_revenue(index.n_nodes() as u32, 0.1, &users).is_err());
        prop_assert!(index
            .try_marginal_revenue(offer, -(index.price(offer) + 1.0), &users)
            .is_err());
    }
}

/// The `k`-th offer of `cfg` in pre-order (roots left to right, each
/// followed by its subtree).
fn nth_offer_mut(cfg: &mut BundleConfig, k: usize) -> Option<&mut OfferNode> {
    fn walk<'a>(nodes: &'a mut [OfferNode], k: &mut usize) -> Option<&'a mut OfferNode> {
        for n in nodes {
            if *k == 0 {
                return Some(n);
            }
            *k -= 1;
            if let Some(hit) = walk(&mut n.children, k) {
                return Some(hit);
            }
        }
        None
    }
    let mut k = k;
    walk(&mut cfg.roots, &mut k)
}
