//! Property tests for the serving layer (`DESIGN.md` §9):
//!
//! 1. For random markets and solver-produced menus (pure and mixed,
//!    step and sigmoid γ), every consumer's served payment is
//!    **bit-identical** to the solver-side menu evaluation of that
//!    consumer (`BundleConfig::expected_revenue` on a single-user
//!    [`revmax_core::market::Market::view`]).
//! 2. Batched `expected_revenue(all_users)` is **bit-identical at 1/2/8
//!    serve threads** and equals the fixed-chunk ordered fold of the
//!    per-user solver-side payments — the §6 contract applied to serving.
//! 3. The batched total agrees with the solver's whole-market menu
//!    evaluation up to summation reassociation (tolerance-checked).

use proptest::prelude::*;
use revmax_core::algorithms::by_name;
use revmax_core::market::Market;
use revmax_core::params::{Params, Threads};
use revmax_core::wtp::WtpMatrix;
use revmax_par::effective_chunk_size;
use revmax_serve::{solver_user_revenue, MenuIndex};

/// A random dense WTP matrix (entries 0 with ~3/8 probability) plus θ.
fn arb_dense() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    fn cell() -> impl Strategy<Value = f64> {
        (0u32..80u32).prop_map(|raw| if raw < 30 { 0.0 } else { raw as f64 * 0.25 })
    }
    let dims = (2usize..8, 1usize..7);
    dims.prop_flat_map(move |(m, n)| {
        (proptest::collection::vec(proptest::collection::vec(cell(), n..=n), m..=m), -20i32..=20)
            .prop_map(|(rows, theta)| (rows, theta as f64 / 100.0))
    })
}

fn market_of(dense: &[Vec<f64>], theta: f64, gamma: f64) -> Option<Market> {
    if dense.iter().all(|row| row.iter().all(|&w| w == 0.0)) {
        return None; // empty markets have no menu to serve
    }
    let params =
        Params::default().with_theta(theta).with_gamma(gamma).with_threads(Threads::Fixed(1));
    Some(Market::new(WtpMatrix::from_rows(dense.to_vec()), params))
}

/// The configurators exercised per case: a pure and a mixed method so
/// both serving semantics (independent offers, upgrade trees) run.
const METHODS: [&str; 3] = ["Components", "Pure Greedy", "Mixed Greedy"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn served_payments_equal_solver_side_evaluation_bitwise(
        (dense, theta) in arb_dense(),
        sigmoid in 0u8..2,
    ) {
        // Step regime by default; soft sigmoid on half the cases.
        let gamma = if sigmoid == 1 { 1.5 } else { 1e6 };
        let Some(market) = market_of(&dense, theta, gamma) else { return };
        for method in METHODS {
            let outcome = by_name(method).unwrap().run(&market);
            let index = MenuIndex::compile(&market, &outcome.config);
            let users = index.all_users();
            let assignments = index.assign(&users);
            prop_assert_eq!(assignments.len(), users.len());

            // (1) Per-user bitwise parity with the solver-side menu
            // evaluation of that single consumer.
            for a in &assignments {
                let solver = solver_user_revenue(&market, &outcome.config, a.user);
                prop_assert_eq!(
                    a.payment.to_bits(),
                    solver.to_bits(),
                    "{}: user {} served {} vs solver {}",
                    method, a.user, a.payment, solver
                );
            }

            // (2) The batched total is the fixed-chunk ordered fold of the
            // per-user payments, bit-identical at 1/2/8 serve threads.
            let chunk = effective_chunk_size(users.len(), 0);
            let reference: f64 = assignments
                .chunks(chunk)
                .map(|c| c.iter().map(|a| a.payment).sum::<f64>())
                .fold(0.0f64, |acc, s| acc + s);
            for threads in [1usize, 2, 8] {
                let served = index.clone().with_threads(threads).expected_revenue(&users);
                prop_assert_eq!(
                    served.to_bits(),
                    reference.to_bits(),
                    "{} at {} threads: {} vs chunked fold {}",
                    method, threads, served, reference
                );
            }

            // (3) ... and agrees with the solver's whole-market menu
            // evaluation up to summation reassociation.
            let solver_total = outcome.config.expected_revenue(&market);
            let tol = 1e-9 * solver_total.abs().max(1.0);
            prop_assert!(
                (index.expected_revenue(&users) - solver_total).abs() <= tol,
                "{}: served {} vs solver {}",
                method, index.expected_revenue(&users), solver_total
            );
        }
    }

    #[test]
    fn subset_batches_serve_any_user_mix(
        (dense, theta) in arb_dense(),
        mask in 1u32..255,
    ) {
        let Some(market) = market_of(&dense, theta, 1e6) else { return };
        let outcome = by_name("Mixed Greedy").unwrap().run(&market);
        let index = MenuIndex::compile(&market, &outcome.config);
        // An arbitrary (non-contiguous, possibly repeating) batch.
        let mut users: Vec<u32> =
            (0..market.n_users() as u32).filter(|u| mask & (1 << (u % 8)) != 0).collect();
        users.extend(users.clone()); // repeats are legal
        let total = index.expected_revenue(&users);
        for threads in [2usize, 8] {
            let t = index.clone().with_threads(threads);
            prop_assert_eq!(t.expected_revenue(&users).to_bits(), total.to_bits());
        }
        // Assignments line up one-to-one with the queried batch.
        let assignments = index.assign(&users);
        prop_assert_eq!(assignments.len(), users.len());
        for (a, &u) in assignments.iter().zip(&users) {
            prop_assert_eq!(a.user, u);
            prop_assert_eq!(
                a.payment.to_bits(),
                solver_user_revenue(&market, &outcome.config, u).to_bits()
            );
        }
    }
}
