//! End-to-end daemon test (`DESIGN.md` §11): a real `Daemon` on an
//! ephemeral port, concurrent query clients over real sockets, a mutation
//! client churning the market mid-flight — and the tentpole guarantees
//! checked at the wire:
//!
//! * zero dropped queries across however many hot swaps happen,
//! * post-churn `ExpectedRevenue(All)` / `Assign(All)` **bit-identical**
//!   to a cold rebuild (compact → fresh solve → fresh compile) of the
//!   same event history,
//! * malformed frames and out-of-range ids answer typed errors and never
//!   kill the process,
//! * `Shutdown` drains and `Daemon::join` returns.

use revmax_core::market::Market;
use revmax_core::marketlog::{Event, MarketLog};
use revmax_engine::{LiveEngine, ScaleSpec};
use revmax_serve::proto::{self, Request, Response, UserSel};
use revmax_serve::{Daemon, DaemonConfig, ErrorCode, MenuIndex};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_market() -> Market {
    let data = ScaleSpec::Tiny.config().generate(2015);
    revmax_engine::market_from_data(&data, 0.05)
}

fn spawn_daemon(cfg: DaemonConfig) -> Daemon {
    Daemon::spawn("127.0.0.1:0", tiny_market(), cfg).expect("daemon spawns")
}

fn connect(daemon: &Daemon) -> TcpStream {
    let s = TcpStream::connect(daemon.addr()).expect("connect to daemon");
    s.set_nodelay(true).unwrap();
    s
}

/// Deterministic churn: bump every `stride`-th consumer's first-rated
/// item by `bump`.
fn bump_events(market: &Market, stride: usize, bump: f64) -> Vec<Event> {
    let w = market.wtp();
    (0..market.n_users())
        .step_by(stride)
        .filter_map(|u| {
            let row = w.row(u as u32);
            row.ids.first().map(|&item| Event::UpsertWtp {
                user: u as u32,
                item,
                wtp: row.values[0] * bump,
            })
        })
        .collect()
}

/// Wait until the daemon has drained `events` mutations (applied or
/// rejected), so the served state is a pure function of the history.
fn quiesce(stream: &mut TcpStream, events: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match proto::roundtrip(stream, &Request::SwapStats).expect("stats poll") {
            Response::Stats(s) if s.mutations_applied + s.mutations_rejected >= events => return,
            Response::Stats(_) => {
                assert!(Instant::now() < deadline, "churn did not drain within 30s");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }
}

#[test]
fn served_state_is_bit_identical_to_a_cold_rebuild_across_hot_swaps() {
    let daemon = spawn_daemon(DaemonConfig {
        workers: 2,
        queue_cap: 64,
        coalesce: 8,
        ..DaemonConfig::default()
    });
    let base = tiny_market();
    let n_users = base.n_users() as u32;

    // Concurrent query clients hammer point queries over real sockets
    // while the mutations land. Every request must get a response.
    let addr = daemon.addr();
    let clients: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                stream.set_nodelay(true).unwrap();
                let mut answered = 0u64;
                for r in 0..120u32 {
                    let ids: Vec<u32> = (0..8).map(|k| (r * 13 + k * 7 + c) % n_users).collect();
                    let req = if r % 2 == 0 {
                        Request::ExpectedRevenue(UserSel::Ids(ids))
                    } else {
                        Request::Assign(UserSel::Ids(ids))
                    };
                    match proto::roundtrip(&mut stream, &req).expect("query answered") {
                        Response::Revenue(x) => assert!(x.is_finite()),
                        Response::Assignments(a) => assert_eq!(a.len(), 8),
                        Response::Error { code: ErrorCode::Overloaded, .. } => {}
                        other => panic!("unexpected response {other:?}"),
                    }
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    // The mutation client: two batches, mirrored into a local log.
    let mut log = MarketLog::new(base);
    let mut stream = connect(&daemon);
    let mut sent = 0u64;
    for (stride, bump) in [(5usize, 1.10), (3usize, 1.25)] {
        let events = bump_events(log.base(), stride, bump);
        assert!(!events.is_empty());
        sent += events.len() as u64;
        match proto::roundtrip(&mut stream, &Request::MutateMarket(events.clone())).unwrap() {
            Response::MutateAck { accepted, .. } => assert_eq!(accepted, events.len() as u64),
            other => panic!("expected MutateAck, got {other:?}"),
        }
        for ev in events {
            log.apply(ev).expect("events valid on both sides");
        }
    }

    for c in clients {
        assert_eq!(c.join().expect("client thread"), 120, "zero dropped queries");
    }
    quiesce(&mut stream, sent);
    assert!(daemon.handle().generation() >= 1, "mutations must hot-swap the index");

    // Cold rebuild of the identical history: compact arena, fresh engine,
    // fresh compile — the daemon's answers must match it bit for bit.
    let churned = log.snapshot();
    let cold_market = churned.with_wtp(churned.wtp().compact());
    let mut engine = LiveEngine::new(&["components"], 0).unwrap();
    let report = engine.resolve(&cold_market).unwrap();
    let cold_index = MenuIndex::compile(&cold_market, &report.whole_cell().unwrap().outcome.config);

    match proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::All)).unwrap() {
        Response::Revenue(served) => assert_eq!(
            served.to_bits(),
            cold_index.expected_revenue_all().to_bits(),
            "served revenue must be bit-identical to the cold rebuild"
        ),
        other => panic!("expected Revenue, got {other:?}"),
    }
    match proto::roundtrip(&mut stream, &Request::Assign(UserSel::All)).unwrap() {
        Response::Assignments(served) => assert_eq!(served, cold_index.assign_all()),
        other => panic!("expected Assignments, got {other:?}"),
    }

    // Clean wire-driven shutdown: Bye, then every thread joins.
    match proto::roundtrip(&mut stream, &Request::Shutdown).unwrap() {
        Response::Bye => {}
        other => panic!("expected Bye, got {other:?}"),
    }
    daemon.join();
}

#[test]
fn hostile_frames_and_bad_ids_get_typed_errors_not_a_dead_process() {
    let daemon = spawn_daemon(DaemonConfig::default());
    let n_users = daemon.handle().current().n_users() as u32;

    // Garbage opcode inside a valid frame: typed Malformed, connection
    // keeps serving.
    let mut stream = connect(&daemon);
    proto::write_frame(&mut stream, &[0xEE, 7, 7]).unwrap();
    match proto::decode_response(
        &proto::read_frame(&mut stream, proto::MAX_FRAME).unwrap().unwrap(),
    )
    .unwrap()
    {
        Response::Error { code: ErrorCode::Malformed, .. } => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
    match proto::roundtrip(&mut stream, &Request::SwapStats).unwrap() {
        Response::Stats(s) => assert!(s.malformed >= 1),
        other => panic!("connection should survive: {other:?}"),
    }

    // Out-of-range user id: typed Query error naming the id, and the
    // connection keeps serving in-range queries.
    match proto::roundtrip(&mut stream, &Request::Assign(UserSel::Ids(vec![0, n_users]))).unwrap() {
        Response::Error { code: ErrorCode::Query, message } => {
            assert!(message.contains("out of range"), "{message}");
        }
        other => panic!("expected Query error, got {other:?}"),
    }
    match proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::Ids(vec![0]))).unwrap() {
        Response::Revenue(x) => assert!(x.is_finite()),
        other => panic!("expected Revenue, got {other:?}"),
    }

    // Hostile 2 GiB length prefix: answered with Malformed, then hung up
    // (the stream offset is unrecoverable) — but the daemon lives on.
    let mut hostile = connect(&daemon);
    hostile.write_all(&0x7FFF_FFFFu32.to_le_bytes()).unwrap();
    match proto::decode_response(
        &proto::read_frame(&mut hostile, proto::MAX_FRAME).unwrap().unwrap(),
    )
    .unwrap()
    {
        Response::Error { code: ErrorCode::Malformed, message } => {
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert!(
        proto::read_frame(&mut hostile, proto::MAX_FRAME).unwrap().is_none(),
        "daemon hangs up after an unrecoverable frame"
    );

    let mut fresh = connect(&daemon);
    match proto::roundtrip(&mut fresh, &Request::SwapStats).unwrap() {
        Response::Stats(s) => assert!(s.malformed >= 2),
        other => panic!("daemon must still serve fresh connections: {other:?}"),
    }

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn marginal_revenue_opcode_answers_bit_exactly_over_the_wire() {
    let daemon = spawn_daemon(DaemonConfig::default());
    let index = daemon.handle().current();
    let users = index.all_users();
    let offer = *index.roots().last().expect("menu has offers");
    let dprice = 0.75;
    let expect = index.try_marginal_revenue(offer, dprice, &users).expect("in-process answer");

    let mut stream = connect(&daemon);
    // Both selector shapes answer with the in-process bits.
    for sel in [UserSel::All, UserSel::Ids(users.clone())] {
        match proto::roundtrip(&mut stream, &Request::MarginalRevenue { offer, dprice, sel })
            .unwrap()
        {
            Response::Marginal(m) => {
                assert_eq!(m.base.to_bits(), expect.base.to_bits());
                assert_eq!(m.perturbed.to_bits(), expect.perturbed.to_bits());
                assert_eq!(m.delta.to_bits(), expect.delta.to_bits());
            }
            other => panic!("expected Marginal, got {other:?}"),
        }
    }

    // Bad offer ids and price-invalidating nudges come back as typed
    // Query errors on a connection that keeps serving.
    let bad =
        Request::MarginalRevenue { offer: index.n_nodes() as u32, dprice: 0.0, sel: UserSel::All };
    match proto::roundtrip(&mut stream, &bad).unwrap() {
        Response::Error { code: ErrorCode::Query, .. } => {}
        other => panic!("expected Query error, got {other:?}"),
    }
    let negative =
        Request::MarginalRevenue { offer, dprice: -(index.price(offer) + 1.0), sel: UserSel::All };
    match proto::roundtrip(&mut stream, &negative).unwrap() {
        Response::Error { code: ErrorCode::Query, .. } => {}
        other => panic!("expected Query error, got {other:?}"),
    }
    match proto::roundtrip(&mut stream, &Request::SwapStats).unwrap() {
        Response::Stats(s) => assert_eq!(s.served_marginal, 2),
        other => panic!("expected Stats, got {other:?}"),
    }

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn process_side_shutdown_drains_and_joins() {
    let daemon = spawn_daemon(DaemonConfig { workers: 1, ..DaemonConfig::default() });
    let mut stream = connect(&daemon);
    match proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::All)).unwrap() {
        Response::Revenue(x) => assert!(x.is_finite()),
        other => panic!("expected Revenue, got {other:?}"),
    }
    daemon.request_shutdown();
    daemon.join();

    // A new query on the old connection either fails outright (the
    // connection thread exited) or answers ShuttingDown — it is never
    // silently executed against a drained daemon.
    let followup = proto::roundtrip(&mut stream, &Request::ExpectedRevenue(UserSel::All));
    match followup {
        Err(_) => {}
        Ok(Response::Error { code: ErrorCode::ShuttingDown, .. }) => {}
        Ok(other) => panic!("drained daemon answered a query: {other:?}"),
    }
}
