//! # revmax-par — deterministic parallel execution primitives
//!
//! Zero-dependency data parallelism on [`std::thread::scope`], built around
//! one contract (see `DESIGN.md` §6): **results are bit-identical regardless
//! of the thread count.** The two primitives guarantee it by construction:
//!
//! * [`par_index_map`] computes `f(i)` for every index independently and
//!   returns the results in index order; the thread count only decides who
//!   computes what, never what is computed.
//! * [`par_chunks_map_reduce`] splits the input at **fixed chunk
//!   boundaries** — a pure function of the input length and the requested
//!   chunk size, never of the thread count — maps each chunk, and reduces
//!   the chunk results **in chunk order** on the calling thread.
//!
//! Work distribution is dynamic (an atomic cursor hands out the next unit),
//! so stragglers do not idle the pool, but because every unit's value and
//! the reduction order are fixed, scheduling nondeterminism cannot leak
//! into results. Floating-point reductions in particular associate the
//! same way at 1 thread and at 64.
//!
//! The [`Threads`] knob carries the requested parallelism through
//! `Params`/`BenchArgs`; [`Threads::Auto`] honours the `REVMAX_THREADS`
//! environment variable before falling back to the machine's available
//! parallelism, so CI can pin both extremes without touching flags.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted by [`Threads::Auto`].
pub const THREADS_ENV_VAR: &str = "REVMAX_THREADS";

/// Default number of chunks targeted when a caller passes `chunk = 0` to
/// [`par_chunks_map_reduce`]. Deliberately independent of the thread count
/// so chunk boundaries (and therefore reduction associativity) never change
/// with the degree of parallelism.
const DEFAULT_CHUNKS: usize = 64;

/// Requested degree of parallelism.
///
/// `Auto` resolves at use time: `REVMAX_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`]. `Fixed(n)`
/// pins exactly `n` worker threads (`n = 0` is invalid — call
/// [`Threads::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// `REVMAX_THREADS` env var, else the machine's available parallelism.
    #[default]
    Auto,
    /// Exactly this many worker threads (must be ≥ 1).
    Fixed(usize),
}

impl Threads {
    /// Resolve to a concrete thread count (always ≥ 1).
    pub fn get(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => {
                // audit: allow(env-read) REVMAX_THREADS is the one sanctioned knob; results are thread-count invariant (DESIGN.md §6)
                if let Some(n) = std::env::var(THREADS_ENV_VAR)
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                {
                    return n;
                }
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            }
        }
    }

    /// Panic on the invalid `Fixed(0)` configuration.
    pub fn validate(self) {
        if let Threads::Fixed(n) = self {
            assert!(n >= 1, "thread count must be >= 1, got Fixed(0)");
        }
    }
}

/// Compute `f(0), f(1), …, f(n-1)` on up to `threads` workers and return
/// the results in index order.
///
/// Deterministic by construction: each index is computed exactly once by
/// the same pure function regardless of which worker runs it, and the
/// output vector is assembled by index. A panic in `f` propagates to the
/// caller. `threads <= 1` (or trivially small `n`) runs inline with no
/// thread spawns.
pub fn par_index_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|o| o.expect("every index computed exactly once")).collect()
}

/// The chunk size actually used for a `len`-element input when the caller
/// requests `chunk` (`0` = automatic). A pure function of `(len, chunk)` —
/// never of the thread count — so chunk boundaries are stable across runs
/// with different parallelism.
pub fn effective_chunk_size(len: usize, chunk: usize) -> usize {
    if chunk > 0 {
        chunk
    } else {
        len.div_ceil(DEFAULT_CHUNKS).max(1)
    }
}

/// Split `items` at fixed boundaries, `map` each chunk (in parallel), and
/// fold the chunk results **in chunk order** with `reduce`.
///
/// `chunk = 0` picks an automatic size via [`effective_chunk_size`].
/// Equivalent to the sequential
///
/// ```text
/// items.chunks(c).map(map).fold(init, reduce)
/// ```
///
/// for every thread count, bit-for-bit: chunk boundaries depend only on
/// `(items.len(), chunk)` and the ordered fold runs on the calling thread.
pub fn par_chunks_map_reduce<T, R, A, M, F>(
    threads: usize,
    items: &[T],
    chunk: usize,
    map: M,
    init: A,
    reduce: F,
) -> A
where
    T: Sync,
    R: Send,
    M: Fn(&[T]) -> R + Sync,
    F: FnMut(A, R) -> A,
{
    if items.is_empty() {
        return init;
    }
    let c = effective_chunk_size(items.len(), chunk);
    let n_chunks = items.len().div_ceil(c);
    let mapped = par_index_map(threads, n_chunks, |k| {
        let lo = k * c;
        let hi = (lo + c).min(items.len());
        map(&items[lo..hi])
    });
    mapped.into_iter().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_map_orders_results() {
        for threads in [1, 2, 4, 7] {
            let got = par_index_map(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn index_map_empty_and_tiny() {
        assert!(par_index_map(4, 0, |i| i).is_empty());
        assert_eq!(par_index_map(4, 1, |i| i + 10), vec![10]);
        assert_eq!(par_index_map(8, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn chunks_map_reduce_matches_sequential_fold() {
        let items: Vec<f64> = (0..1000).map(|k| (k as f64) * 0.1 + 0.3).collect();
        let seq = items
            .chunks(effective_chunk_size(items.len(), 0))
            .map(|c| c.iter().sum::<f64>())
            .fold(0.0f64, |a, s| a + s);
        for threads in [1, 2, 4, 7] {
            let par = par_chunks_map_reduce(
                threads,
                &items,
                0,
                |c| c.iter().sum::<f64>(),
                0.0f64,
                |a, s| a + s,
            );
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunks_map_reduce_empty_input_returns_init() {
        let got = par_chunks_map_reduce(4, &[] as &[u32], 0, |c| c.len(), 42usize, |a, n| a + n);
        assert_eq!(got, 42);
    }

    #[test]
    fn explicit_chunk_size_controls_boundaries() {
        // With chunk = 3 over 8 items the map sees [3, 3, 2] slices.
        let items: Vec<u32> = (0..8).collect();
        let sizes = par_chunks_map_reduce(
            4,
            &items,
            3,
            |c| vec![c.len()],
            Vec::new(),
            |mut a: Vec<usize>, mut v| {
                a.append(&mut v);
                a
            },
        );
        assert_eq!(sizes, vec![3, 3, 2]);
    }

    #[test]
    fn threads_knob_resolution() {
        assert_eq!(Threads::Fixed(5).get(), 5);
        assert_eq!(Threads::Fixed(0).get(), 1); // clamped at use
        assert!(Threads::Auto.get() >= 1);
        Threads::Fixed(1).validate();
        Threads::Auto.validate();
    }

    #[test]
    #[should_panic(expected = "thread count must be >= 1")]
    fn fixed_zero_rejected_by_validate() {
        Threads::Fixed(0).validate();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = par_index_map(4, 16, |i| {
            if i == 9 {
                panic!("boom");
            }
            i
        });
    }
}
