//! Property tests for the determinism contract: for arbitrary inputs,
//! chunk sizes, and thread counts, the parallel primitives are bit-for-bit
//! equal to their sequential counterparts — including the empty input and
//! `len < threads` edge cases, which the generators hit by construction
//! (lengths start at 0 while thread counts go up to 9).

use proptest::prelude::*;
use revmax_par::{effective_chunk_size, par_chunks_map_reduce, par_index_map};

/// The sequential specification of `par_chunks_map_reduce`.
fn sequential_chunks_fold(items: &[f64], chunk: usize) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items
        .chunks(effective_chunk_size(items.len(), chunk))
        .map(|c| c.iter().sum::<f64>())
        .fold(0.0f64, |a, s| a + s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chunks_map_reduce_equals_sequential_fold(
        items in proptest::collection::vec(-1.0e6f64..1.0e6, 0..200),
        chunk in 0usize..32,
        threads in 1usize..10,
    ) {
        let par = par_chunks_map_reduce(
            threads,
            &items,
            chunk,
            |c| c.iter().sum::<f64>(),
            0.0f64,
            |a, s| a + s,
        );
        let seq = sequential_chunks_fold(&items, chunk);
        prop_assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn chunks_map_reduce_identical_across_thread_counts(
        items in proptest::collection::vec(-1.0e3f64..1.0e3, 0..150),
        chunk in 0usize..17,
    ) {
        // Non-associative map (product minus sum per chunk) so any change
        // in chunk boundaries or reduction order would show up.
        let run = |threads: usize| {
            par_chunks_map_reduce(
                threads,
                &items,
                chunk,
                |c| c.iter().product::<f64>() - c.iter().sum::<f64>(),
                1.0f64,
                |a, x| a * 0.5 + x,
            )
        };
        let reference = run(1);
        for threads in [2, 3, 4, 7, 9] {
            prop_assert_eq!(run(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn chunks_map_reduce_preserves_chunk_order(
        len in 0usize..120,
        chunk in 0usize..13,
        threads in 1usize..10,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let collected = par_chunks_map_reduce(
            threads,
            &items,
            chunk,
            |c| c.to_vec(),
            Vec::new(),
            |mut acc: Vec<usize>, mut part| {
                acc.append(&mut part);
                acc
            },
        );
        // Ordered reduction over fixed chunks reassembles the input.
        prop_assert_eq!(collected, items);
    }

    #[test]
    fn index_map_equals_serial_map(
        n in 0usize..300,
        threads in 1usize..10,
        salt in 0u64..1000,
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7) ^ salt;
        let par = par_index_map(threads, n, f);
        let seq: Vec<u64> = (0..n).map(f).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn effective_chunk_size_is_thread_independent_and_sane(
        len in 1usize..10_000,
        chunk in 0usize..64,
    ) {
        let c = effective_chunk_size(len, chunk);
        prop_assert!(c >= 1);
        if chunk > 0 {
            prop_assert_eq!(c, chunk);
        } else {
            // Automatic sizing targets a bounded number of chunks.
            prop_assert!(len.div_ceil(c) <= 64);
        }
    }
}
