//! Behavioral tests running the real `revmax-audit` binary
//! (`CARGO_BIN_EXE_revmax_audit`) on fixture trees — the same pattern as
//! `crates/bench/tests/cli_reject.rs`. The key acceptance gate: for every
//! satellite fix this PR shipped, a fixture tree containing the
//! *reverted* form must make the audit exit 1, naming the rule; and the
//! shipped tree itself (self-host and full workspace) must exit 0.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_revmax-audit")
}

fn run(args: &[&str], cwd: &Path) -> Output {
    Command::new(bin()).args(args).current_dir(cwd).output().expect("spawn revmax-audit")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("audit must exit, not die on a signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Write a fixture tree under a unique temp dir; returns its root.
fn tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("revmax_audit_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }
    root
}

/// The reverted form of each satellite fix, at its real repo path. Each
/// entry must drive exit code 1 with the named rule in the report.
fn reverted_fixtures() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "float-partial-cmp",
            "crates/core/src/wsp.rs",
            "pub fn greedy_wsp(order: &mut Vec<u32>, rev: &[f64]) {\n    order.sort_by(|&a, &b| {\n        rev[b as usize].partial_cmp(&rev[a as usize]).unwrap().then(a.cmp(&b))\n    });\n}\n",
        ),
        (
            "float-sum",
            "crates/core/src/algorithms/freq_itemset.rs",
            "pub fn components_revenue(singles: &[f64]) -> f64 {\n    singles.iter().sum::<f64>()\n}\n",
        ),
        (
            "lock-unwrap",
            "crates/serve/src/swap.rs",
            "use std::sync::RwLock;\npub fn current(slot: &RwLock<u64>) -> u64 {\n    *slot.read().unwrap()\n}\n",
        ),
        (
            "fingerprint-coverage",
            "crates/core/src/params.rs",
            "pub struct Params {\n    pub lambda: f64,\n    pub epsilon: f64,\n}\n\nimpl Params {\n    pub fn fingerprint(&self) -> u64 {\n        self.lambda.to_bits()\n    }\n}\n",
        ),
        (
            "opcode-totality",
            "crates/serve/src/proto.rs",
            "pub const REQ_ASSIGN: u8 = 0x01;\npub const RESP_ASSIGN: u8 = 0x81;\npub fn encode_request() -> u8 {\n    REQ_ASSIGN\n}\npub fn decode_request(op: u8) -> u8 {\n    match op {\n        0x01 => 0,\n        _ => 1,\n    }\n}\npub fn encode_response() -> u8 {\n    RESP_ASSIGN\n}\npub fn decode_response(op: u8) -> u8 {\n    match op {\n        RESP_ASSIGN => 0,\n        _ => 1,\n    }\n}\n",
        ),
        (
            "event-totality",
            "crates/core/src/marketlog.rs",
            "pub enum Event {\n    UpsertWtp,\n    AddUser,\n}\n\npub struct MarketLog {\n    n: u32,\n}\n\nimpl MarketLog {\n    pub fn fingerprint(&self) -> u64 {\n        self.n as u64\n    }\n    pub fn apply(&mut self, event: Event) {\n        match event {\n            Event::UpsertWtp => self.n += 1,\n            _ => {}\n        }\n    }\n}\n",
        ),
    ]
}

#[test]
fn each_reverted_satellite_fix_fails_the_audit() {
    for (rule, rel, src) in reverted_fixtures() {
        let root = tree(&format!("revert_{rule}"), &[(rel, src)]);
        let out = run(&["."], &root);
        assert_eq!(code(&out), 1, "{rule}: expected exit 1, got {out:?}");
        assert!(
            stdout(&out).contains(rule),
            "{rule}: report does not name the rule:\n{}",
            stdout(&out)
        );
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn self_host_and_full_workspace_are_clean() {
    // CARGO_MANIFEST_DIR = crates/audit; the workspace root is two up.
    let audit_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let ws_root = audit_dir.parent().unwrap().parent().unwrap().to_path_buf();

    let out = run(&["."], &audit_dir);
    assert_eq!(code(&out), 0, "audit does not self-host:\n{}", stdout(&out));

    // Running under `cargo test` makes this the tier-1 gate: any unwaived
    // finding anywhere in the workspace fails the build.
    let out = run(&["."], &ws_root);
    assert_eq!(code(&out), 0, "shipped tree is not audit-clean:\n{}", stdout(&out));
}

#[test]
fn waivers_suppress_only_with_a_reason() {
    let violation =
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let waived = "pub fn f(v: &mut [f64]) {\n    // audit: allow(float-partial-cmp) fixture exercises the waiver path end to end\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let bare = "pub fn f(v: &mut [f64]) {\n    // audit: allow(float-partial-cmp)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";

    let root = tree("waiver_plain", &[("crates/core/src/x.rs", violation)]);
    assert_eq!(code(&run(&["."], &root)), 1);
    let _ = fs::remove_dir_all(&root);

    let root = tree("waiver_ok", &[("crates/core/src/x.rs", waived)]);
    let out = run(&["."], &root);
    assert_eq!(code(&out), 0, "reasoned waiver must suppress:\n{}", stdout(&out));
    let _ = fs::remove_dir_all(&root);

    let root = tree("waiver_bare", &[("crates/core/src/x.rs", bare)]);
    let out = run(&["."], &root);
    assert_eq!(code(&out), 1, "bare waiver must not suppress");
    assert!(stdout(&out).contains("no reason"), "{}", stdout(&out));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn vendor_and_target_are_skipped() {
    let violation =
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let root = tree(
        "skipdirs",
        &[("vendor/dep/src/lib.rs", violation), ("target/debug/build/gen.rs", violation)],
    );
    let out = run(&["."], &root);
    assert_eq!(code(&out), 0, "vendor/target must be skipped:\n{}", stdout(&out));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn rule_filter_and_json_output() {
    let violation = "use std::time::Instant;\npub fn f(v: &mut [f64]) -> u64 {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    Instant::now().elapsed().as_nanos() as u64\n}\n";
    let root = tree("filter", &[("crates/core/src/x.rs", violation)]);

    // Both rules fire unfiltered.
    let out = run(&["."], &root);
    assert_eq!(code(&out), 1);
    assert!(stdout(&out).contains("float-partial-cmp") && stdout(&out).contains("wall-clock"));

    // rule= narrows the report (and the exit decision).
    let out = run(&[".", "rule=wall-clock"], &root);
    assert_eq!(code(&out), 1);
    assert!(!stdout(&out).contains("float-partial-cmp"));
    let out = run(&[".", "rule=float-sum"], &root);
    assert_eq!(code(&out), 0, "no float-sum finding here:\n{}", stdout(&out));

    // json=- dumps the machine-readable report to stdout.
    let out = run(&[".", "json=-"], &root);
    assert_eq!(code(&out), 1);
    let js = stdout(&out);
    assert!(js.contains("\"findings\"") && js.contains("\"float-partial-cmp\""), "{js}");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn usage_errors_exit_2() {
    let root = tree("usage", &[("crates/core/src/x.rs", "pub fn f() {}\n")]);
    assert_eq!(code(&run(&[".", "rule=not-a-rule"], &root)), 2);
    assert_eq!(code(&run(&[".", "frobnicate=1"], &root)), 2);
    assert_eq!(code(&run(&["./no/such/path"], &root)), 2);
    let _ = fs::remove_dir_all(&root);
}
