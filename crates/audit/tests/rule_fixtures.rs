//! Per-rule fixture tables: every textual and structural rule must fire
//! on a minimal positive fixture and stay silent on the fixed form. The
//! fixtures are in-crate string tables (no files), fed straight through
//! [`revmax_audit::audit_sources`] — the same pipeline the CLI uses.

use revmax_audit::audit_sources;

/// `(rule, display path, positive fixture, fixed fixture)`.
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "float-partial-cmp",
        "crates/core/src/fix.rs",
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n",
    ),
    (
        // The chain may span lines and use expect — still one statement.
        "float-partial-cmp",
        "crates/ilp/src/fix.rs",
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| {\n        a.partial_cmp(b)\n            .expect(\"finite\")\n    });\n}\n",
        "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n",
    ),
    (
        "float-sum",
        "crates/core/src/fix.rs",
        "pub fn f(v: &[f64]) -> f64 {\n    v.iter().sum::<f64>()\n}\n",
        "pub fn f(v: &[f64]) -> f64 {\n    v.iter().fold(0.0, |a, x| a + x)\n}\n",
    ),
    (
        // Turbofish-free: the f64 type must be picked up from the binding.
        "float-sum",
        "crates/engine/src/fix.rs",
        "pub fn f(v: &[f64]) -> f64 {\n    let total: f64 = v.iter().sum();\n    total\n}\n",
        "pub fn f(v: &[f64]) -> f64 {\n    let total = v.iter().fold(0.0, |a, x| a + x);\n    total\n}\n",
    ),
    (
        "lock-unwrap",
        "crates/serve/src/fix.rs",
        "use std::sync::Mutex;\npub fn f(m: &Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n",
        "use std::sync::Mutex;\npub fn f(m: &Mutex<u32>) -> u32 {\n    *m.lock().unwrap_or_else(|p| p.into_inner())\n}\n",
    ),
    (
        "lock-unwrap",
        "crates/serve/src/fix.rs",
        "use std::sync::RwLock;\npub fn f(m: &RwLock<u32>) -> u32 {\n    *m.read().expect(\"poisoned\")\n}\n",
        "use std::sync::RwLock;\npub fn f(m: &RwLock<u32>) -> u32 {\n    *m.read().unwrap_or_else(|p| p.into_inner())\n}\n",
    ),
    (
        "unordered-iter",
        "crates/core/src/fix.rs",
        "use std::collections::HashMap;\npub fn f() -> f64 {\n    let m: HashMap<u32, f64> = HashMap::new();\n    m.values().fold(0.0, |a, x| a + x)\n}\n",
        "use std::collections::BTreeMap;\npub fn f() -> f64 {\n    let m: BTreeMap<u32, f64> = BTreeMap::new();\n    m.values().fold(0.0, |a, x| a + x)\n}\n",
    ),
    (
        "unordered-iter",
        "crates/engine/src/fix.rs",
        "use std::collections::HashSet;\npub fn f() {\n    let s: HashSet<u32> = HashSet::new();\n    for x in &s {\n        let _ = x;\n    }\n}\n",
        "use std::collections::HashSet;\npub fn f() {\n    let s: HashSet<u32> = HashSet::new();\n    let mut v: Vec<u32> = (0..4).filter(|x| s.contains(x)).collect();\n    v.sort_unstable();\n    for x in &v {\n        let _ = x;\n    }\n}\n",
    ),
    (
        "wall-clock",
        "crates/core/src/fix.rs",
        "use std::time::Instant;\npub fn f() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64\n}\n",
        "pub fn f() -> u64 {\n    0\n}\n",
    ),
    (
        "env-read",
        "crates/dataset/src/fix.rs",
        "pub fn f() -> Option<String> {\n    std::env::var(\"REVMAX_SECRET_KNOB\").ok()\n}\n",
        "pub fn f() -> Option<String> {\n    None\n}\n",
    ),
    (
        "fingerprint-coverage",
        "crates/core/src/params.rs",
        "pub struct Params {\n    pub lambda: f64,\n    pub theta: f64,\n}\n\nimpl Params {\n    pub fn fingerprint(&self) -> u64 {\n        self.lambda.to_bits()\n    }\n}\n",
        "pub struct Params {\n    pub lambda: f64,\n    pub theta: f64,\n}\n\nimpl Params {\n    pub fn fingerprint(&self) -> u64 {\n        self.lambda.to_bits() ^ self.theta.to_bits()\n    }\n}\n",
    ),
    (
        "event-totality",
        "crates/core/src/marketlog.rs",
        "pub enum Event {\n    UpsertWtp,\n    DeleteWtp,\n}\n\npub struct MarketLog {\n    n: u32,\n}\n\nimpl MarketLog {\n    pub fn fingerprint(&self) -> u64 {\n        self.n as u64\n    }\n    pub fn apply(&mut self, event: Event) {\n        match event {\n            Event::UpsertWtp => self.n += 1,\n            _ => {}\n        }\n    }\n}\n",
        "pub enum Event {\n    UpsertWtp,\n    DeleteWtp,\n}\n\npub struct MarketLog {\n    n: u32,\n}\n\nimpl MarketLog {\n    pub fn fingerprint(&self) -> u64 {\n        self.n as u64\n    }\n    pub fn apply(&mut self, event: Event) {\n        match event {\n            Event::UpsertWtp => self.n += 1,\n            Event::DeleteWtp => self.n -= 1,\n        }\n    }\n}\n",
    ),
];

#[test]
fn each_rule_fires_on_its_positive_fixture_and_not_on_the_fix() {
    for (rule, path, positive, fixed) in CASES {
        let report = audit_sources(&[(path.to_string(), positive.to_string())], None);
        assert!(
            report.unwaived().any(|f| f.rule == *rule),
            "{rule}: positive fixture at {path} produced no finding; got {:?}",
            report.findings
        );
        let report = audit_sources(&[(path.to_string(), fixed.to_string())], None);
        assert!(
            !report.findings.iter().any(|f| f.rule == *rule),
            "{rule}: fixed fixture at {path} still fires: {:?}",
            report.findings
        );
    }
}

#[test]
fn opcode_totality_half_wired_and_unpaired_opcodes() {
    let good = "pub const REQ_PING: u8 = 0x01;\n\
                pub const RESP_PING: u8 = 0x81;\n\
                pub fn encode_request(op: u8) -> u8 {\n    REQ_PING\n}\n\
                pub fn decode_request(op: u8) -> u8 {\n    match op {\n        REQ_PING => 0,\n        _ => 1,\n    }\n}\n\
                pub fn encode_response(op: u8) -> u8 {\n    RESP_PING\n}\n\
                pub fn decode_response(op: u8) -> u8 {\n    match op {\n        RESP_PING => 0,\n        _ => 1,\n    }\n}\n";
    let path = "crates/serve/src/proto.rs".to_string();
    let report = audit_sources(&[(path.clone(), good.to_string())], None);
    assert!(
        !report.findings.iter().any(|f| f.rule == "opcode-totality"),
        "clean protocol flagged: {:?}",
        report.findings
    );

    // Unpaired request opcode.
    let unpaired =
        good.replace("pub const RESP_PING: u8 = 0x81;", "pub const RESP_PONG: u8 = 0x81;");
    let report = audit_sources(&[(path.clone(), unpaired)], None);
    assert!(report
        .unwaived()
        .any(|f| f.rule == "opcode-totality" && f.message.contains("RESP_PING")));

    // Wired into the encoder but missing from the decoder.
    let half = good.replace("        REQ_PING => 0,\n", "        0x01 => 0,\n");
    let report = audit_sources(&[(path.clone(), half)], None);
    assert!(report
        .unwaived()
        .any(|f| f.rule == "opcode-totality" && f.message.contains("decode_request")));

    // Request opcode in the response range.
    let wrong_side =
        good.replace("pub const REQ_PING: u8 = 0x01;", "pub const REQ_PING: u8 = 0x90;");
    let report = audit_sources(&[(path.clone(), wrong_side)], None);
    assert!(report
        .unwaived()
        .any(|f| f.rule == "opcode-totality" && f.message.contains("response range")));

    // Duplicate opcode value on one side.
    let dup = format!("{good}pub const REQ_PING2: u8 = 0x01;\npub const RESP_PING2: u8 = 0x82;\n");
    let report = audit_sources(&[(path, dup)], None);
    assert!(report.unwaived().any(|f| f.rule == "opcode-totality" && f.message.contains("reuses")));
}

#[test]
fn fingerprint_coverage_fires_per_missing_field_at_its_line() {
    let src = "pub struct Params {\n    pub a: f64,\n    pub b: f64,\n    pub c: f64,\n}\n\nimpl Params {\n    pub fn fingerprint(&self) -> u64 {\n        self.a.to_bits()\n    }\n}\n";
    let report = audit_sources(&[("crates/core/src/params.rs".to_string(), src.to_string())], None);
    let lines: Vec<usize> =
        report.unwaived().filter(|f| f.rule == "fingerprint-coverage").map(|f| f.line).collect();
    // `b` on line 3, `c` on line 4.
    assert_eq!(lines, vec![3, 4], "{:?}", report.findings);
}

#[test]
fn structural_parse_failure_is_a_finding_not_a_skip() {
    // A params.rs whose struct was renamed out from under the gate.
    let src = "pub struct Config {\n    pub a: f64,\n}\n";
    let report = audit_sources(&[("crates/core/src/params.rs".to_string(), src.to_string())], None);
    assert!(report
        .unwaived()
        .any(|f| f.rule == "fingerprint-coverage" && f.message.contains("could not parse")));
}

#[test]
fn waiver_semantics() {
    let path = "crates/core/src/fix.rs".to_string();
    // Reasoned waiver on the line above suppresses the finding.
    let above = "pub fn f(v: &mut [f64]) {\n    // audit: allow(float-partial-cmp) fixture proves trailing and above placement\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let report = audit_sources(&[(path.clone(), above.to_string())], None);
    assert_eq!(report.unwaived().count(), 0, "{:?}", report.findings);
    assert!(report.findings.iter().any(|f| f.waived));

    // Trailing waiver on the same line suppresses too.
    let trailing = "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // audit: allow(float-partial-cmp) comparator fixture\n}\n";
    let report = audit_sources(&[(path.clone(), trailing.to_string())], None);
    assert_eq!(report.unwaived().count(), 0, "{:?}", report.findings);

    // A waiver with no reason does NOT suppress, and is itself a finding.
    let bare = "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // audit: allow(float-partial-cmp)\n}\n";
    let report = audit_sources(&[(path.clone(), bare.to_string())], None);
    assert!(report.unwaived().any(|f| f.rule == "float-partial-cmp"));
    assert!(report.unwaived().any(|f| f.rule == "waiver" && f.message.contains("no reason")));

    // A waiver that matches nothing is stale.
    let stale = "// audit: allow(float-partial-cmp) nothing here needs this\npub fn f() {}\n";
    let report = audit_sources(&[(path.clone(), stale.to_string())], None);
    assert!(report.unwaived().any(|f| f.rule == "waiver" && f.message.contains("stale")));

    // A waiver naming an unknown rule is a finding (typo protection).
    let typo = "pub fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // audit: allow(float-partial-cpm) oops\n}\n";
    let report = audit_sources(&[(path, typo.to_string())], None);
    assert!(report.unwaived().any(|f| f.rule == "waiver" && f.message.contains("unknown rule")));
}

#[test]
fn test_code_is_exempt_from_scoped_rules() {
    // The same float-sum body inside #[cfg(test)] or a tests/ dir is fine.
    let in_cfg_test = "pub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    pub fn f(v: &[f64]) -> f64 {\n        v.iter().sum::<f64>()\n    }\n}\n";
    let report =
        audit_sources(&[("crates/core/src/fix.rs".to_string(), in_cfg_test.to_string())], None);
    assert_eq!(report.unwaived().count(), 0, "{:?}", report.findings);

    let in_tests_dir = "pub fn f(v: &[f64]) -> f64 {\n    v.iter().sum::<f64>()\n}\n";
    let report =
        audit_sources(&[("crates/core/tests/fix.rs".to_string(), in_tests_dir.to_string())], None);
    assert_eq!(report.unwaived().count(), 0, "{:?}", report.findings);
}

#[test]
fn patterns_inside_literals_and_comments_never_fire() {
    let src = "pub fn f() -> &'static str {\n    // a.partial_cmp(b).unwrap() in a comment\n    /* m.lock().unwrap() Instant::now() */\n    \"v.iter().sum::<f64>() env::var Instant::now\"\n}\n";
    let report = audit_sources(&[("crates/core/src/fix.rs".to_string(), src.to_string())], None);
    assert_eq!(report.unwaived().count(), 0, "{:?}", report.findings);
}

#[test]
fn bench_and_examples_may_use_wall_clock_and_env() {
    let src = "use std::time::Instant;\npub fn f() -> u64 {\n    let _ = std::env::var(\"BENCH_KNOB\");\n    Instant::now().elapsed().as_nanos() as u64\n}\n";
    for path in ["crates/bench/src/bin/fix.rs", "crates/core/examples/fix.rs"] {
        let report = audit_sources(&[(path.to_string(), src.to_string())], None);
        assert!(
            !report.unwaived().any(|f| f.rule == "wall-clock" || f.rule == "env-read"),
            "{path}: {:?}",
            report.findings
        );
    }
}

#[test]
fn rule_filter_restricts_the_report() {
    let src = "use std::time::Instant;\npub fn f(v: &mut [f64]) -> u64 {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    Instant::now().elapsed().as_nanos() as u64\n}\n";
    let files = [("crates/core/src/fix.rs".to_string(), src.to_string())];
    let all = audit_sources(&files, None);
    assert!(all.unwaived().count() >= 2);
    let only = audit_sources(&files, Some("wall-clock"));
    assert!(only.findings.iter().all(|f| f.rule == "wall-clock"));
    assert_eq!(only.unwaived().count(), 1);
}
