//! Totality of the masking lexer, pinned by property tests: the scanner
//! must survive arbitrary byte soup (the CLI reads files with
//! `from_utf8_lossy`, so any disk content reaches it), preserve the
//! byte length and line structure of valid input, and never leak a rule
//! pattern out of a comment or literal into the masked text.

use proptest::prelude::*;
use revmax_audit::audit_sources;
use revmax_audit::lexer::mask_source;

/// Bytes that exercise the lexer's states far more often than uniform
/// noise would: quotes, slashes, hashes, escapes, newlines, letters.
fn arb_soup() -> impl Strategy<Value = Vec<u8>> {
    let byte = (0u32..16, 0u8..=255).prop_map(|(sel, raw)| match sel {
        0 => b'"',
        1 => b'\'',
        2 => b'/',
        3 => b'*',
        4 => b'\\',
        5 => b'#',
        6 => b'r',
        7 => b'b',
        8 => b'\n',
        9 => b'a',
        _ => raw,
    });
    proptest::collection::vec(byte, 0..200)
}

proptest! {
    #[test]
    fn lexer_never_panics_and_preserves_shape(soup in arb_soup()) {
        let src = String::from_utf8_lossy(&soup).into_owned();
        let lexed = mask_source(&src);
        prop_assert_eq!(lexed.masked.len(), src.len());
        prop_assert_eq!(
            lexed.masked.bytes().filter(|&b| b == b'\n').count(),
            src.bytes().filter(|&b| b == b'\n').count()
        );
        // The whole pipeline must be total too, not just the lexer.
        let report = audit_sources(&[("crates/core/src/soup.rs".to_string(), src)], None);
        prop_assert!(report.files_scanned == 1);
    }

    #[test]
    fn patterns_wrapped_in_literals_or_comments_never_fire(wrap in 0usize..6) {
        // Every textual-rule trigger, embedded in each masking context:
        // the audit must report nothing.
        let triggers = [
            "x.partial_cmp(&y).unwrap()",
            "v.iter().sum::<f64>()",
            "m.lock().unwrap()",
            "Instant::now()",
            "env::var",
        ];
        for t in triggers {
            let body = match wrap {
                0 => format!("// {t}\npub fn f() {{}}\n"),
                1 => format!("/* {t} */\npub fn f() {{}}\n"),
                2 => format!("pub fn f() -> &'static str {{\n    \"{t}\"\n}}\n"),
                3 => format!("pub fn f() -> &'static str {{\n    r#\"{t}\"#\n}}\n"),
                4 => format!("pub fn f() -> &'static [u8] {{\n    b\"{t}\"\n}}\n"),
                _ => format!("/* outer /* {t} */ still masked */\npub fn f() {{}}\n"),
            };
            let report =
                audit_sources(&[("crates/core/src/fix.rs".to_string(), body)], None);
            prop_assert_eq!(report.unwaived().count(), 0, "{} in wrap {}", t, wrap);
        }
    }
}
