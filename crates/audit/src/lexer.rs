//! A small Rust source lexer whose only job is masking: everything inside
//! comments, string/char literals, and raw strings is replaced by spaces
//! (newlines preserved), so the rule engine can pattern-match token text
//! without ever firing on prose. Comment *contents* are collected
//! separately — waivers (`// audit: allow(<rule>) <reason>`) are parsed
//! from genuine comments only, never from string literals that happen to
//! contain the waiver syntax.
//!
//! The lexer is total: any byte sequence (valid UTF-8 or not — callers
//! read files with [`String::from_utf8_lossy`]) produces a mask of the
//! same length and line structure. Unterminated literals simply mask to
//! the end of input. This is pinned by the `lexer_never_panics` proptest.

/// One comment's text (without its `//` / `/*` delimiters), attached to
/// the 1-based line it starts on. Multi-line block comments contribute
/// one entry per line they cover, so a waiver inside a block comment
/// still anchors to the right line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// The masking result: `masked` is byte-for-byte the same length and line
/// layout as the input, with comment/literal bytes blanked to `' '`.
#[derive(Debug, Clone)]
pub struct Lexed {
    pub masked: String,
    pub comments: Vec<Comment>,
}

/// Is `b` a byte that can continue an identifier?
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Mask `src` (see module docs). Never panics.
pub fn mask_source(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments: Vec<Comment> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank out[a..b] keeping newlines; push comment text per line.
    let blank = |out: &mut [u8], a: usize, b: usize| {
        let end = b.min(out.len());
        for x in &mut out[a..end] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };
    let collect_comment =
        |comments: &mut Vec<Comment>, bytes: &[u8], a: usize, b: usize, line0: usize| {
            let parts = bytes[a..b.min(bytes.len())].split(|&x| x == b'\n');
            for (ln, part) in (line0..).zip(parts) {
                comments
                    .push(Comment { line: ln, text: String::from_utf8_lossy(part).into_owned() });
            }
        };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                collect_comment(&mut comments, bytes, start + 2, i, line);
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let start = i;
                let line0 = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(start + 2);
                collect_comment(&mut comments, bytes, start + 2, text_end, line0);
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i = (i + 2).min(bytes.len()),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' => {
                // Raw strings r"…", r#"…"#, byte strings b"…", byte raw
                // br#"…"#. A lone identifier containing these letters must
                // fall through — only fire when the prefix is not preceded
                // by an identifier byte and is directly followed by the
                // quote/hash syntax.
                let prev_ident = i > 0 && is_ident(bytes[i - 1]);
                let mut j = i;
                if bytes[j] == b'b'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] == b'r' || bytes[j + 1] == b'"' || bytes[j + 1] == b'\'')
                {
                    j += 1; // b" / br / b'
                }
                if !prev_ident && j < bytes.len() && bytes[j] == b'\'' {
                    // Byte char literal b'x'.
                    let start = i;
                    i = j + 1;
                    if i < bytes.len() && bytes[i] == b'\\' {
                        i = (i + 2).min(bytes.len());
                    } else {
                        i = (i + 1).min(bytes.len());
                    }
                    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    blank(&mut out, start, i);
                    continue;
                }
                let raw = j < bytes.len() && bytes[j] == b'r';
                if raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if !prev_ident && j < bytes.len() && bytes[j] == b'"' && (raw || bytes[i] == b'b') {
                    let start = i;
                    i = j + 1;
                    if raw {
                        // Scan for `"` followed by `hashes` hash marks.
                        'raw: while i < bytes.len() {
                            if bytes[i] == b'\n' {
                                line += 1;
                                i += 1;
                                continue;
                            }
                            if bytes[i] == b'"' {
                                let mut k = i + 1;
                                let mut h = 0usize;
                                while h < hashes && k < bytes.len() && bytes[k] == b'#' {
                                    h += 1;
                                    k += 1;
                                }
                                if h == hashes {
                                    i = k;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                    } else {
                        // b"…" with escapes.
                        while i < bytes.len() {
                            match bytes[i] {
                                b'\\' => i = (i + 2).min(bytes.len()),
                                b'"' => {
                                    i += 1;
                                    break;
                                }
                                b'\n' => {
                                    line += 1;
                                    i += 1;
                                }
                                _ => i += 1,
                            }
                        }
                    }
                    blank(&mut out, start, i);
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime/label. `'\…'` and `'x'` are
                // literals; `'ident` (no closing quote right after one
                // char) is a lifetime and stays unmasked.
                let prev_ident = i > 0 && is_ident(bytes[i - 1]);
                if prev_ident {
                    // e.g. the `'` in `b'x'` already handled; an ident
                    // followed by `'` can't start a char literal (it's a
                    // lifetime bound position like `T: 'a`), except after
                    // `(`/operators — be permissive and treat as lifetime.
                    i += 1;
                    continue;
                }
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    let start = i;
                    i += 2;
                    i = (i + 1).min(bytes.len()); // the escaped byte
                    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    blank(&mut out, start, i);
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                    // 'x' — note multi-byte chars: the char may span more
                    // bytes; handle ASCII fast path here, multi-byte below.
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else if i + 1 < bytes.len() && bytes[i + 1] >= 0x80 {
                    // Possibly a multi-byte char literal 'é'. Scan to the
                    // closing quote within a short window.
                    let mut k = i + 1;
                    while k < bytes.len() && k - i <= 5 && bytes[k] != b'\'' && bytes[k] != b'\n' {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k] == b'\'' {
                        blank(&mut out, i, k + 1);
                        i = k + 1;
                    } else {
                        i += 1;
                    }
                } else {
                    // Lifetime (`'a`), label (`'outer:`), or stray quote.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let masked = String::from_utf8_lossy(&out).into_owned();
    Lexed { masked, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments_and_collects_text() {
        let src = "let a = 1; // audit: allow(x) reason\n/* block\nspans */ let b = 2;\n";
        let lexed = mask_source(src);
        assert!(!lexed.masked.contains("audit"));
        assert!(!lexed.masked.contains("block"));
        assert!(lexed.masked.contains("let a = 1;"));
        assert!(lexed.masked.contains("let b = 2;"));
        assert_eq!(lexed.masked.len(), src.len());
        assert!(lexed.comments.iter().any(|c| c.line == 1 && c.text.contains("allow(x)")));
        assert!(lexed.comments.iter().any(|c| c.line == 2 && c.text.contains("block")));
    }

    #[test]
    fn masks_strings_chars_and_raw_strings() {
        let src = r####"let s = "partial_cmp().unwrap()"; let r = r#"Instant::now "q" inside"#; let c = '"'; let b = b"env::var"; let e = '\n';"####;
        let lexed = mask_source(src);
        assert!(!lexed.masked.contains("partial_cmp"));
        assert!(!lexed.masked.contains("Instant"));
        assert!(!lexed.masked.contains("env::var"));
        assert!(lexed.masked.contains("let s ="));
        assert!(lexed.masked.contains("let e ="));
        assert_eq!(lexed.masked.len(), src.len());
    }

    #[test]
    fn lifetimes_survive_unmasked() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } 'outer: loop { break 'outer; }";
        let lexed = mask_source(src);
        assert_eq!(lexed.masked, src);
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let src = "a /* one /* two */ still comment */ b";
        let lexed = mask_source(src);
        assert!(lexed.masked.starts_with('a'));
        assert!(lexed.masked.ends_with('b'));
        assert!(!lexed.masked.contains("still"));
    }

    #[test]
    fn unterminated_literals_mask_to_eof_without_panic() {
        for src in ["let s = \"never closed", "/* never closed", "let c = '\\", "r#\"open"] {
            let lexed = mask_source(src);
            assert_eq!(lexed.masked.len(), src.len());
        }
    }
}
