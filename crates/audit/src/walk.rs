//! Deterministic workspace walker: collect `*.rs` files under the given
//! roots in sorted order, skipping `target/`, `vendor/`, and VCS
//! directories. Sorted traversal keeps audit output byte-stable across
//! filesystems — the same determinism bar the rest of the workspace holds
//! itself to.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules"];

/// Collect every `.rs` file under `root` (or `root` itself if it is a
/// file), sorted by path. I/O errors on individual entries are skipped —
/// the audit reports on what it can read.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return out;
    }
    walk_dir(root, &mut out);
    out.sort();
    out
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk_dir(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_vendor_and_target_and_sorts() {
        let dir = std::env::temp_dir().join(format!("revmax_audit_walk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::create_dir_all(dir.join("vendor/x/src")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::write(dir.join("src/b.rs"), "fn b() {}").unwrap();
        fs::write(dir.join("src/a.rs"), "fn a() {}").unwrap();
        fs::write(dir.join("vendor/x/src/lib.rs"), "fn v() {}").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "fn t() {}").unwrap();
        fs::write(dir.join("notes.txt"), "not rust").unwrap();

        let files = collect_rs_files(&dir);
        let names: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().replace('\\', "/"))
            .collect();
        assert_eq!(names, vec!["src/a.rs", "src/b.rs"]);

        let _ = fs::remove_dir_all(&dir);
    }
}
