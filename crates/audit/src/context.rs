//! Per-file context: which crate a path belongs to, whether it is test
//! code, and which line ranges sit inside `#[cfg(test)]` modules. Scoped
//! rules (lock-unwrap, float-sum, unordered-iter) only apply to
//! non-test code of the determinism-bearing crates (`core`, `engine`,
//! `serve`) — see `DESIGN.md` §14 for the scope matrix.

/// Classification of one scanned file.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Display path (as walked), with `/` separators.
    pub rel: String,
    /// Crate name (`core`, `serve`, …) when derivable from the path.
    pub crate_name: Option<String>,
    /// Whole file is test/bench code (`tests/`, `benches/` directories).
    pub tests_dir: bool,
    /// File lives under an `examples/` directory (demo binaries).
    pub example: bool,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` modules.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileCtx {
    pub fn classify(rel: &str, masked: &str) -> FileCtx {
        let rel = rel.replace('\\', "/");
        let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty() && *c != ".").collect();
        let mut crate_name = None;
        // `crates/<name>/…` wins; else the component preceding `src`
        // (fixture trees and `cargo run -p` both produce such layouts).
        if let Some(k) = comps.iter().position(|&c| c == "crates") {
            crate_name = comps.get(k + 1).map(|s| s.to_string());
        } else if let Some(k) = comps.iter().position(|&c| c == "src") {
            if k > 0 {
                crate_name = Some(comps[k - 1].to_string());
            }
        }
        let tests_dir = comps.iter().any(|&c| c == "tests" || c == "benches");
        let example = comps.contains(&"examples");
        FileCtx { rel, crate_name, tests_dir, example, test_spans: find_test_spans(masked) }
    }

    /// Is 1-based `line` test code?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.tests_dir || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// One of the determinism-bearing crates whose results must be
    /// bit-identical across threads/kernels/caches (`DESIGN.md` §6)?
    pub fn determinism_crate(&self) -> bool {
        matches!(self.crate_name.as_deref(), Some("core" | "engine" | "serve"))
    }

    /// The measurement crate — wall-clock and env knobs are its job.
    pub fn bench_crate(&self) -> bool {
        self.crate_name.as_deref() == Some("bench")
    }
}

/// Find `#[cfg(test)]` module spans by brace-matching the masked source.
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    let lines: Vec<&str> = masked.lines().collect();
    // Byte offset of each line start, for brace matching across lines.
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Skip further attributes, find the item line, then its `{`.
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim_start().starts_with("#[") {
                j += 1;
            }
            if let Some(end) = match_braces_from(&lines, j) {
                spans.push((i + 1, end + 1)); // 1-based inclusive
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Starting at `lines[from]`, find the first `{` and return the 0-based
/// line index of its matching `}` (or the last line if unbalanced).
fn match_braces_from(lines: &[&str], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut opened = false;
    for (k, line) in lines.iter().enumerate().skip(from) {
        for b in line.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        // `mod tests;` (no body) — nothing to span.
        if !opened && line.contains(';') {
            return None;
        }
    }
    if opened {
        Some(lines.len().saturating_sub(1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_source;

    #[test]
    fn classifies_crate_and_test_dirs() {
        let ctx = FileCtx::classify("crates/core/src/wsp.rs", "");
        assert_eq!(ctx.crate_name.as_deref(), Some("core"));
        assert!(ctx.determinism_crate());
        assert!(!ctx.tests_dir);

        let ctx = FileCtx::classify("crates/engine/tests/foo.rs", "");
        assert!(ctx.tests_dir);

        let ctx = FileCtx::classify("src/lib.rs", "");
        assert_eq!(ctx.crate_name, None);

        let ctx = FileCtx::classify("./crates/bench/src/bin/sweep.rs", "");
        assert!(ctx.bench_crate());
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n    }\n}\nfn live2() {}\n";
        let ctx = FileCtx::classify("crates/core/src/x.rs", &mask_source(src).masked);
        assert_eq!(ctx.test_spans, vec![(2, 6)]);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(4));
        assert!(!ctx.is_test_line(7));
    }
}
