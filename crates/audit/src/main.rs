//! CLI for the revmax determinism & safety audit.
//!
//! ```text
//! cargo run --release -p revmax-audit -- [paths...] [json=<path|->] [rule=<name>]
//! ```
//!
//! * `paths` — files or directories to scan (default `.`); `vendor/`,
//!   `target/` and VCS directories are skipped.
//! * `rule=<name>` — restrict the report to one rule (see `--help` /
//!   `DESIGN.md` §14 for the catalog).
//! * `json=<path>` — additionally write the full report (including waived
//!   findings) as JSON; `json=-` writes it to stdout.
//!
//! Exit codes: `0` clean, `1` at least one unwaived finding, `2` usage
//! error. Waive an individual finding with a reasoned inline comment:
//! `// audit: allow(<rule>) <reason>` — bare or stale waivers are
//! findings themselves.

use std::path::PathBuf;
use std::process::ExitCode;

use revmax_audit::{audit_paths, RULES};

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json: Option<String> = None;
    let mut rule: Option<String> = None;

    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            print!("{}", help());
            return ExitCode::SUCCESS;
        }
        if let Some(v) = arg.strip_prefix("json=") {
            json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("rule=") {
            if !RULES.contains(&v) {
                eprintln!("revmax-audit: unknown rule `{v}` (known: {})", RULES.join(", "));
                return ExitCode::from(2);
            }
            rule = Some(v.to_string());
        } else if arg.contains('=') {
            eprintln!("revmax-audit: unknown option `{arg}` (expected paths, json=, rule=)");
            return ExitCode::from(2);
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    for p in &paths {
        if !p.exists() {
            eprintln!("revmax-audit: no such path: {}", p.display());
            return ExitCode::from(2);
        }
    }

    let roots: Vec<&std::path::Path> = paths.iter().map(|p| p.as_path()).collect();
    let report = audit_paths(&roots, rule.as_deref());

    if let Some(target) = &json {
        let body = report.to_json();
        if target == "-" {
            print!("{body}");
        } else if let Err(e) = std::fs::write(target, body) {
            eprintln!("revmax-audit: cannot write {target}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut unwaived = 0usize;
    let waived = report.findings.iter().filter(|f| f.waived).count();
    for f in report.unwaived() {
        println!("{}:{} {} {}", f.path, f.line, f.rule, f.message);
        unwaived += 1;
    }
    eprintln!(
        "revmax-audit: {} files, {} finding{} ({} waived)",
        report.files_scanned,
        unwaived,
        if unwaived == 1 { "" } else { "s" },
        waived
    );
    if unwaived > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn help() -> String {
    format!(
        "revmax-audit — determinism & safety lint for the revmax workspace\n\
         \n\
         usage: revmax-audit [paths...] [json=<path|->] [rule=<name>]\n\
         \n\
         rules: {}\n\
         \n\
         Findings print as `file:line rule message`; exit 1 on any unwaived\n\
         finding. Waive with `// audit: allow(<rule>) <reason>` on the same\n\
         line or the line above. See DESIGN.md §14 for the catalog.\n",
        RULES.join(", ")
    )
}
