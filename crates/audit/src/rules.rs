//! The textual rule tier: each rule mechanizes one bug class this repo
//! has actually shipped and fixed (`DESIGN.md` §14 maps rule → PR). All
//! patterns run over the *masked* source ([`crate::lexer::mask_source`]),
//! so occurrences inside comments and string literals never fire.

use crate::context::FileCtx;
use crate::lexer::Lexed;

/// One reported rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    /// Suppressed by a reasoned inline waiver. Waived findings are kept
    /// (they feed the stale-waiver check and the JSON export) but do not
    /// fail the run.
    pub waived: bool,
}

/// Every rule name the engine knows, for `rule=` validation and docs.
pub const RULES: &[&str] = &[
    "float-partial-cmp",
    "float-sum",
    "lock-unwrap",
    "unordered-iter",
    "wall-clock",
    "env-read",
    "fingerprint-coverage",
    "opcode-totality",
    "event-totality",
    "waiver",
];

/// A parsed `// audit: allow(<rule>) <reason>` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub line: usize,
    pub rule: String,
    pub reason: String,
    pub used: bool,
}

pub const WAIVER_TOKEN: &str = "audit: allow(";

/// Parse waivers out of the lexer's comment list. A waiver must *start*
/// the comment (`// audit: allow(rule) why`) — mentioning the syntax
/// mid-sentence (docs, this file) does not create one.
pub fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim_start();
        if !text.starts_with(WAIVER_TOKEN) {
            continue;
        }
        let rest = &text[WAIVER_TOKEN.len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        out.push(Waiver { line: c.line, rule, reason, used: false });
    }
    out
}

/// Apply waivers to `findings` (a waiver on line `L` covers findings on
/// `L` and `L+1`, i.e. trailing comments and own-line comments directly
/// above). Then emit the waiver-hygiene findings: a waiver without a
/// reason, and a waiver that suppressed nothing (stale), are themselves
/// findings — waivers must stay justified and live.
pub fn apply_waivers(path: &str, findings: &mut Vec<Finding>, waivers: &mut [Waiver]) {
    for f in findings.iter_mut() {
        if let Some(w) = waivers
            .iter_mut()
            .find(|w| w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line))
        {
            w.used = true;
            if !w.reason.is_empty() {
                f.waived = true;
            }
        }
    }
    for w in waivers.iter() {
        if !RULES.contains(&w.rule.as_str()) {
            findings.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!("waiver names unknown rule `{}`", w.rule),
                waived: false,
            });
        } else if w.reason.is_empty() {
            findings.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "waiver for `{}` has no reason — write `// audit: allow({}) <why>`",
                    w.rule, w.rule
                ),
                waived: false,
            });
        } else if !w.used {
            findings.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!("stale waiver: no `{}` finding on this or the next line", w.rule),
                waived: false,
            });
        }
    }
}

/// Run every textual rule over one masked file.
pub fn scan_file(ctx: &FileCtx, masked: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let line_starts = line_starts(masked);
    let hash_idents = collect_hash_idents(masked);

    let mut push = |pos: usize, rule: &'static str, message: String| {
        let line = line_of(&line_starts, pos);
        if !ctx.is_test_line(line) {
            out.push(Finding { path: ctx.rel.clone(), line, rule, message, waived: false });
        }
    };

    // --- float-partial-cmp (PR 5: NaN panicked the solve) --------------
    // `partial_cmp` whose result is force-unwrapped in the same
    // statement. Applies everywhere: a NaN reaching a comparator panics
    // the process no matter which crate it lives in.
    for pos in occurrences(masked, "partial_cmp") {
        let span = forward_span(masked, pos + "partial_cmp".len());
        if span.contains(".unwrap()") || span.contains(".expect(") {
            push(
                pos,
                "float-partial-cmp",
                "partial_cmp + unwrap/expect panics on NaN; sort/compare floats with total_cmp"
                    .into(),
            );
        }
    }

    if ctx.determinism_crate() {
        // --- float-sum (PR 5: f64 Iterator::sum folds from -0.0) -------
        for pos in occurrences(masked, ".sum") {
            let after = &masked[pos + 4..];
            let explicit_f64 = after.starts_with("::<f64>()");
            let plain = after.starts_with("()");
            if explicit_f64 || (plain && backward_span(masked, pos).contains("f64")) {
                push(
                    pos,
                    "float-sum",
                    "f64 Iterator::sum starts from -0.0; fold explicitly from +0.0 \
                     (`.fold(0.0, |a, x| a + x)`)"
                        .into(),
                );
            }
        }

        // --- lock-unwrap (PR 7: one poisoned lock killed every reader) -
        for pat in [".lock()", ".read()", ".write()"] {
            for pos in occurrences(masked, pat) {
                let span = forward_span(masked, pos + pat.len());
                if span.starts_with(".unwrap()") || span.starts_with(".expect(") {
                    push(
                        pos,
                        "lock-unwrap",
                        format!(
                            "{pat} + unwrap/expect propagates lock poisoning; recover with \
                             `.unwrap_or_else(|p| p.into_inner())` (DESIGN.md §11)"
                        ),
                    );
                }
            }
        }

        // --- unordered-iter (order nondeterminism in result paths) -----
        for pat in [".iter()", ".keys()", ".values()", ".into_iter()", ".drain(", ".retain("] {
            for pos in occurrences(masked, pat) {
                if let Some(recv) = receiver_ident(masked, pos) {
                    if hash_idents.contains(&recv) {
                        push(
                            pos,
                            "unordered-iter",
                            format!(
                                "`{recv}` is a HashMap/HashSet — iteration order is \
                                 nondeterministic; use a BTree collection or sort the output"
                            ),
                        );
                    }
                }
            }
        }
        for (line_idx, line) in masked.lines().enumerate() {
            if let Some(ident) = for_loop_hash_target(line, &hash_idents) {
                let pos = line_starts[line_idx];
                push(
                    pos,
                    "unordered-iter",
                    format!(
                        "`for` over HashMap/HashSet `{ident}` observes nondeterministic order; \
                         use a BTree collection or sort first"
                    ),
                );
            }
        }
    }

    // --- wall-clock (results must be a pure function of inputs) --------
    if !ctx.bench_crate() && !ctx.example {
        for pat in ["Instant::now", "SystemTime"] {
            for pos in occurrences(masked, pat) {
                push(
                    pos,
                    "wall-clock",
                    format!(
                        "{pat} outside bench/histogram code — wall-clock must never reach results"
                    ),
                );
            }
        }
    }

    // --- env-read (hidden global inputs) --------------------------------
    if !ctx.bench_crate() && !ctx.example {
        for pos in occurrences(masked, "env::var") {
            push(
                pos,
                "env-read",
                "std::env::var outside the sanctioned knobs — environment must not steer results"
                    .into(),
            );
        }
    }

    out
}

// ---------------------------------------------------------------------
// helpers

/// Byte offsets of each line start.
fn line_starts(s: &str) -> Vec<usize> {
    let mut v = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// 1-based line of byte offset `pos`.
fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

/// All byte offsets where `pat` occurs as a whole token (the byte before
/// and after must not extend an identifier).
fn occurrences(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let pb = pat.as_bytes();
    let boundary_before = pb[0].is_ascii_alphanumeric() || pb[0] == b'_';
    let boundary_after = {
        let last = pb[pb.len() - 1];
        last.is_ascii_alphanumeric() || last == b'_'
    };
    let mut from = 0usize;
    while let Some(k) = hay[from..].find(pat) {
        let at = from + k;
        let ok_before = !boundary_before
            || at == 0
            || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + pat.len();
        let ok_after = !boundary_after
            || end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            out.push(at);
        }
        from = at + pat.len();
    }
    out
}

/// The statement tail from `pos`: up to the next `;`, `{` or `}` (or 240
/// bytes), whitespace collapsed so chains split across lines still match.
fn forward_span(s: &str, pos: usize) -> String {
    let end = (pos + 240).min(s.len());
    let tail = &s[pos..floor_char_boundary(s, end)];
    let cut = tail.find([';', '{', '}']).unwrap_or(tail.len());
    tail[..cut].split_whitespace().collect::<Vec<_>>().join("")
}

/// The statement head before `pos`: back to the previous `;`, `{`, `}`
/// or match-arm `=>` (or 240 bytes). `=>` is a boundary so a match arm
/// never drags the previous arm's text into its span; `,` is not, so
/// closure parameter lists stay intact.
fn backward_span(s: &str, pos: usize) -> String {
    let start = pos.saturating_sub(240);
    let head = &s[ceil_char_boundary(s, start)..pos];
    let cut = head
        .rfind([';', '{', '}'])
        .map(|k| k + 1)
        .into_iter()
        .chain(head.rfind("=>").map(|k| k + 2))
        .max()
        .unwrap_or(0);
    head[cut..].to_string()
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn ceil_char_boundary(s: &str, mut i: usize) -> usize {
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: `let` bindings
/// and struct fields whose declared statement names the type.
fn collect_hash_idents(masked: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for pat in ["HashMap", "HashSet"] {
        for pos in occurrences(masked, pat) {
            let head = backward_span(masked, pos);
            let trimmed = head.trim_start();
            // `let [mut] name[: Type] = …` — name is the token after let.
            if let Some(rest) = trimmed.strip_prefix("let ") {
                let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest.trim_start());
                if let Some(name) = leading_ident(rest.trim_start()) {
                    out.push(name);
                    continue;
                }
            }
            // Struct field `name: …HashMap<…>` — head is everything after
            // the previous `,`/`{`; take the token before the first `:`.
            let field_head = trimmed.rsplit(',').next().unwrap_or(trimmed).trim_start();
            let field_head = field_head.strip_prefix("pub ").unwrap_or(field_head);
            if let Some(colon) = field_head.find(':') {
                if let Some(name) = leading_ident(field_head[..colon].trim()) {
                    if field_head[..colon].trim() == name {
                        out.push(name);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The identifier starting at the head of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let end = s.bytes().position(|b| !(b.is_ascii_alphanumeric() || b == b'_')).unwrap_or(s.len());
    if end == 0 || s.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(s[..end].to_string())
    }
}

/// For a method occurrence at `pos` (the `.`), walk back over the
/// receiver chain and return its final path segment (`self.map.retain` →
/// `map`).
fn receiver_ident(masked: &str, pos: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = pos;
    while i > 0 {
        let b = bytes[i - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            i -= 1;
        } else {
            break;
        }
    }
    let chain = &masked[i..pos];
    let last = chain.rsplit('.').next()?;
    if last.is_empty() || last.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(last.to_string())
    }
}

/// `for … in <ident> {` / `for … in &<ident> {` where `<ident>` is a
/// hash collection — the iterated expression must be exactly the ident.
fn for_loop_hash_target(line: &str, hash_idents: &[String]) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("for ")?;
    let in_at = rest.find(" in ")?;
    let mut expr = rest[in_at + 4..].trim();
    if let Some(brace) = expr.find('{') {
        expr = expr[..brace].trim();
    }
    expr = expr.strip_prefix('&').unwrap_or(expr);
    expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
    expr = expr.strip_prefix("self.").unwrap_or(expr);
    if hash_idents.iter().any(|h| h == expr) {
        Some(expr.to_string())
    } else {
        None
    }
}
