//! revmax-audit: a zero-dependency determinism & safety lint pass over
//! the revmax workspace. Every rule mechanizes a bug class this repo has
//! actually shipped and fixed — NaN-panicking float comparators (PR 5),
//! `-0.0` from `f64` `Iterator::sum` (PR 5), lock-poison propagation
//! (PR 7), hash-order nondeterminism, wall-clock/env leaks into result
//! paths, and cache-key fields missing from `fingerprint()` (PR 9). The
//! rule catalog, scope matrix, and waiver policy live in `DESIGN.md` §14.
//!
//! Pipeline per file: [`lexer::mask_source`] blanks comments and
//! string/char literals (so prose never trips a rule), [`context::FileCtx`]
//! classifies the file (crate, `#[cfg(test)]` spans, tests/examples
//! directories), [`rules::scan_file`] runs the textual rules, and the
//! structural rules ([`structural::scan_structural`]) check cross-file
//! invariants over the whole walked set. Inline waivers
//! (`// audit: allow(<rule>) <reason>`) suppress individual findings;
//! bare or stale waivers are themselves findings.

pub mod context;
pub mod lexer;
pub mod rules;
pub mod structural;
pub mod walk;

use std::path::Path;

use context::FileCtx;
pub use rules::{Finding, RULES};

/// The result of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings (including waived ones), sorted by path/line/rule.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl AuditReport {
    /// Findings that fail the run.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Hand-rolled JSON export (the crate is zero-dep by design).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"files_scanned\": ");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"waived\": {}}}",
                json_str(&f.path),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
                f.waived
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Audit in-memory sources: `(display path, source text)` pairs. This is
/// the core entry point — the CLI reads files and calls this; tests feed
/// fixture tables directly.
pub fn audit_sources(files: &[(String, String)], rule_filter: Option<&str>) -> AuditReport {
    // Lex + classify once per file.
    let mut lexed = Vec::with_capacity(files.len());
    for (path, src) in files {
        let lx = lexer::mask_source(src);
        let ctx = FileCtx::classify(path, &lx.masked);
        lexed.push((ctx, lx));
    }

    // Textual rules per file.
    let mut per_file: Vec<Vec<Finding>> =
        lexed.iter().map(|(ctx, lx)| rules::scan_file(ctx, &lx.masked)).collect();

    // Structural rules over the whole set (masked text, display paths).
    let masked_set: Vec<(String, String)> =
        lexed.iter().map(|(ctx, lx)| (ctx.rel.clone(), lx.masked.clone())).collect();
    for f in structural::scan_structural(&structural::Targets { files: &masked_set }) {
        if let Some(k) = lexed.iter().position(|(ctx, _)| ctx.rel == f.path) {
            per_file[k].push(f);
        } else if let Some(first) = per_file.first_mut() {
            first.push(f);
        }
    }

    // Waivers per file, then flatten.
    let mut findings = Vec::new();
    for (k, (ctx, lx)) in lexed.iter().enumerate() {
        let mut file_findings = std::mem::take(&mut per_file[k]);
        let mut waivers = rules::parse_waivers(lx);
        rules::apply_waivers(&ctx.rel, &mut file_findings, &mut waivers);
        findings.extend(file_findings);
    }

    if let Some(rule) = rule_filter {
        findings.retain(|f| f.rule == rule);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    AuditReport { findings, files_scanned: files.len() }
}

/// Audit filesystem roots (directories are walked recursively, skipping
/// `vendor/`, `target/`, and VCS directories).
pub fn audit_paths(roots: &[&Path], rule_filter: Option<&str>) -> AuditReport {
    let mut files = Vec::new();
    for root in roots {
        for path in walk::collect_rs_files(root) {
            let Ok(bytes) = std::fs::read(&path) else { continue };
            let src = String::from_utf8_lossy(&bytes).into_owned();
            files.push((path.to_string_lossy().replace('\\', "/"), src));
        }
    }
    files.sort();
    files.dedup_by(|a, b| a.0 == b.0);
    audit_sources(&files, rule_filter)
}
