//! The structural rule tier: cross-file invariants that parse real
//! declarations out of the tree instead of pattern-matching lines.
//!
//! * `fingerprint-coverage` — every field of `Params` (and of
//!   `MarketLog`'s canonical pending state) must be folded into the
//!   corresponding `fingerprint()` body, or carry a reasoned waiver.
//!   This turns the PR-9 bug (a new `Params::objective` field missing
//!   from `fingerprint()`, letting a CVaR solve hit a cached Mean solve)
//!   into a compile-gate.
//! * `opcode-totality` — every `REQ_*` opcode constant in
//!   `serve/src/proto.rs` must have a paired `RESP_*` constant and appear
//!   in both the encoder and the decoder; response opcodes likewise. A
//!   new opcode cannot ship half-wired.
//! * `event-totality` — every `MarketLog` `Event` variant must be
//!   handled by `MarketLog::apply` and by the wire codec
//!   (`encode_event`/`decode_event`), so churn events can neither be
//!   silently unapplied nor undecodable.
//!
//! Parse failures are findings, not skips: renaming `Params` or moving
//! `fn fingerprint` without updating the audit fails the run instead of
//! silently disabling the gate.

use crate::rules::Finding;

/// The files a structural rule wants, matched by path suffix against the
/// walked set. `marker` is a sibling that proves we are scanning the real
/// tree (so fixture trees and `crates/audit` self-scans skip cleanly,
/// but a missing target file in the real tree is a finding).
pub struct Targets<'a> {
    /// `(suffix, masked source, display path)` of every walked file.
    pub files: &'a [(String, String)],
}

impl<'a> Targets<'a> {
    fn find(&self, suffix: &str) -> Option<&(String, String)> {
        self.files.iter().find(|(path, _)| path.ends_with(suffix))
    }

    fn have(&self, suffix: &str) -> bool {
        self.files.iter().any(|(path, _)| path.ends_with(suffix))
    }
}

/// Run every structural rule over the walked files.
pub fn scan_structural(targets: &Targets<'_>) -> Vec<Finding> {
    let mut out = Vec::new();

    // fingerprint-coverage over Params.
    run_target(
        targets,
        "crates/core/src/params.rs",
        "crates/core/src/pricing.rs",
        &mut out,
        |path, masked, out| {
            fingerprint_coverage(path, masked, "Params", out);
        },
    );
    // fingerprint-coverage over MarketLog's canonical pending state.
    run_target(
        targets,
        "crates/core/src/marketlog.rs",
        "crates/core/src/market.rs",
        &mut out,
        |path, masked, out| {
            fingerprint_coverage(path, masked, "MarketLog", out);
        },
    );
    // event-totality: Event variants handled by MarketLog::apply…
    if let Some((path, masked)) = targets.find("crates/core/src/marketlog.rs") {
        let variants = enum_variants(masked, "Event");
        match &variants {
            Some(vs) => check_variants_in_fn(path, masked, "apply", vs, &mut out),
            None => out.push(parse_failure(path, "event-totality", "enum Event")),
        }
        // …and by the wire codec on the serve side.
        if let Some((ppath, pmasked)) = targets.find("crates/serve/src/proto.rs") {
            if let Some(vs) = &variants {
                check_variants_in_fn(ppath, pmasked, "encode_event", vs, &mut out);
                check_variants_in_fn(ppath, pmasked, "decode_event", vs, &mut out);
            }
        }
    }
    // opcode-totality over the wire protocol.
    run_target(
        targets,
        "crates/serve/src/proto.rs",
        "crates/serve/src/daemon.rs",
        &mut out,
        opcode_totality,
    );

    out
}

/// Run `check` on `suffix` when present; if absent but `marker` (another
/// file of the same crate) was walked, the target has been moved or
/// deleted out from under the gate — that is a finding.
fn run_target(
    targets: &Targets<'_>,
    suffix: &str,
    marker: &str,
    out: &mut Vec<Finding>,
    check: impl Fn(&str, &str, &mut Vec<Finding>),
) {
    if let Some((path, masked)) = targets.find(suffix) {
        check(path, masked, out);
    } else if targets.have(marker) {
        out.push(Finding {
            path: suffix.to_string(),
            line: 1,
            rule: "fingerprint-coverage",
            message: format!("structural target `{suffix}` not found in the scanned tree"),
            waived: false,
        });
    }
}

fn parse_failure(path: &str, rule: &'static str, what: &str) -> Finding {
    Finding {
        path: path.to_string(),
        line: 1,
        rule,
        message: format!("could not parse `{what}` — structural gate would be silently disabled"),
        waived: false,
    }
}

// ---------------------------------------------------------------------
// fingerprint-coverage

/// Fields of `struct <name>` must each appear as `self.<field>` in the
/// file's `fn fingerprint` body.
fn fingerprint_coverage(path: &str, masked: &str, struct_name: &str, out: &mut Vec<Finding>) {
    let Some(fields) = struct_fields(masked, struct_name) else {
        out.push(parse_failure(path, "fingerprint-coverage", &format!("struct {struct_name}")));
        return;
    };
    let Some(body) = fn_body(masked, "fingerprint") else {
        out.push(parse_failure(path, "fingerprint-coverage", "fn fingerprint"));
        return;
    };
    for (line, field) in fields {
        if !token_present(&body, &format!("self.{field}")) {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: "fingerprint-coverage",
                message: format!(
                    "field `{field}` of `{struct_name}` is not folded into fingerprint() — \
                     two configs differing only here would collide in the solve cache (PR 9)"
                ),
                waived: false,
            });
        }
    }
}

/// `(1-based line, name)` of each field of `struct <name> {…}`.
fn struct_fields(masked: &str, name: &str) -> Option<Vec<(usize, String)>> {
    // Token-exact: `struct Params` must not match `struct ParamsBuilder`.
    let decl = format!("struct {name}");
    let mut pos = None;
    let mut from = 0usize;
    while let Some(k) = masked[from..].find(&decl) {
        let at = from + k;
        let end = at + decl.len();
        let next = masked.as_bytes().get(end).copied().unwrap_or(b' ');
        if !(next.is_ascii_alphanumeric() || next == b'_') {
            pos = Some(at);
            break;
        }
        from = end;
    }
    let pos = pos?;
    let open = masked[pos..].find('{')? + pos;
    let body = brace_span(masked, open)?;
    let base_line = line_at(masked, open);
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for (k, raw_line) in body.lines().enumerate() {
        let line = raw_line.trim();
        if depth == 0 {
            let line = line.strip_prefix("pub ").unwrap_or(line);
            if let Some(colon) = line.find(':') {
                let head = line[..colon].trim();
                if !head.is_empty()
                    && head
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
                {
                    fields.push((base_line + k, head.to_string()));
                }
            }
        }
        for b in raw_line.bytes() {
            match b {
                b'{' | b'(' | b'<' => depth += 1,
                b'}' | b')' | b'>' => depth -= 1,
                _ => {}
            }
        }
    }
    Some(fields)
}

// ---------------------------------------------------------------------
// enum / fn parsing shared by the totality rules

/// Variant names of `pub enum <name> {…}`.
fn enum_variants(masked: &str, name: &str) -> Option<Vec<String>> {
    let pos = masked.find(&format!("enum {name} "))?;
    let open = masked[pos..].find('{')? + pos;
    let body = brace_span(masked, open)?;
    let mut vars = Vec::new();
    let mut depth = 0i32;
    for raw_line in body.lines() {
        let line = raw_line.trim();
        if depth == 0 {
            let head: String = line
                .bytes()
                .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .map(char::from)
                .collect();
            if !head.is_empty() && head.as_bytes()[0].is_ascii_uppercase() {
                vars.push(head);
            }
        }
        for b in raw_line.bytes() {
            match b {
                b'{' | b'(' => depth += 1,
                b'}' | b')' => depth -= 1,
                _ => {}
            }
        }
    }
    if vars.is_empty() {
        None
    } else {
        Some(vars)
    }
}

fn check_variants_in_fn(
    path: &str,
    masked: &str,
    fn_name: &str,
    variants: &[String],
    out: &mut Vec<Finding>,
) {
    let Some(body) = fn_body(masked, fn_name) else {
        out.push(parse_failure(path, "event-totality", &format!("fn {fn_name}")));
        return;
    };
    for v in variants {
        if !token_present(&body, &format!("Event::{v}")) {
            out.push(Finding {
                path: path.to_string(),
                line: line_at(masked, masked.find(&format!("fn {fn_name}")).unwrap_or(0)),
                rule: "event-totality",
                message: format!(
                    "`Event::{v}` is not handled in `{fn_name}` — churn events must \
                                  be total across apply and the wire codec"
                ),
                waived: false,
            });
        }
    }
}

/// Body text of `fn <name>(…) {…}` (first occurrence of the definition).
fn fn_body(masked: &str, name: &str) -> Option<String> {
    let pat = format!("fn {name}(");
    let pos = masked.find(&pat)?;
    let open = masked[pos..].find('{')? + pos;
    brace_span(masked, open).map(|s| s.to_string())
}

/// The text between the brace at `open` and its match (exclusive).
fn brace_span(masked: &str, open: usize) -> Option<&str> {
    let bytes = masked.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&masked[open + 1..k]);
                }
            }
            _ => {}
        }
    }
    // Unbalanced (masked mid-edit): take the rest.
    Some(&masked[open + 1..])
}

fn line_at(s: &str, pos: usize) -> usize {
    s[..pos].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Token-boundary `contains`.
fn token_present(hay: &str, token: &str) -> bool {
    let mut from = 0usize;
    let bytes = hay.as_bytes();
    while let Some(k) = hay[from..].find(token) {
        let at = from + k;
        let end = at + token.len();
        let ok_before =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let ok_after =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            return true;
        }
        from = at + token.len();
    }
    false
}

// ---------------------------------------------------------------------
// opcode-totality

fn opcode_totality(path: &str, masked: &str, out: &mut Vec<Finding>) {
    let reqs = opcode_consts(masked, "REQ_");
    let resps = opcode_consts(masked, "RESP_");
    if reqs.is_empty() || resps.is_empty() {
        out.push(parse_failure(path, "opcode-totality", "REQ_/RESP_ opcode constant tables"));
        return;
    }
    let enc_req = fn_body(masked, "encode_request");
    let dec_req = fn_body(masked, "decode_request");
    let enc_resp = fn_body(masked, "encode_response");
    let dec_resp = fn_body(masked, "decode_response");
    for (body, what) in [
        (&enc_req, "encode_request"),
        (&dec_req, "decode_request"),
        (&enc_resp, "encode_response"),
        (&dec_resp, "decode_response"),
    ] {
        if body.is_none() {
            out.push(parse_failure(path, "opcode-totality", &format!("fn {what}")));
        }
    }

    let mut push = |line: usize, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            rule: "opcode-totality",
            message,
            waived: false,
        });
    };

    for (line, name, value) in &reqs {
        if *value >= 0x80 {
            push(
                *line,
                format!("request opcode {name} = {value:#04x} is in the response range (≥ 0x80)"),
            );
        }
        let suffix = name.trim_start_matches("REQ_");
        if !resps.iter().any(|(_, n, _)| n.trim_start_matches("RESP_") == suffix) {
            push(
                *line,
                format!(
                    "{name} has no paired RESP_{suffix} — every request needs a response opcode"
                ),
            );
        }
        for (body, what) in [(&enc_req, "encode_request"), (&dec_req, "decode_request")] {
            if let Some(b) = body {
                if !token_present(b, name) {
                    push(*line, format!("{name} is not used in {what} — a request opcode cannot ship half-wired"));
                }
            }
        }
    }
    for (line, name, value) in &resps {
        if *value < 0x80 {
            push(
                *line,
                format!("response opcode {name} = {value:#04x} is in the request range (< 0x80)"),
            );
        }
        for (body, what) in [(&enc_resp, "encode_response"), (&dec_resp, "decode_response")] {
            if let Some(b) = body {
                if !token_present(b, name) {
                    push(*line, format!("{name} is not used in {what} — a response opcode cannot ship half-wired"));
                }
            }
        }
    }
    // Duplicate opcode values within a side are ambiguous on the wire.
    for side in [&reqs, &resps] {
        for (i, (line, name, value)) in side.iter().enumerate() {
            if side[..i].iter().any(|(_, _, v)| v == value) {
                push(*line, format!("{name} reuses opcode value {value:#04x}"));
            }
        }
    }
}

/// `(line, name, value)` of each `pub const <prefix>NAME: u8 = <value>;`.
fn opcode_consts(masked: &str, prefix: &str) -> Vec<(usize, String, u32)> {
    let mut out = Vec::new();
    for (k, raw_line) in masked.lines().enumerate() {
        let line = raw_line.trim();
        let Some(rest) = line.strip_prefix("pub const ") else { continue };
        if !rest.starts_with(prefix) {
            continue;
        }
        let Some(colon) = rest.find(':') else { continue };
        let name = rest[..colon].trim().to_string();
        let Some(eq) = rest.find('=') else { continue };
        let value_text = rest[eq + 1..].trim().trim_end_matches(';').trim();
        let value = if let Some(hex) = value_text.strip_prefix("0x") {
            u32::from_str_radix(hex, 16).ok()
        } else {
            value_text.parse::<u32>().ok()
        };
        if let Some(v) = value {
            out.push((k + 1, name, v));
        }
    }
    out
}
