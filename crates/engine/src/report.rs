//! Sweep results: per-cell rows, cache statistics, a human table, a
//! bit-exact canonical serialization (the determinism suites compare
//! these), and a machine-readable export in the `BENCH_JSON` format the
//! vendored criterion harness writes (`BENCH_*.json` trajectory files) so
//! sweep timings and bench timings share one tooling path.

use crate::cache::CacheStats;
use crate::dag::{Cohort, DagSummary};
use crate::spec::{ScaleSpec, WtpDist};
use revmax_core::config::{BundleConfig, OfferNode, Outcome};
use revmax_core::prelude::Objective;
use std::fmt::Write as _;
use std::time::Duration;

/// Wall-clock statistics of one unique (uncached) solve over the spec's
/// `repeat` repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveTiming {
    pub min_ns: u128,
    pub mean_ns: u128,
    pub max_ns: u128,
    pub reps: u64,
}

impl SolveTiming {
    /// Summarize raw per-repetition durations.
    pub fn from_durations(durations: &[Duration]) -> Self {
        assert!(!durations.is_empty(), "at least one repetition required");
        let ns: Vec<u128> = durations.iter().map(Duration::as_nanos).collect();
        SolveTiming {
            min_ns: *ns.iter().min().unwrap(),
            mean_ns: ns.iter().sum::<u128>() / ns.len() as u128,
            max_ns: *ns.iter().max().unwrap(),
            reps: ns.len() as u64,
        }
    }
}

/// One grid cell's result. Everything except `cached` and `timing` is
/// part of the canonical serialization (wall clock is the one thing the
/// execution layout is allowed to change — `DESIGN.md` §6).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub method: String,
    pub scale: ScaleSpec,
    pub theta: f64,
    pub seed: u64,
    /// The cell's WTP distribution (rating map or heavy-tailed redraw).
    pub dist: WtpDist,
    /// The pricing objective the cell was solved under.
    pub objective: Objective,
    pub cohort: Cohort,
    pub n_users: usize,
    pub n_items: usize,
    /// The sub-market's content fingerprint (cache key sans method).
    pub fingerprint: u64,
    pub revenue: f64,
    pub components_revenue: f64,
    pub coverage: f64,
    pub gain: f64,
    /// Kupfer bundle-vs-separate revenue ratio of this cell's sub-market
    /// ([`revmax_core::metrics::kupfer_ratio`]) — a structural diagnostic
    /// independent of the method axis, so every method cell of one
    /// sub-market reports the same value (the `b/s` column).
    pub kupfer: f64,
    pub n_bundles: usize,
    /// The winning configuration itself — what the serving layer compiles
    /// into a `MenuIndex` (`revmax-serve`, `DESIGN.md` §9). Cached cells
    /// carry a clone of their source cell's configuration.
    pub config: BundleConfig,
    /// Bit-exact serialization of the solved configuration
    /// ([`canon_outcome`]).
    pub config_canon: String,
    /// True when this cell reused another cell's solve.
    pub cached: bool,
    /// Present iff this cell ran its own solve.
    pub timing: Option<SolveTiming>,
}

/// The result of [`crate::run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per grid cell, in the DAG's deterministic cell order.
    pub cells: Vec<CellResult>,
    pub cache: CacheStats,
    pub dag: DagSummary,
    /// Resolved engine fan-out width.
    pub threads: usize,
    pub wall: Duration,
}

/// Canonical bit-exact serialization of an offer tree (ids, raw price
/// bits, child structure) — the same shape the determinism suites use.
fn canon_node(n: &OfferNode, out: &mut String) {
    write!(out, "[{:?}@{:016x}", n.bundle.items(), n.price.to_bits()).unwrap();
    for c in &n.children {
        canon_node(c, out);
    }
    out.push(']');
}

/// Canonical bit-exact serialization of a solve outcome: revenues,
/// metrics, per-iteration trace, and the full configuration. Wall-clock
/// fields are excluded.
pub fn canon_outcome(o: &Outcome) -> String {
    let mut s = String::new();
    write!(
        s,
        "{}|rev:{:016x}|comp:{:016x}|cov:{:016x}|gain:{:016x}|",
        o.algorithm,
        o.revenue.to_bits(),
        o.components_revenue.to_bits(),
        o.coverage.to_bits(),
        o.gain.to_bits()
    )
    .unwrap();
    for p in o.trace.points() {
        write!(s, "it{}:{:016x}:{}|", p.iteration, p.revenue.to_bits(), p.n_bundles).unwrap();
    }
    for r in &o.config.roots {
        canon_node(r, &mut s);
    }
    s
}

impl SweepReport {
    /// Shorthand for the cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Bit-exact serialization of every cell **excluding wall clock and
    /// cache placement** (`cached`/`timing`): two sweeps of the same spec
    /// — at any thread count, cache on or off — must render identically.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        writeln!(s, "cells:{}", self.cells.len()).unwrap();
        for c in &self.cells {
            writeln!(
                s,
                "{}|{}|theta:{:016x}|seed:{}|{}|{}|{}|{}x{}|fp:{:016x}|bvs:{:016x}|{}",
                c.method,
                c.scale.name(),
                c.theta.to_bits(),
                c.seed,
                c.dist.id_fragment(),
                c.objective.id_fragment(),
                c.cohort,
                c.n_users,
                c.n_items,
                c.fingerprint,
                c.kupfer.to_bits(),
                c.config_canon,
            )
            .unwrap();
        }
        s
    }

    /// Column-aligned human table plus cache/DAG footer.
    pub fn render_table(&self) -> String {
        let header = [
            "method", "scale", "theta", "seed", "dist", "obj", "cohort", "users", "revenue",
            "gain", "b/s", "time", "",
        ];
        let mut rows: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
        for c in &self.cells {
            rows.push(vec![
                c.method.clone(),
                c.scale.name().into(),
                format!("{}", c.theta),
                format!("{}", c.seed),
                c.dist.id_fragment(),
                c.objective.id_fragment(),
                c.cohort.to_string(),
                format!("{}", c.n_users),
                format!("{:.2}", c.revenue),
                format!("{:+.2}%", c.gain * 100.0),
                format!("{:.3}", c.kupfer),
                match &c.timing {
                    Some(t) => format!("{:.3} ms", t.mean_ns as f64 / 1e6),
                    None => "-".into(),
                },
                if c.cached { "cached".into() } else { String::new() },
            ]);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|k| rows.iter().map(|r| r[k].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        writeln!(
            out,
            "cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            self.hit_rate() * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "dag: {} datasets -> {} markets -> {} partitions -> {} solves ({} edges)",
            self.dag.datasets,
            self.dag.markets,
            self.dag.partitions,
            self.dag.solves,
            self.dag.edges
        )
        .unwrap();
        writeln!(out, "threads: {}   wall: {:.2}s", self.threads, self.wall.as_secs_f64()).unwrap();
        out
    }

    /// Timing export in the `BENCH_JSON` entry shape. One entry per
    /// distinct `sweep_<scale>/theta<θ>/<method>` id — with `/<dist>` and
    /// `/<objective>` segments inserted before the method **only for
    /// non-default cells** (heavy-tailed dists, non-mean objectives), so
    /// the rating/mean ids stay byte-identical to what `perf_check`'s
    /// committed baselines map (`BENCH_pr3.json`'s
    /// `endtoend_small/<method>`). Entries aggregate over the
    /// **whole-market, uncached** cells of their id (cohort solves are a
    /// different workload and cached cells have no timing of their own).
    pub fn bench_entries(&self) -> Vec<BenchEntry> {
        let mut entries: Vec<BenchEntry> = Vec::new();
        for c in &self.cells {
            let Some(t) = &c.timing else { continue };
            if c.cohort != Cohort::Whole {
                continue;
            }
            let mut id = format!("sweep_{}/theta{}", c.scale.name(), c.theta);
            if c.dist != WtpDist::Rating {
                write!(id, "/{}", c.dist.id_fragment()).unwrap();
            }
            if c.objective != Objective::Mean {
                write!(id, "/{}", c.objective.id_fragment()).unwrap();
            }
            write!(id, "/{}", c.method.to_lowercase().replace(' ', "_")).unwrap();
            match entries.iter_mut().find(|e| e.id == id) {
                Some(e) => {
                    // Weighted mean over all repetitions of all cells.
                    let total = e.mean_ns * e.iters as u128 + t.mean_ns * t.reps as u128;
                    e.iters += t.reps;
                    e.mean_ns = total / e.iters as u128;
                    e.min_ns = e.min_ns.min(t.min_ns);
                    e.max_ns = e.max_ns.max(t.max_ns);
                }
                None => entries.push(BenchEntry {
                    id,
                    mean_ns: t.mean_ns,
                    min_ns: t.min_ns,
                    max_ns: t.max_ns,
                    iters: t.reps,
                }),
            }
        }
        entries
    }
}

/// One benchmark estimate in the `BENCH_JSON` interchange format (the
/// shape the vendored criterion harness exports and the `BENCH_*.json`
/// trajectory files commit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    pub id: String,
    pub mean_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
    pub iters: u64,
}

/// Serialize entries as the `BENCH_JSON` array (byte-compatible with the
/// vendored criterion's writer).
pub fn render_bench_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("[\n");
    for (k, e) in entries.iter().enumerate() {
        if k > 0 {
            out.push_str(",\n");
        }
        write!(
            out,
            "  {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}}}",
            e.id, e.mean_ns, e.min_ns, e.max_ns, e.iters
        )
        .unwrap();
    }
    out.push_str("\n]\n");
    out
}

/// Parse a `BENCH_JSON` file (the exact line-oriented format
/// [`render_bench_json`] and the vendored criterion emit; anything else is
/// dropped, best effort).
pub fn parse_bench_json(body: &str) -> Vec<BenchEntry> {
    let field = |line: &str, key: &str| -> Option<u128> {
        let tail = &line[line.find(key)? + key.len()..];
        let digits: String = tail
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    };
    body.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let id = line.strip_prefix("{\"id\": \"")?.split('"').next()?.to_string();
            Some(BenchEntry {
                id,
                mean_ns: field(line, "\"mean_ns\"")?,
                min_ns: field(line, "\"min_ns\"")?,
                max_ns: field(line, "\"max_ns\"")?,
                iters: field(line, "\"iters\"")? as u64,
            })
        })
        .collect()
}

/// Write entries to `path`, merging with whatever valid entries the file
/// already holds (same-id entries are superseded) — the same adoption
/// semantics the vendored criterion uses, so a sweep export and a
/// `cargo bench` export can accumulate into one trajectory file.
pub fn write_bench_json(path: &str, entries: &[BenchEntry]) -> std::io::Result<()> {
    let mut merged: Vec<BenchEntry> = match std::fs::read_to_string(path) {
        Ok(existing) => parse_bench_json(&existing),
        Err(_) => Vec::new(),
    };
    merged.retain(|e| entries.iter().all(|n| n.id != e.id));
    merged.extend(entries.iter().cloned());
    std::fs::write(path, render_bench_json(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, mean: u128) -> BenchEntry {
        BenchEntry { id: id.into(), mean_ns: mean, min_ns: mean - 1, max_ns: mean + 1, iters: 3 }
    }

    #[test]
    fn bench_json_round_trips() {
        let entries = vec![entry("sweep_small/theta0/components", 24_500), entry("g/b", 9)];
        let parsed = parse_bench_json(&render_bench_json(&entries));
        assert_eq!(parsed, entries);
        assert!(parse_bench_json("garbage").is_empty());
    }

    #[test]
    fn bench_json_parses_committed_baseline_shape() {
        // The exact line shape BENCH_pr3.json commits.
        let body = "[\n  {\"id\": \"endtoend_small/components\", \"mean_ns\": 24602, \
                    \"min_ns\": 23566, \"max_ns\": 26211, \"iters\": 15370}\n]\n";
        let parsed = parse_bench_json(body);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, "endtoend_small/components");
        assert_eq!(parsed[0].mean_ns, 24602);
        assert_eq!(parsed[0].iters, 15370);
    }

    #[test]
    fn write_merges_and_supersedes() {
        let dir = std::env::temp_dir().join(format!("revmax_engine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        write_bench_json(path, &[entry("a", 10), entry("b", 20)]).unwrap();
        write_bench_json(path, &[entry("b", 25), entry("c", 30)]).unwrap();
        let merged = parse_bench_json(&std::fs::read_to_string(path).unwrap());
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.iter().find(|e| e.id == "b").unwrap().mean_ns, 25);
        assert_eq!(merged.iter().find(|e| e.id == "a").unwrap().mean_ns, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timing_summary() {
        let t = SolveTiming::from_durations(&[
            Duration::from_nanos(10),
            Duration::from_nanos(30),
            Duration::from_nanos(20),
        ]);
        assert_eq!(t, SolveTiming { min_ns: 10, mean_ns: 20, max_ns: 30, reps: 3 });
    }
}
