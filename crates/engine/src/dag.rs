//! Sweep-grid expansion into a job DAG.
//!
//! A [`crate::spec::SweepSpec`] expands into four job stages with
//! dependency edges pointing upstream:
//!
//! ```text
//! Dataset(scale, seed) ── Market(θ) ── Partition(k) ── Solve(cohort, method)
//! ```
//!
//! Expansion **deduplicates shared prefixes**: a repeated seed value maps
//! to the one `Dataset` node it already created, and a repeated
//! `(scale, seed, θ, dist, objective)` tuple maps to the one `Market`
//! node — so duplicate axis values cost nothing upstream of the solve
//! stage (the solve cells themselves are collapsed later by the
//! fingerprint-keyed solve cache, which also catches duplicates the grid
//! structure cannot see). Jobs are appended in one deterministic grid
//! order (scale → seed → θ → dist → objective → cohort → method), and
//! results are assembled in cell order regardless of the
//! execution interleaving — the `DESIGN.md` §6 contract at fleet scale.

use crate::spec::{ScaleSpec, SweepSpec, WtpDist};
use revmax_core::prelude::Objective;

/// Index into [`JobDag::jobs`].
pub type JobId = usize;

/// Which sub-market a solve cell runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cohort {
    /// The unrestricted market.
    Whole,
    /// Activity cohort `k` (of the spec's `cohorts` partition).
    Seg(u32),
}

impl std::fmt::Display for Cohort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cohort::Whole => write!(f, "all"),
            Cohort::Seg(k) => write!(f, "c{k}"),
        }
    }
}

/// The deterministic per-market solve-cell axis: the whole market first,
/// then each activity cohort in order, with the method list inner. One
/// definition shared by [`JobDag::expand`] and the live engine
/// (`crate::live`), so an incremental re-solve's cells line up one-to-one
/// with the sweep cells of the same market.
pub fn cell_axis(cohorts: usize, methods: &[String]) -> Vec<(Cohort, String)> {
    let mut cohort_axis = vec![Cohort::Whole];
    cohort_axis.extend((0..cohorts as u32).map(Cohort::Seg));
    let mut out = Vec::with_capacity(cohort_axis.len() * methods.len());
    for &cohort in &cohort_axis {
        for method in methods {
            out.push((cohort, method.clone()));
        }
    }
    out
}

/// One node of the DAG. Stage references (`dataset`, `market`,
/// `partition`) are indices into the respective stage lists
/// ([`JobDag::datasets`] etc.), which is what the executor consumes;
/// [`Job::deps`] carries the same edges as raw [`JobId`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Generate the synthetic ratings dataset for `(scale, seed)`.
    Dataset { scale: ScaleSpec, seed: u64 },
    /// Build a market (WTP matrix + θ/objective-bearing params) from a
    /// dataset, under one WTP distribution.
    Market { dataset: usize, theta: f64, dist: WtpDist, objective: Objective },
    /// Partition a market into activity cohorts (present iff `cohorts ≥ 1`).
    Partition { market: usize, cohorts: usize },
    /// Run one configurator on one cohort of one market.
    Solve { market: usize, cohort: Cohort, method: String },
}

/// A DAG node: its kind plus upstream dependencies.
#[derive(Debug, Clone)]
pub struct Job {
    pub kind: JobKind,
    pub deps: Vec<JobId>,
}

/// Report metadata of one solve cell, resolved at expansion time so the
/// report never has to chase dependency edges.
#[derive(Debug, Clone)]
pub struct CellMeta {
    pub job: JobId,
    /// Stage index into [`JobDag::markets`].
    pub market: usize,
    pub scale: ScaleSpec,
    pub seed: u64,
    pub theta: f64,
    /// The cell's WTP distribution (rating map or heavy-tailed redraw).
    pub dist: WtpDist,
    /// The cell's pricing objective.
    pub objective: Objective,
    pub cohort: Cohort,
    pub method: String,
}

/// The expanded sweep: all jobs plus per-stage index lists (each entry a
/// [`JobId`]) in deterministic order.
#[derive(Debug, Clone)]
pub struct JobDag {
    pub jobs: Vec<Job>,
    pub datasets: Vec<JobId>,
    pub markets: Vec<JobId>,
    pub partitions: Vec<JobId>,
    /// One entry per solve cell, in grid order.
    pub cells: Vec<CellMeta>,
}

/// Stage/edge counts for the report footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagSummary {
    pub datasets: usize,
    pub markets: usize,
    pub partitions: usize,
    pub solves: usize,
    pub edges: usize,
}

impl JobDag {
    /// Expand a spec into the job DAG (see the module docs for ordering
    /// and deduplication guarantees).
    pub fn expand(spec: &SweepSpec) -> JobDag {
        let mut dag = JobDag {
            jobs: Vec::new(),
            datasets: Vec::new(),
            markets: Vec::new(),
            partitions: Vec::new(),
            cells: Vec::new(),
        };
        // (key, stage index) lists; linear scans keep the lookup
        // deterministic with no hashing of f64 keys.
        let mut dataset_keys: Vec<(ScaleSpec, u64)> = Vec::new();
        // (dataset idx, θ bits, dist, objective)
        let mut market_keys: Vec<(usize, u64, WtpDist, Objective)> = Vec::new();
        let mut partition_of: Vec<JobId> = Vec::new(); // per market stage index
        let dists = spec.wtp_dists();

        for &scale in &spec.scales {
            for &seed in &spec.seeds {
                let ds_idx = match dataset_keys.iter().position(|&k| k == (scale, seed)) {
                    Some(i) => i,
                    None => {
                        let job = dag.push(JobKind::Dataset { scale, seed }, Vec::new());
                        dataset_keys.push((scale, seed));
                        dag.datasets.push(job);
                        dag.datasets.len() - 1
                    }
                };
                for &theta in &spec.thetas {
                    for &dist in &dists {
                        for &objective in &spec.objectives {
                            let mkey = (ds_idx, theta.to_bits(), dist, objective);
                            let mk_idx = match market_keys.iter().position(|&k| k == mkey) {
                                Some(i) => i,
                                None => {
                                    let dep = dag.datasets[ds_idx];
                                    let job = dag.push(
                                        JobKind::Market { dataset: ds_idx, theta, dist, objective },
                                        vec![dep],
                                    );
                                    market_keys.push(mkey);
                                    dag.markets.push(job);
                                    let mk = dag.markets.len() - 1;
                                    if spec.cohorts >= 1 {
                                        let pj = dag.push(
                                            JobKind::Partition {
                                                market: mk,
                                                cohorts: spec.cohorts,
                                            },
                                            vec![job],
                                        );
                                        dag.partitions.push(pj);
                                        partition_of.push(pj);
                                    }
                                    mk
                                }
                            };
                            let upstream = if spec.cohorts >= 1 {
                                partition_of[mk_idx]
                            } else {
                                dag.markets[mk_idx]
                            };
                            for (cohort, method) in cell_axis(spec.cohorts, &spec.methods) {
                                let job = dag.push(
                                    JobKind::Solve {
                                        market: mk_idx,
                                        cohort,
                                        method: method.clone(),
                                    },
                                    vec![upstream],
                                );
                                dag.cells.push(CellMeta {
                                    job,
                                    market: mk_idx,
                                    scale,
                                    seed,
                                    theta,
                                    dist,
                                    objective,
                                    cohort,
                                    method,
                                });
                            }
                        }
                    }
                }
            }
        }
        dag
    }

    fn push(&mut self, kind: JobKind, deps: Vec<JobId>) -> JobId {
        self.jobs.push(Job { kind, deps });
        self.jobs.len() - 1
    }

    /// Stage/edge counts.
    pub fn summary(&self) -> DagSummary {
        DagSummary {
            datasets: self.datasets.len(),
            markets: self.markets.len(),
            partitions: self.partitions.len(),
            solves: self.cells.len(),
            edges: self.jobs.iter().map(|j| j.deps.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seeds: Vec<u64>, thetas: Vec<f64>, cohorts: usize) -> SweepSpec {
        SweepSpec {
            methods: vec!["Components".into(), "Pure Matching".into()],
            scales: vec![ScaleSpec::Tiny],
            thetas,
            seeds,
            cohorts,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn grid_expands_in_deterministic_order() {
        let dag = JobDag::expand(&spec(vec![1, 2], vec![0.0, 0.05], 0));
        let s = dag.summary();
        assert_eq!(s.datasets, 2);
        assert_eq!(s.markets, 4);
        assert_eq!(s.partitions, 0);
        assert_eq!(s.solves, 2 * 2 * 2); // seeds × θ × methods, whole market
                                         // Cell order: seed-major, then θ, then method.
        assert_eq!(dag.cells[0].seed, 1);
        assert_eq!(dag.cells[0].method, "Components");
        assert_eq!(dag.cells[1].method, "Pure Matching");
        assert_eq!(dag.cells[2].theta, 0.05);
        assert!(dag.cells.iter().all(|c| c.cohort == Cohort::Whole));
    }

    #[test]
    fn duplicate_axis_values_share_upstream_jobs() {
        let dag = JobDag::expand(&spec(vec![7, 7], vec![0.0], 0));
        let s = dag.summary();
        assert_eq!(s.datasets, 1, "repeated seed must reuse the dataset job");
        assert_eq!(s.markets, 1, "repeated (scale, seed, θ) must reuse the market job");
        assert_eq!(s.solves, 4, "solve cells are expanded verbatim (cache collapses them)");
        assert_eq!(dag.cells[0].market, dag.cells[2].market);
    }

    #[test]
    fn cohort_axis_adds_partition_jobs_and_cells() {
        let dag = JobDag::expand(&spec(vec![1], vec![0.0], 3));
        let s = dag.summary();
        assert_eq!(s.partitions, 1);
        assert_eq!(s.solves, 2 * (1 + 3)); // methods × (whole + 3 cohorts)
        assert_eq!(dag.cells[0].cohort, Cohort::Whole);
        assert_eq!(dag.cells[2].cohort, Cohort::Seg(0));
        // Every solve depends on the partition job; the partition on the
        // market; the market on the dataset.
        let solve = &dag.jobs[dag.cells[2].job];
        assert_eq!(solve.deps, vec![dag.partitions[0]]);
        assert_eq!(dag.jobs[dag.partitions[0]].deps, vec![dag.markets[0]]);
        assert_eq!(dag.jobs[dag.markets[0]].deps, vec![dag.datasets[0]]);
        assert!(dag.jobs[dag.datasets[0]].deps.is_empty());
    }

    #[test]
    fn cell_axis_matches_expansion_order() {
        let methods = vec!["Components".to_string(), "Pure Matching".to_string()];
        let axis = cell_axis(2, &methods);
        assert_eq!(axis.len(), 6);
        assert_eq!(axis[0], (Cohort::Whole, "Components".to_string()));
        assert_eq!(axis[1], (Cohort::Whole, "Pure Matching".to_string()));
        assert_eq!(axis[2].0, Cohort::Seg(0));
        let dag = JobDag::expand(&spec(vec![1], vec![0.0], 2));
        let from_dag: Vec<(Cohort, String)> =
            dag.cells.iter().map(|c| (c.cohort, c.method.clone())).collect();
        assert_eq!(from_dag, axis);
    }

    #[test]
    fn dist_and_objective_axes_key_the_market_stage() {
        use crate::spec::DistKind;
        let mut sp = spec(vec![1], vec![0.0], 0);
        sp.dists = vec![DistKind::Rating, DistKind::Pareto];
        sp.tails = vec![2.0];
        sp.objectives = vec![Objective::Mean, Objective::Cvar(0.9)];
        let dag = JobDag::expand(&sp);
        let s = dag.summary();
        assert_eq!(s.datasets, 1, "one dataset feeds every dist/objective market");
        assert_eq!(s.markets, 4, "2 dists x 2 objectives");
        assert_eq!(s.solves, 2 * 4);
        // Grid order: dist outer, objective inner.
        assert_eq!(dag.cells[0].dist, WtpDist::Rating);
        assert_eq!(dag.cells[0].objective, Objective::Mean);
        assert_eq!(dag.cells[2].objective, Objective::Cvar(0.9));
        assert_eq!(dag.cells[4].dist, WtpDist::Pareto { alpha: 2.0 });
        // Repeating an axis value reuses the market job.
        sp.objectives = vec![Objective::Mean, Objective::Mean];
        assert_eq!(JobDag::expand(&sp).summary().markets, 2);
    }

    #[test]
    fn cohort_display_names() {
        assert_eq!(Cohort::Whole.to_string(), "all");
        assert_eq!(Cohort::Seg(2).to_string(), "c2");
    }
}
