//! The sweep specification: a grid over configurators, scales, θ values,
//! seeds, and a cohort-partition axis, plus execution knobs.
//!
//! Specs parse from a tiny hand-rolled `key=value` format (values CSV) so
//! the `sweep` binary needs no external dependencies (vendor policy):
//!
//! ```text
//! # one key=value per line (or per CLI argument); '#' starts a comment
//! methods=all            # or CSV of registry names / snake aliases
//! scales=small           # tiny|small|medium|paper (CSV)
//! thetas=0,0.05          # bundling coefficients (CSV of f64)
//! seeds=2015,2015        # generator seeds; repeats are legal — the solve
//!                        # cache collapses the duplicate cells
//! cohorts=3              # 0 = whole market only; k ≥ 1 adds k activity
//!                        # cohorts alongside the whole-market cell
//! repeat=5               # timing repetitions per unique solve
//! budget_ms=40           # keep repeating short solves until this much
//!                        # measured time accumulates (0 = off) — wall
//!                        # clock only, results are unaffected
//! cache=on               # on|off — fingerprint-keyed solve cache
//! threads=auto           # engine fan-out (auto = REVMAX_THREADS / cores)
//! ```

use revmax_core::algorithms;
use revmax_core::prelude::Threads;
use revmax_dataset::AmazonBooksConfig;

/// Dataset scale presets for the sweep axes. `Tiny` is an
/// engine-test-only preset (a few dozen consumers, fast in debug builds);
/// the other three mirror the experiment harness presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleSpec {
    Tiny,
    Small,
    Medium,
    Paper,
}

impl ScaleSpec {
    /// Lower-case name (spec syntax and report rendering).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleSpec::Tiny => "tiny",
            ScaleSpec::Small => "small",
            ScaleSpec::Medium => "medium",
            ScaleSpec::Paper => "paper",
        }
    }

    /// Parse a spec-syntax scale name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "tiny" => Ok(ScaleSpec::Tiny),
            "small" => Ok(ScaleSpec::Small),
            "medium" => Ok(ScaleSpec::Medium),
            "paper" => Ok(ScaleSpec::Paper),
            other => Err(format!("unknown scale '{other}' (tiny|small|medium|paper)")),
        }
    }

    /// The generator configuration behind this preset.
    pub fn config(&self) -> AmazonBooksConfig {
        match self {
            ScaleSpec::Tiny => AmazonBooksConfig {
                n_users: 48,
                n_items: 24,
                min_degree: 3,
                mean_extra_degree: 4.0,
                ..AmazonBooksConfig::small()
            },
            ScaleSpec::Small => AmazonBooksConfig::small(),
            ScaleSpec::Medium => AmazonBooksConfig::medium(),
            ScaleSpec::Paper => AmazonBooksConfig::paper(),
        }
    }
}

/// A batch sweep: the grid axes plus execution knobs. Axis values are
/// kept verbatim — **duplicates are legal** (e.g. a repeated seed) and are
/// collapsed by the job DAG and the solve cache rather than rejected, so a
/// spec can deliberately exercise the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Canonical registry names ([`revmax_core::algorithms::registry`]).
    pub methods: Vec<String>,
    /// Dataset scales.
    pub scales: Vec<ScaleSpec>,
    /// Bundling coefficients θ.
    pub thetas: Vec<f64>,
    /// Generator seeds.
    pub seeds: Vec<u64>,
    /// `0` solves the whole market only; `k ≥ 1` additionally partitions
    /// each market into `k` activity cohorts (balanced by rating count)
    /// and solves every cohort, so per-segment menus can be compared
    /// against the whole-market menu.
    pub cohorts: usize,
    /// Timing repetitions per unique solve (the report keeps min/mean/max).
    pub repeat: usize,
    /// Measurement budget per unique solve, in milliseconds. When > 0, a
    /// solve keeps repeating beyond `repeat` until this much measured time
    /// accumulates (capped at [`crate::MAX_TIMED_REPS`]), criterion-style,
    /// so microsecond-scale solves report warm means a `perf_check`
    /// comparison against a criterion baseline can trust. Wall clock only
    /// — the solved outcomes are bit-identical with the budget on or off.
    pub budget_ms: u64,
    /// Fingerprint-keyed solve cache on/off.
    pub cache: bool,
    /// Engine fan-out (the per-solve inner thread count is pinned to 1 —
    /// `DESIGN.md` §8's no-nested-fan-out rule).
    pub threads: Threads,
}

impl Default for SweepSpec {
    /// All seven registry methods, small scale, θ = 0, seed 2015, whole
    /// market only, one repetition, cache on, auto fan-out.
    fn default() -> Self {
        SweepSpec {
            methods: algorithms::registry().iter().map(|(n, _)| n.to_string()).collect(),
            scales: vec![ScaleSpec::Small],
            thetas: vec![0.0],
            seeds: vec![2015],
            cohorts: 0,
            repeat: 1,
            budget_ms: 0,
            cache: true,
            threads: Threads::Auto,
        }
    }
}

/// Lower-case, separator-free normal form used to match method aliases
/// (`pure_matching`, `Pure Matching`, `pure-matching` all agree).
fn norm(s: &str) -> String {
    s.chars().filter(|c| ![' ', '_', '-'].contains(c)).flat_map(char::to_lowercase).collect()
}

/// Resolve one method name (canonical or snake/kebab alias) to its
/// canonical registry name.
pub fn resolve_method(name: &str) -> Result<String, String> {
    let want = norm(name);
    for (canonical, _) in algorithms::registry() {
        if norm(canonical) == want {
            return Ok(canonical.to_string());
        }
    }
    let known: Vec<&str> = algorithms::registry().iter().map(|(n, _)| *n).collect();
    Err(format!("unknown method '{name}' (known: {})", known.join(", ")))
}

impl SweepSpec {
    /// Apply one `key=value` assignment (spec-file line or CLI argument).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let csv = || value.split(',').map(str::trim).filter(|s| !s.is_empty());
        match key {
            "methods" => {
                let mut out = Vec::new();
                for m in csv() {
                    match m {
                        "all" => {
                            out.extend(algorithms::registry().iter().map(|(n, _)| n.to_string()))
                        }
                        "proposed" => out.extend(
                            ["Pure Matching", "Pure Greedy", "Mixed Matching", "Mixed Greedy"]
                                .iter()
                                .map(|s| s.to_string()),
                        ),
                        other => out.push(resolve_method(other)?),
                    }
                }
                self.methods = out;
            }
            "scale" | "scales" => {
                self.scales = csv().map(ScaleSpec::parse).collect::<Result<_, _>>()?;
            }
            "theta" | "thetas" => {
                self.thetas = csv()
                    .map(|s| s.parse::<f64>().map_err(|_| format!("theta '{s}' is not a number")))
                    .collect::<Result<_, _>>()?;
            }
            "seed" | "seeds" => {
                self.seeds = csv()
                    .map(|s| s.parse::<u64>().map_err(|_| format!("seed '{s}' is not a u64")))
                    .collect::<Result<_, _>>()?;
            }
            "cohorts" => {
                self.cohorts =
                    value.parse().map_err(|_| format!("cohorts '{value}' is not a usize"))?;
            }
            "repeat" => {
                self.repeat =
                    value.parse().map_err(|_| format!("repeat '{value}' is not a usize"))?;
            }
            "budget_ms" => {
                self.budget_ms =
                    value.parse().map_err(|_| format!("budget_ms '{value}' is not a u64"))?;
            }
            "cache" => {
                self.cache = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("cache '{other}' (expected on|off)")),
                };
            }
            "threads" => {
                self.threads = if value == "auto" {
                    Threads::Auto
                } else {
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("threads '{value}' is not auto or a usize"))?;
                    if n == 0 {
                        return Err("threads must be >= 1".into());
                    }
                    Threads::Fixed(n)
                };
            }
            other => return Err(format!("unknown spec key '{other}'")),
        }
        Ok(())
    }

    /// Apply a whole spec text: one `key=value` per line, `#` comments and
    /// blank lines ignored.
    pub fn apply_text(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got '{line}'", lineno + 1))?;
            self.apply(key.trim(), value.trim())
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(())
    }

    /// Check the spec is runnable: non-empty axes, `repeat ≥ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if self.methods.is_empty() {
            return Err("no methods selected".into());
        }
        for m in &self.methods {
            resolve_method(m)?;
        }
        if self.scales.is_empty() || self.thetas.is_empty() || self.seeds.is_empty() {
            return Err("every axis (scales, thetas, seeds) needs at least one value".into());
        }
        for &t in &self.thetas {
            if t <= -1.0 || t.is_nan() {
                return Err(format!("theta must be > -1, got {t}"));
            }
        }
        if self.repeat == 0 {
            return Err("repeat must be >= 1".into());
        }
        self.threads.validate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_seven_methods() {
        let spec = SweepSpec::default();
        assert_eq!(spec.methods.len(), 7);
        spec.validate().unwrap();
    }

    #[test]
    fn method_aliases_resolve() {
        assert_eq!(resolve_method("pure_matching").unwrap(), "Pure Matching");
        assert_eq!(resolve_method("Mixed Greedy").unwrap(), "Mixed Greedy");
        assert_eq!(resolve_method("mixed-freqitemset").unwrap(), "Mixed FreqItemset");
        assert!(resolve_method("no such").is_err());
    }

    #[test]
    fn apply_parses_every_key() {
        let mut spec = SweepSpec::default();
        spec.apply("methods", "components,pure_matching").unwrap();
        spec.apply("scales", "tiny,small").unwrap();
        spec.apply("thetas", "0,-0.05,0.1").unwrap();
        spec.apply("seeds", "2015,2015").unwrap();
        spec.apply("cohorts", "3").unwrap();
        spec.apply("repeat", "5").unwrap();
        spec.apply("budget_ms", "40").unwrap();
        spec.apply("cache", "off").unwrap();
        spec.apply("threads", "4").unwrap();
        assert_eq!(spec.methods, vec!["Components", "Pure Matching"]);
        assert_eq!(spec.scales, vec![ScaleSpec::Tiny, ScaleSpec::Small]);
        assert_eq!(spec.thetas, vec![0.0, -0.05, 0.1]);
        assert_eq!(spec.seeds, vec![2015, 2015]); // duplicates preserved
        assert_eq!(spec.cohorts, 3);
        assert_eq!(spec.repeat, 5);
        assert_eq!(spec.budget_ms, 40);
        assert!(!spec.cache);
        assert_eq!(spec.threads, Threads::Fixed(4));
        spec.validate().unwrap();
    }

    #[test]
    fn spec_text_with_comments_parses() {
        let mut spec = SweepSpec::default();
        spec.apply_text("# demo sweep\nmethods=all\n\nthetas=0,0.05 # complements too\ncache=on\n")
            .unwrap();
        assert_eq!(spec.methods.len(), 7);
        assert_eq!(spec.thetas, vec![0.0, 0.05]);
    }

    #[test]
    fn bad_inputs_error_with_context() {
        let mut spec = SweepSpec::default();
        assert!(spec.apply("thetas", "abc").is_err());
        assert!(spec.apply("nope", "1").is_err());
        assert!(spec.apply_text("methods").is_err());
        assert!(spec.apply("threads", "0").is_err());
        spec.thetas = vec![-1.5];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn tiny_scale_generates_quickly_and_nonempty() {
        let data = ScaleSpec::Tiny.config().generate(7);
        assert!(data.n_users() >= ScaleSpec::Tiny.config().min_degree);
        assert!(data.n_items() > 0);
    }
}
