//! The sweep specification: a grid over configurators, scales, θ values,
//! seeds, WTP distributions, pricing objectives, and a cohort-partition
//! axis, plus execution knobs.
//!
//! Specs parse from a tiny hand-rolled `key=value` format (values CSV) so
//! the `sweep` binary needs no external dependencies (vendor policy):
//!
//! ```text
//! # one key=value per line (or per CLI argument); '#' starts a comment
//! methods=all            # or CSV of registry names / snake aliases
//! scales=small           # tiny|small|medium|paper (CSV)
//! thetas=0,0.05          # bundling coefficients (CSV of f64)
//! seeds=2015,2015        # generator seeds; repeats are legal — the solve
//!                        # cache collapses the duplicate cells
//! dists=rating,pareto    # WTP magnitudes: rating|pareto|lognormal (CSV)
//! tails=4,2,1.5          # tail knobs — each heavy-tailed dist kind is
//!                        # crossed with every tail value (α for pareto,
//!                        # σ for lognormal); rating ignores them
//! objectives=mean,cvar:0.9  # pricing objective axis (mean|cvar:Q|quantile:Q)
//! cohorts=3              # 0 = whole market only; k ≥ 1 adds k activity
//!                        # cohorts alongside the whole-market cell
//! repeat=5               # timing repetitions per unique solve
//! budget_ms=40           # keep repeating short solves until this much
//!                        # measured time accumulates (0 = off) — wall
//!                        # clock only, results are unaffected
//! cache=on               # on|off — fingerprint-keyed solve cache
//! threads=auto           # engine fan-out (auto = REVMAX_THREADS / cores)
//! ```

use revmax_core::algorithms;
use revmax_core::prelude::{Objective, Threads};
use revmax_dataset::{AmazonBooksConfig, TailDist};

/// Dataset scale presets for the sweep axes. `Tiny` is an
/// engine-test-only preset (a few dozen consumers, fast in debug builds);
/// the other three mirror the experiment harness presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleSpec {
    Tiny,
    Small,
    Medium,
    Paper,
}

impl ScaleSpec {
    /// Lower-case name (spec syntax and report rendering).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleSpec::Tiny => "tiny",
            ScaleSpec::Small => "small",
            ScaleSpec::Medium => "medium",
            ScaleSpec::Paper => "paper",
        }
    }

    /// Parse a spec-syntax scale name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "tiny" => Ok(ScaleSpec::Tiny),
            "small" => Ok(ScaleSpec::Small),
            "medium" => Ok(ScaleSpec::Medium),
            "paper" => Ok(ScaleSpec::Paper),
            other => Err(format!("unknown scale '{other}' (tiny|small|medium|paper)")),
        }
    }

    /// The generator configuration behind this preset.
    pub fn config(&self) -> AmazonBooksConfig {
        match self {
            ScaleSpec::Tiny => AmazonBooksConfig {
                n_users: 48,
                n_items: 24,
                min_degree: 3,
                mean_extra_degree: 4.0,
                ..AmazonBooksConfig::small()
            },
            ScaleSpec::Small => AmazonBooksConfig::small(),
            ScaleSpec::Medium => AmazonBooksConfig::medium(),
            ScaleSpec::Paper => AmazonBooksConfig::paper(),
        }
    }
}

/// One WTP-distribution *kind* on the spec's `dists` axis; heavy-tailed
/// kinds are crossed with every `tails` knob by [`SweepSpec::wtp_dists`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// The paper's λ-linear rating→WTP map (tail knobs ignored).
    Rating,
    /// Pareto magnitudes, tail index α per `tails` entry.
    Pareto,
    /// Lognormal magnitudes, log-scale σ per `tails` entry.
    LogNormal,
}

impl DistKind {
    /// Parse a spec-syntax dist kind.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "rating" => Ok(DistKind::Rating),
            "pareto" => Ok(DistKind::Pareto),
            "lognormal" => Ok(DistKind::LogNormal),
            other => Err(format!("unknown dist '{other}' (rating|pareto|lognormal)")),
        }
    }
}

/// A fully-resolved WTP distribution of one sweep cell: the rating map or
/// a heavy-tailed magnitude redraw with its tail knob bound
/// ([`revmax_dataset::heavytail`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WtpDist {
    /// λ-linear rating→WTP map (the paper's default).
    Rating,
    /// Pareto magnitudes with tail index `alpha` (smaller = heavier).
    Pareto { alpha: f64 },
    /// Lognormal magnitudes with log-scale `sigma` (larger = heavier).
    LogNormal { sigma: f64 },
}

impl WtpDist {
    /// Filesystem/bench-id safe fragment (no separators): `rating`,
    /// `pareto2`, `lognormal1.5`. Doubles as the report-table label.
    pub fn id_fragment(&self) -> String {
        match *self {
            WtpDist::Rating => "rating".to_string(),
            WtpDist::Pareto { alpha } => format!("pareto{alpha}"),
            WtpDist::LogNormal { sigma } => format!("lognormal{sigma}"),
        }
    }

    /// The kind this resolved dist came from.
    pub fn kind(&self) -> DistKind {
        match self {
            WtpDist::Rating => DistKind::Rating,
            WtpDist::Pareto { .. } => DistKind::Pareto,
            WtpDist::LogNormal { .. } => DistKind::LogNormal,
        }
    }

    /// The heavy-tail sampler behind this dist (`None` for the rating map).
    pub fn tail_dist(&self) -> Option<TailDist> {
        match *self {
            WtpDist::Rating => None,
            WtpDist::Pareto { alpha } => Some(TailDist::Pareto { alpha }),
            WtpDist::LogNormal { sigma } => Some(TailDist::LogNormal { sigma }),
        }
    }
}

/// A batch sweep: the grid axes plus execution knobs. Axis values are
/// kept verbatim — **duplicates are legal** (e.g. a repeated seed) and are
/// collapsed by the job DAG and the solve cache rather than rejected, so a
/// spec can deliberately exercise the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Canonical registry names ([`revmax_core::algorithms::registry`]).
    pub methods: Vec<String>,
    /// Dataset scales.
    pub scales: Vec<ScaleSpec>,
    /// Bundling coefficients θ.
    pub thetas: Vec<f64>,
    /// Generator seeds.
    pub seeds: Vec<u64>,
    /// WTP-distribution kinds; heavy-tailed kinds are crossed with every
    /// `tails` value by [`SweepSpec::wtp_dists`].
    pub dists: Vec<DistKind>,
    /// Tail knobs (α for `pareto`, σ for `lognormal`); may be empty when
    /// `dists` holds only `rating`.
    pub tails: Vec<f64>,
    /// Pricing-objective axis ([`Objective`]); each market cell is solved
    /// once per objective, under separate solve-cache keys.
    pub objectives: Vec<Objective>,
    /// `0` solves the whole market only; `k ≥ 1` additionally partitions
    /// each market into `k` activity cohorts (balanced by rating count)
    /// and solves every cohort, so per-segment menus can be compared
    /// against the whole-market menu.
    pub cohorts: usize,
    /// Timing repetitions per unique solve (the report keeps min/mean/max).
    pub repeat: usize,
    /// Measurement budget per unique solve, in milliseconds. When > 0, a
    /// solve keeps repeating beyond `repeat` until this much measured time
    /// accumulates (capped at [`crate::MAX_TIMED_REPS`]), criterion-style,
    /// so microsecond-scale solves report warm means a `perf_check`
    /// comparison against a criterion baseline can trust. Wall clock only
    /// — the solved outcomes are bit-identical with the budget on or off.
    pub budget_ms: u64,
    /// Fingerprint-keyed solve cache on/off.
    pub cache: bool,
    /// Engine fan-out (the per-solve inner thread count is pinned to 1 —
    /// `DESIGN.md` §8's no-nested-fan-out rule).
    pub threads: Threads,
}

impl Default for SweepSpec {
    /// All seven registry methods, small scale, θ = 0, seed 2015, rating
    /// WTPs, mean objective, whole market only, one repetition, cache on,
    /// auto fan-out.
    fn default() -> Self {
        SweepSpec {
            methods: algorithms::registry().iter().map(|(n, _)| n.to_string()).collect(),
            scales: vec![ScaleSpec::Small],
            thetas: vec![0.0],
            seeds: vec![2015],
            dists: vec![DistKind::Rating],
            tails: Vec::new(),
            objectives: vec![Objective::Mean],
            cohorts: 0,
            repeat: 1,
            budget_ms: 0,
            cache: true,
            threads: Threads::Auto,
        }
    }
}

/// Lower-case, separator-free normal form used to match method aliases
/// (`pure_matching`, `Pure Matching`, `pure-matching` all agree).
fn norm(s: &str) -> String {
    s.chars().filter(|c| ![' ', '_', '-'].contains(c)).flat_map(char::to_lowercase).collect()
}

/// Resolve one method name (canonical or snake/kebab alias) to its
/// canonical registry name.
pub fn resolve_method(name: &str) -> Result<String, String> {
    let want = norm(name);
    for (canonical, _) in algorithms::registry() {
        if norm(canonical) == want {
            return Ok(canonical.to_string());
        }
    }
    let known: Vec<&str> = algorithms::registry().iter().map(|(n, _)| *n).collect();
    Err(format!("unknown method '{name}' (known: {})", known.join(", ")))
}

impl SweepSpec {
    /// Apply one `key=value` assignment (spec-file line or CLI argument).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let csv = || value.split(',').map(str::trim).filter(|s| !s.is_empty());
        match key {
            "methods" => {
                let mut out = Vec::new();
                for m in csv() {
                    match m {
                        "all" => {
                            out.extend(algorithms::registry().iter().map(|(n, _)| n.to_string()))
                        }
                        "proposed" => out.extend(
                            ["Pure Matching", "Pure Greedy", "Mixed Matching", "Mixed Greedy"]
                                .iter()
                                .map(|s| s.to_string()),
                        ),
                        other => out.push(resolve_method(other)?),
                    }
                }
                self.methods = out;
            }
            "scale" | "scales" => {
                self.scales = csv().map(ScaleSpec::parse).collect::<Result<_, _>>()?;
            }
            "theta" | "thetas" => {
                self.thetas = csv()
                    .map(|s| s.parse::<f64>().map_err(|_| format!("theta '{s}' is not a number")))
                    .collect::<Result<_, _>>()?;
            }
            "seed" | "seeds" => {
                self.seeds = csv()
                    .map(|s| s.parse::<u64>().map_err(|_| format!("seed '{s}' is not a u64")))
                    .collect::<Result<_, _>>()?;
            }
            "dist" | "dists" => {
                self.dists = csv().map(DistKind::parse).collect::<Result<_, _>>()?;
            }
            "tail" | "tails" => {
                self.tails = csv()
                    .map(|s| s.parse::<f64>().map_err(|_| format!("tail '{s}' is not a number")))
                    .collect::<Result<_, _>>()?;
            }
            "objective" | "objectives" => {
                self.objectives = csv().map(Objective::parse).collect::<Result<_, _>>()?;
            }
            "cohorts" => {
                self.cohorts =
                    value.parse().map_err(|_| format!("cohorts '{value}' is not a usize"))?;
            }
            "repeat" => {
                self.repeat =
                    value.parse().map_err(|_| format!("repeat '{value}' is not a usize"))?;
            }
            "budget_ms" => {
                self.budget_ms =
                    value.parse().map_err(|_| format!("budget_ms '{value}' is not a u64"))?;
            }
            "cache" => {
                self.cache = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("cache '{other}' (expected on|off)")),
                };
            }
            "threads" => {
                self.threads = if value == "auto" {
                    Threads::Auto
                } else {
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("threads '{value}' is not auto or a usize"))?;
                    if n == 0 {
                        return Err("threads must be >= 1".into());
                    }
                    Threads::Fixed(n)
                };
            }
            other => return Err(unknown_spec_key(other)),
        }
        Ok(())
    }

    /// Apply a whole spec text: one `key=value` per line, `#` comments and
    /// blank lines ignored.
    pub fn apply_text(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got '{line}'", lineno + 1))?;
            self.apply(key.trim(), value.trim())
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(())
    }

    /// The concrete WTP-distribution axis: `rating` appears once, each
    /// heavy-tailed kind is crossed with every `tails` knob, in spec order.
    pub fn wtp_dists(&self) -> Vec<WtpDist> {
        let mut out = Vec::new();
        for &kind in &self.dists {
            match kind {
                DistKind::Rating => out.push(WtpDist::Rating),
                DistKind::Pareto => {
                    out.extend(self.tails.iter().map(|&alpha| WtpDist::Pareto { alpha }))
                }
                DistKind::LogNormal => {
                    out.extend(self.tails.iter().map(|&sigma| WtpDist::LogNormal { sigma }))
                }
            }
        }
        out
    }

    /// Check the spec is runnable: non-empty axes, `repeat ≥ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if self.methods.is_empty() {
            return Err("no methods selected".into());
        }
        for m in &self.methods {
            resolve_method(m)?;
        }
        if self.scales.is_empty() || self.thetas.is_empty() || self.seeds.is_empty() {
            return Err("every axis (scales, thetas, seeds) needs at least one value".into());
        }
        for &t in &self.thetas {
            if t <= -1.0 || t.is_nan() {
                return Err(format!("theta must be > -1, got {t}"));
            }
        }
        if self.dists.is_empty() {
            return Err("no dists selected".into());
        }
        let heavy = self.dists.iter().any(|&d| d != DistKind::Rating);
        if heavy && self.tails.is_empty() {
            return Err(
                "heavy-tailed dists (pareto, lognormal) need at least one tail value".into()
            );
        }
        for d in self.wtp_dists() {
            if let Some(td) = d.tail_dist() {
                td.validate()?;
            }
        }
        if self.objectives.is_empty() {
            return Err("no objectives selected".into());
        }
        for o in &self.objectives {
            o.check()?;
        }
        if self.repeat == 0 {
            return Err("repeat must be >= 1".into());
        }
        self.threads.validate();
        Ok(())
    }
}

/// The spec's accepted keys (canonical plural spellings), for
/// [`unknown_spec_key`]'s listing and did-you-mean suggestion.
const KNOWN_KEYS: &[&str] = &[
    "methods",
    "scales",
    "thetas",
    "seeds",
    "dists",
    "tails",
    "objectives",
    "cohorts",
    "repeat",
    "budget_ms",
    "cache",
    "threads",
];

/// Edit (Levenshtein) distance between two keys — same helper the bench
/// CLIs use (`revmax-bench` depends on this crate, so it is mirrored here
/// rather than imported).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Error text for an unrecognized spec key: names the key, lists the
/// accepted keys, and suggests the closest known key within edit
/// distance 2 (dropped letters and near-miss spellings, never nonsense
/// suggestions for garbage input).
fn unknown_spec_key(key: &str) -> String {
    let suggestion = KNOWN_KEYS
        .iter()
        .map(|k| (edit_distance(key, k), *k))
        .min()
        .filter(|&(d, _)| d <= 2)
        .map(|(_, k)| format!(" (did you mean '{k}'?)"))
        .unwrap_or_default();
    format!("unknown spec key '{key}'{suggestion}; known keys: {}", KNOWN_KEYS.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_seven_methods() {
        let spec = SweepSpec::default();
        assert_eq!(spec.methods.len(), 7);
        spec.validate().unwrap();
    }

    #[test]
    fn method_aliases_resolve() {
        assert_eq!(resolve_method("pure_matching").unwrap(), "Pure Matching");
        assert_eq!(resolve_method("Mixed Greedy").unwrap(), "Mixed Greedy");
        assert_eq!(resolve_method("mixed-freqitemset").unwrap(), "Mixed FreqItemset");
        assert!(resolve_method("no such").is_err());
    }

    #[test]
    fn apply_parses_every_key() {
        let mut spec = SweepSpec::default();
        spec.apply("methods", "components,pure_matching").unwrap();
        spec.apply("scales", "tiny,small").unwrap();
        spec.apply("thetas", "0,-0.05,0.1").unwrap();
        spec.apply("seeds", "2015,2015").unwrap();
        spec.apply("cohorts", "3").unwrap();
        spec.apply("repeat", "5").unwrap();
        spec.apply("budget_ms", "40").unwrap();
        spec.apply("cache", "off").unwrap();
        spec.apply("threads", "4").unwrap();
        assert_eq!(spec.methods, vec!["Components", "Pure Matching"]);
        assert_eq!(spec.scales, vec![ScaleSpec::Tiny, ScaleSpec::Small]);
        assert_eq!(spec.thetas, vec![0.0, -0.05, 0.1]);
        assert_eq!(spec.seeds, vec![2015, 2015]); // duplicates preserved
        assert_eq!(spec.cohorts, 3);
        assert_eq!(spec.repeat, 5);
        assert_eq!(spec.budget_ms, 40);
        assert!(!spec.cache);
        assert_eq!(spec.threads, Threads::Fixed(4));
        spec.validate().unwrap();
    }

    #[test]
    fn spec_text_with_comments_parses() {
        let mut spec = SweepSpec::default();
        spec.apply_text("# demo sweep\nmethods=all\n\nthetas=0,0.05 # complements too\ncache=on\n")
            .unwrap();
        assert_eq!(spec.methods.len(), 7);
        assert_eq!(spec.thetas, vec![0.0, 0.05]);
    }

    #[test]
    fn bad_inputs_error_with_context() {
        let mut spec = SweepSpec::default();
        assert!(spec.apply("thetas", "abc").is_err());
        assert!(spec.apply("nope", "1").is_err());
        assert!(spec.apply_text("methods").is_err());
        assert!(spec.apply("threads", "0").is_err());
        spec.thetas = vec![-1.5];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn dist_tail_and_objective_axes_parse_and_expand() {
        let mut spec = SweepSpec::default();
        spec.apply("dists", "rating,pareto,lognormal").unwrap();
        spec.apply("tails", "4,1.5").unwrap();
        spec.apply("objectives", "mean,cvar:0.9,quantile:0.25").unwrap();
        assert_eq!(
            spec.wtp_dists(),
            vec![
                WtpDist::Rating,
                WtpDist::Pareto { alpha: 4.0 },
                WtpDist::Pareto { alpha: 1.5 },
                WtpDist::LogNormal { sigma: 4.0 },
                WtpDist::LogNormal { sigma: 1.5 },
            ]
        );
        assert_eq!(
            spec.objectives,
            vec![Objective::Mean, Objective::Cvar(0.9), Objective::Quantile(0.25)]
        );
        spec.validate().unwrap();
    }

    #[test]
    fn heavy_dists_require_tails_and_valid_knobs() {
        let mut spec = SweepSpec::default();
        spec.apply("dists", "pareto").unwrap();
        assert!(spec.validate().unwrap_err().contains("tail"));
        spec.apply("tails", "-2").unwrap();
        assert!(spec.validate().is_err());
        spec.apply("tails", "2").unwrap();
        spec.validate().unwrap();
        // Defaults carry no tails, and that must stay valid (rating only).
        assert!(SweepSpec::default().tails.is_empty());
        SweepSpec::default().validate().unwrap();
    }

    #[test]
    fn bad_objectives_are_rejected_at_parse_and_validate() {
        let mut spec = SweepSpec::default();
        assert!(spec.apply("objective", "cvar:1.5").is_err());
        assert!(spec.apply("objective", "median").is_err());
        spec.objectives = vec![Objective::Quantile(0.0)];
        assert!(spec.validate().is_err());
        spec.objectives.clear();
        assert!(spec.validate().unwrap_err().contains("objectives"));
    }

    #[test]
    fn unknown_keys_get_a_did_you_mean_suggestion() {
        let mut spec = SweepSpec::default();
        let err = spec.apply("objektives", "mean").unwrap_err();
        assert!(err.contains("unknown spec key 'objektives'"), "{err}");
        assert!(err.contains("did you mean 'objectives'?"), "{err}");
        assert!(err.contains("known keys:"), "{err}");
        let err = spec.apply("completely_bogus_xyz", "1").unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn dist_fragments_are_separator_free() {
        assert_eq!(WtpDist::Rating.id_fragment(), "rating");
        assert_eq!(WtpDist::Pareto { alpha: 2.0 }.id_fragment(), "pareto2");
        assert_eq!(WtpDist::LogNormal { sigma: 1.5 }.id_fragment(), "lognormal1.5");
        assert_eq!(WtpDist::Pareto { alpha: 2.0 }.kind(), DistKind::Pareto);
        assert!(WtpDist::Rating.tail_dist().is_none());
        assert_eq!(
            WtpDist::Pareto { alpha: 2.0 }.tail_dist(),
            Some(TailDist::Pareto { alpha: 2.0 })
        );
    }

    #[test]
    fn tiny_scale_generates_quickly_and_nonempty() {
        let data = ScaleSpec::Tiny.config().generate(7);
        assert!(data.n_users() >= ScaleSpec::Tiny.config().min_degree);
        assert!(data.n_items() > 0);
    }
}
